//! # fp-suite — the function-proxy workspace, under one roof
//!
//! A production-quality Rust reproduction of Luo & Xue, *"Template-Based
//! Proxy Caching for Table-Valued Functions"* (DASFAA 2004): a web proxy
//! that caches the results of SQL queries with embedded table-valued
//! functions and answers new queries from old ones by spatial-region
//! reasoning over registered templates.
//!
//! This crate re-exports every workspace member so examples and
//! downstream users can depend on one crate:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`geometry`] | `fp-geometry` | regions (rect/sphere/polytope), relationship algebra, celestial math |
//! | [`rtree`] | `fp-rtree` | the R-tree cache-description index |
//! | [`xmlite`] | `fp-xmlite` | minimal XML for template files and result documents |
//! | [`sqlmini`] | `fp-sqlmini` | SQL lexer/parser/printer + query templates |
//! | [`skyserver`] | `fp-skyserver` | the synthetic origin site (catalog, TVFs, executor) |
//! | [`httpd`] | `fp-httpd` | minimal HTTP/1.1 server/client for the networked examples |
//! | [`trace`] | `fp-trace` | calibrated Radial traces + the remote browser emulator |
//! | [`edge`] | `fp-edge` | nonblocking epoll edge server: reactor + worker pool, admission control |
//! | [`proxy`] | `funcproxy` | **the function proxy** — templates, cache, schemes, metrics |
//!
//! ## Quickstart
//!
//! ```
//! use fp_suite::proxy::template::TemplateManager;
//! use fp_suite::proxy::{FunctionProxy, ProxyConfig, Scheme, SiteOrigin, CostModel};
//! use fp_suite::skyserver::{Catalog, CatalogSpec, SkySite};
//! use std::sync::Arc;
//!
//! // An origin web site over a synthetic sky catalog…
//! let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
//! // …and a function proxy in front of it.
//! let mut proxy = FunctionProxy::new(
//!     TemplateManager::with_sky_defaults(),
//!     Arc::new(SiteOrigin::new(site)),
//!     ProxyConfig::default().with_scheme(Scheme::FullSemantic).with_cost(CostModel::free()),
//! );
//!
//! let fields = |ra: f64, dec: f64, radius: f64| vec![
//!     ("ra".to_string(), ra.to_string()),
//!     ("dec".to_string(), dec.to_string()),
//!     ("radius".to_string(), radius.to_string()),
//! ];
//! // First query: a cache miss, forwarded to the origin.
//! let miss = proxy.handle_form("/search/radial", &fields(185.0, 0.0, 30.0)).unwrap();
//! // A smaller concentric query: answered locally from the cached result.
//! let hit = proxy.handle_form("/search/radial", &fields(185.0, 0.0, 10.0)).unwrap();
//! assert_eq!(hit.metrics.cache_efficiency(), 1.0);
//! assert!(hit.result.len() <= miss.result.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use fp_edge as edge;
pub use fp_geometry as geometry;
pub use fp_httpd as httpd;
pub use fp_rtree as rtree;
pub use fp_skyserver as skyserver;
pub use fp_sqlmini as sqlmini;
pub use fp_trace as trace;
pub use fp_xmlite as xmlite;
pub use funcproxy as proxy;
