//! A minimal HTTP/1.1 server and client.
//!
//! The paper implements its proxy as a Java servlet behind Tomcat; the
//! transport is incidental to the caching contribution, but a proxy that
//! cannot actually sit between a browser and a web site would not be a
//! faithful reproduction. This crate provides just enough HTTP/1.1 to run
//! the function proxy over real sockets: request/response parsing with
//! `Content-Length` bodies, URL and query-string codecs, a threaded TCP
//! server with a router, and a blocking client.
//!
//! The *benchmarks* deliberately do not use this crate — they run the proxy
//! in-process against a simulated WAN cost model so results are
//! deterministic — while the `http_proxy` example wires everything over
//! loopback TCP.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod message;
pub mod parse;
pub mod router;
pub mod server;
pub mod urlenc;

pub use client::HttpClient;
pub use message::{Headers, Method, Request, Response, Status};
pub use router::Router;
pub use server::HttpServer;

/// Errors across the HTTP stack.
#[derive(Debug)]
pub enum HttpError {
    /// Malformed message framing or syntax.
    Malformed(String),
    /// The peer closed the connection mid-message.
    UnexpectedEof,
    /// Body larger than the configured limit.
    BodyTooLarge {
        /// The configured limit in bytes.
        limit: usize,
    },
    /// Underlying socket error.
    Io(std::io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::Malformed(m) => write!(f, "malformed HTTP message: {m}"),
            HttpError::UnexpectedEof => write!(f, "connection closed mid-message"),
            HttpError::BodyTooLarge { limit } => write!(f, "body exceeds {limit} bytes"),
            HttpError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<std::io::Error> for HttpError {
    fn from(e: std::io::Error) -> Self {
        HttpError::Io(e)
    }
}
