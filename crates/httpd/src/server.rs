//! A threaded TCP server with keep-alive connections.

use crate::message::{Response, Status};
use crate::parse::read_request;
use crate::router::Router;
use crate::HttpError;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Default cap on simultaneously served connections (and therefore on
/// spawned connection threads) for [`HttpServer::bind`].
pub const DEFAULT_MAX_CONNECTIONS: usize = 256;

/// A running HTTP server. Dropping the handle (or calling
/// [`HttpServer::shutdown`]) stops the accept loop.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Counting semaphore over live connection threads: a permit is taken
/// before spawning and released by the guard when the thread finishes,
/// so the thread count can never exceed the cap.
struct ConnPermits {
    live: AtomicUsize,
    max: usize,
}

impl ConnPermits {
    fn try_acquire(self: &Arc<Self>) -> Option<ConnPermit> {
        let mut live = self.live.load(Ordering::Relaxed);
        loop {
            if live >= self.max {
                return None;
            }
            match self.live.compare_exchange_weak(
                live,
                live + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(ConnPermit(Arc::clone(self))),
                Err(actual) => live = actual,
            }
        }
    }
}

struct ConnPermit(Arc<ConnPermits>);

impl Drop for ConnPermit {
    fn drop(&mut self) {
        self.0.live.fetch_sub(1, Ordering::Release);
    }
}

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving `router` with one thread per connection, capped at
    /// [`DEFAULT_MAX_CONNECTIONS`] simultaneous connections.
    ///
    /// # Errors
    /// Returns the bind error, e.g. when the port is taken.
    pub fn bind(addr: &str, router: Router) -> std::io::Result<HttpServer> {
        Self::bind_with_limit(addr, router, DEFAULT_MAX_CONNECTIONS)
    }

    /// [`HttpServer::bind`] with an explicit connection cap. Once
    /// `max_connections` threads are live, further connects are
    /// answered `503 Service Unavailable` with `Retry-After: 1` and
    /// closed instead of spawning without bound.
    ///
    /// # Errors
    /// Returns the bind error, e.g. when the port is taken.
    pub fn bind_with_limit(
        addr: &str,
        router: Router,
        max_connections: usize,
    ) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Wake the accept loop periodically to observe the stop flag.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let permits = Arc::new(ConnPermits {
            live: AtomicUsize::new(0),
            max: max_connections.max(1),
        });

        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("httpd-accept".into())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((socket, _)) => {
                            let Some(permit) = permits.try_acquire() else {
                                reject_over_limit(socket);
                                continue;
                            };
                            let router = router.clone();
                            let stop3 = Arc::clone(&stop2);
                            workers.push(
                                std::thread::Builder::new()
                                    .name("httpd-conn".into())
                                    .spawn(move || {
                                        let _permit = permit;
                                        serve_connection(socket, router, stop3)
                                    })
                                    .expect("spawn connection thread"),
                            );
                            // Opportunistically reap finished workers.
                            workers.retain(|w| !w.is_finished());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for w in workers {
                    let _ = w.join();
                }
            })
            .expect("spawn accept thread");

        Ok(HttpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Sheds a connection over the cap: best-effort 503 with a retry hint,
/// then close. The socket is still blocking-fresh from `accept`, so a
/// short write timeout keeps a dead peer from stalling the accept loop.
fn reject_over_limit(socket: TcpStream) {
    let _ = socket.set_write_timeout(Some(Duration::from_millis(100)));
    let mut response = Response::error(Status::SERVICE_UNAVAILABLE, "connection limit reached");
    response.headers.set("Retry-After", "1");
    response.headers.set("Connection", "close");
    let mut socket = socket;
    let _ = socket.write_all(&response.to_bytes());
}

fn serve_connection(socket: TcpStream, router: Router, stop: Arc<AtomicBool>) {
    // Bounded read timeout so idle keep-alive connections observe shutdown.
    let _ = socket.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match socket.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(socket);

    while !stop.load(Ordering::Relaxed) {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                let close = request
                    .headers
                    .get("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                let response = router.handle(&request);
                if writer.write_all(&response.to_bytes()).is_err() {
                    return;
                }
                let _ = writer.flush();
                if close {
                    return;
                }
            }
            Ok(None) => return, // clean close
            Err(HttpError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // idle; re-check the stop flag
            }
            Err(HttpError::UnexpectedEof) => return,
            Err(e) => {
                let _ = writer
                    .write_all(&Response::error(Status::BAD_REQUEST, &e.to_string()).to_bytes());
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::message::Request;

    #[test]
    fn serves_requests_over_loopback() {
        let router = Router::new()
            .route("/ping", |_| Response::ok("text/plain", "pong"))
            .route("/echo", |r: &Request| {
                Response::ok("text/plain", r.query.clone().into_bytes())
            });
        let server = HttpServer::bind("127.0.0.1:0", router).unwrap();
        let client = HttpClient::new(server.addr());

        let r = client.send(&Request::get("/ping")).unwrap();
        assert_eq!(r.status, Status::OK);
        assert_eq!(r.body_text(), "pong");

        let r = client.send(&Request::get("/echo?a=1&b=2")).unwrap();
        assert_eq!(r.body_text(), "a=1&b=2");

        let r = client.send(&Request::get("/missing")).unwrap();
        assert_eq!(r.status, Status::NOT_FOUND);

        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let router = Router::new().route("/work", |r: &Request| {
            // Tiny compute to overlap threads.
            let n: u64 = r.query.parse().unwrap_or(0);
            Response::ok("text/plain", format!("{}", n * 2))
        });
        let server = HttpServer::bind("127.0.0.1:0", router).unwrap();
        let addr = server.addr();

        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = HttpClient::new(addr);
                    let r = client.send(&Request::get(&format!("/work?{i}"))).unwrap();
                    assert_eq!(r.body_text(), format!("{}", i * 2));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn over_limit_connects_are_shed_with_503() {
        let entered = Arc::new(AtomicBool::new(false));
        let gate = Arc::new(AtomicBool::new(false));
        let router = Router::new().route("/slow", {
            let entered = Arc::clone(&entered);
            let gate = Arc::clone(&gate);
            move |_: &Request| {
                entered.store(true, Ordering::SeqCst);
                while !gate.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Response::ok("text/plain", "done")
            }
        });
        let server = HttpServer::bind_with_limit("127.0.0.1:0", router, 1).unwrap();
        let addr = server.addr();

        // Occupy the single permit with a request parked in the handler.
        let blocker = std::thread::spawn(move || {
            let client = HttpClient::new(addr);
            client.send(&Request::get("/slow")).unwrap()
        });
        while !entered.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(2));
        }

        // The next connection must be shed, not queued behind a thread.
        let client = HttpClient::new(addr);
        let shed = client.send(&Request::get("/slow")).unwrap();
        assert_eq!(shed.status, Status::SERVICE_UNAVAILABLE);
        assert_eq!(shed.headers.get("retry-after"), Some("1"));

        // Releasing the permit restores service.
        gate.store(true, Ordering::SeqCst);
        let ok = blocker.join().unwrap();
        assert_eq!(ok.status, Status::OK);
        server.shutdown();
    }
}
