//! A threaded TCP server with keep-alive connections.

use crate::message::{Response, Status};
use crate::parse::read_request;
use crate::router::Router;
use crate::HttpError;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running HTTP server. Dropping the handle (or calling
/// [`HttpServer::shutdown`]) stops the accept loop.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl HttpServer {
    /// Binds to `addr` (use port 0 for an ephemeral port) and starts
    /// serving `router` with one thread per connection.
    ///
    /// # Errors
    /// Returns the bind error, e.g. when the port is taken.
    pub fn bind(addr: &str, router: Router) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        // Wake the accept loop periodically to observe the stop flag.
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));

        let stop2 = Arc::clone(&stop);
        let accept_thread = std::thread::Builder::new()
            .name("httpd-accept".into())
            .spawn(move || {
                let mut workers: Vec<JoinHandle<()>> = Vec::new();
                while !stop2.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((socket, _)) => {
                            let router = router.clone();
                            let stop3 = Arc::clone(&stop2);
                            workers.push(
                                std::thread::Builder::new()
                                    .name("httpd-conn".into())
                                    .spawn(move || serve_connection(socket, router, stop3))
                                    .expect("spawn connection thread"),
                            );
                            // Opportunistically reap finished workers.
                            workers.retain(|w| !w.is_finished());
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        Err(_) => break,
                    }
                }
                for w in workers {
                    let _ = w.join();
                }
            })
            .expect("spawn accept thread");

        Ok(HttpServer {
            addr: local,
            stop,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (useful with ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn serve_connection(socket: TcpStream, router: Router, stop: Arc<AtomicBool>) {
    // Bounded read timeout so idle keep-alive connections observe shutdown.
    let _ = socket.set_read_timeout(Some(Duration::from_millis(200)));
    let mut writer = match socket.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(socket);

    while !stop.load(Ordering::Relaxed) {
        match read_request(&mut reader) {
            Ok(Some(request)) => {
                let close = request
                    .headers
                    .get("connection")
                    .is_some_and(|v| v.eq_ignore_ascii_case("close"));
                let response = router.handle(&request);
                if writer.write_all(&response.to_bytes()).is_err() {
                    return;
                }
                let _ = writer.flush();
                if close {
                    return;
                }
            }
            Ok(None) => return, // clean close
            Err(HttpError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                continue; // idle; re-check the stop flag
            }
            Err(HttpError::UnexpectedEof) => return,
            Err(e) => {
                let _ = writer
                    .write_all(&Response::error(Status::BAD_REQUEST, &e.to_string()).to_bytes());
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::HttpClient;
    use crate::message::Request;

    #[test]
    fn serves_requests_over_loopback() {
        let router = Router::new()
            .route("/ping", |_| Response::ok("text/plain", "pong"))
            .route("/echo", |r: &Request| {
                Response::ok("text/plain", r.query.clone().into_bytes())
            });
        let server = HttpServer::bind("127.0.0.1:0", router).unwrap();
        let client = HttpClient::new(server.addr());

        let r = client.send(&Request::get("/ping")).unwrap();
        assert_eq!(r.status, Status::OK);
        assert_eq!(r.body_text(), "pong");

        let r = client.send(&Request::get("/echo?a=1&b=2")).unwrap();
        assert_eq!(r.body_text(), "a=1&b=2");

        let r = client.send(&Request::get("/missing")).unwrap();
        assert_eq!(r.status, Status::NOT_FOUND);

        server.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let router = Router::new().route("/work", |r: &Request| {
            // Tiny compute to overlap threads.
            let n: u64 = r.query.parse().unwrap_or(0);
            Response::ok("text/plain", format!("{}", n * 2))
        });
        let server = HttpServer::bind("127.0.0.1:0", router).unwrap();
        let addr = server.addr();

        let handles: Vec<_> = (0..8u64)
            .map(|i| {
                std::thread::spawn(move || {
                    let client = HttpClient::new(addr);
                    let r = client.send(&Request::get(&format!("/work?{i}"))).unwrap();
                    assert_eq!(r.body_text(), format!("{}", i * 2));
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        server.shutdown();
    }
}
