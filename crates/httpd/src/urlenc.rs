//! Percent-encoding and `application/x-www-form-urlencoded` codecs.

/// Percent-encodes `s` for use as a query-string key or value
/// (form-urlencoded: space becomes `+`).
pub fn encode_component(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for b in s.bytes() {
        match b {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'-' | b'_' | b'.' | b'~' => {
                out.push(b as char)
            }
            b' ' => out.push('+'),
            other => {
                out.push('%');
                out.push(hex_digit(other >> 4));
                out.push(hex_digit(other & 0xF));
            }
        }
    }
    out
}

/// Decodes a percent-encoded component (`+` becomes space; malformed
/// escapes are passed through literally, matching lenient servers).
pub fn decode_component(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' if i + 2 < bytes.len() + 1 => {
                match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                    (Some(h), Some(l)) => {
                        out.push((h << 4) | l);
                        i += 3;
                    }
                    _ => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            other => {
                out.push(other);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Parses a query string (`a=1&b=two+words`) into decoded pairs.
/// Keys without `=` get an empty value.
pub fn parse_query(query: &str) -> Vec<(String, String)> {
    if query.is_empty() {
        return Vec::new();
    }
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (decode_component(k), decode_component(v)),
            None => (decode_component(part), String::new()),
        })
        .collect()
}

/// Encodes pairs as a query string.
pub fn encode_query(pairs: &[(String, String)]) -> String {
    pairs
        .iter()
        .map(|(k, v)| format!("{}={}", encode_component(k), encode_component(v)))
        .collect::<Vec<_>>()
        .join("&")
}

fn hex_digit(v: u8) -> char {
    char::from_digit(v as u32, 16)
        .expect("nibble is < 16")
        .to_ascii_uppercase()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    (*b? as char).to_digit(16).map(|d| d as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        for s in [
            "",
            "plain",
            "two words",
            "SELECT * FROM t WHERE a < 5 & b = 'x'",
            "ra=185.0&dec=+1.5",
            "UTF-8 ✓ é",
            "100%",
        ] {
            assert_eq!(decode_component(&encode_component(s)), s, "{s}");
        }
    }

    #[test]
    fn decoding_is_lenient_on_bad_escapes() {
        assert_eq!(decode_component("a%ZZb"), "a%ZZb");
        assert_eq!(decode_component("a%"), "a%");
        assert_eq!(decode_component("a%2"), "a%2");
    }

    #[test]
    fn query_parse_and_encode() {
        let pairs = parse_query("ra=185.0&dec=1.5&flag&note=two+words");
        assert_eq!(pairs.len(), 4);
        assert_eq!(pairs[0], ("ra".into(), "185.0".into()));
        assert_eq!(pairs[2], ("flag".into(), "".into()));
        assert_eq!(pairs[3].1, "two words");

        let enc = encode_query(&[("sql".into(), "a=1 & b".into()), ("n".into(), "5".into())]);
        assert_eq!(enc, "sql=a%3D1+%26+b&n=5");
        let back = parse_query(&enc);
        assert_eq!(back[0].1, "a=1 & b");
    }

    #[test]
    fn empty_query() {
        assert!(parse_query("").is_empty());
        assert!(parse_query("&&").is_empty());
    }
}
