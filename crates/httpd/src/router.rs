//! Exact-path request routing.

use crate::message::{Request, Response, Status};
use std::collections::HashMap;
use std::sync::Arc;

/// A boxed request handler.
pub type Handler = Arc<dyn Fn(&Request) -> Response + Send + Sync>;

/// Routes requests to handlers by exact path match, with a fallback.
#[derive(Clone, Default)]
pub struct Router {
    routes: HashMap<String, Handler>,
    fallback: Option<Handler>,
}

impl Router {
    /// An empty router (unmatched requests get 404).
    pub fn new() -> Self {
        Router::default()
    }

    /// Registers a handler for an exact path; returns `self` for chaining.
    pub fn route<F>(mut self, path: &str, handler: F) -> Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.routes.insert(path.to_string(), Arc::new(handler));
        self
    }

    /// Registers the handler for any unmatched path.
    pub fn fallback<F>(mut self, handler: F) -> Self
    where
        F: Fn(&Request) -> Response + Send + Sync + 'static,
    {
        self.fallback = Some(Arc::new(handler));
        self
    }

    /// Dispatches a request.
    pub fn handle(&self, request: &Request) -> Response {
        if let Some(h) = self.routes.get(&request.path) {
            return h(request);
        }
        if let Some(h) = &self.fallback {
            return h(request);
        }
        Response::error(Status::NOT_FOUND, &format!("no route for {}", request.path))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_dispatch_and_fall_back() {
        let r = Router::new()
            .route("/a", |_| Response::ok("text/plain", "A"))
            .route("/b", |_| Response::ok("text/plain", "B"));
        assert_eq!(r.handle(&Request::get("/a")).body_text(), "A");
        assert_eq!(r.handle(&Request::get("/b?x=1")).body_text(), "B");
        assert_eq!(r.handle(&Request::get("/c")).status, Status::NOT_FOUND);

        let r = r.fallback(|_| Response::ok("text/plain", "F"));
        assert_eq!(r.handle(&Request::get("/zzz")).body_text(), "F");
    }
}
