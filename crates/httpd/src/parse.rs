//! Wire-format parsing for requests and responses.

use crate::message::{Headers, Method, Request, Response, Status};
use crate::HttpError;
use std::io::BufRead;

/// Default maximum accepted body size (16 MiB — comfortably above the
/// paper's largest cached result documents).
pub const MAX_BODY: usize = 16 * 1024 * 1024;

/// Reads one request from a buffered stream.
///
/// Returns `Ok(None)` when the connection closed cleanly before a request
/// started (keep-alive connection being shut down).
///
/// # Errors
/// Returns [`HttpError`] on malformed framing or I/O failure.
pub fn read_request<R: BufRead>(stream: &mut R) -> Result<Option<Request>, HttpError> {
    let Some(line) = read_line(stream)? else {
        return Ok(None);
    };
    if line.is_empty() {
        return Err(HttpError::Malformed("empty request line".into()));
    }
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .and_then(Method::parse)
        .ok_or_else(|| HttpError::Malformed(format!("bad method in `{line}`")))?;
    let target = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing request target".into()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("missing HTTP version".into()))?;
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!(
            "unsupported version {version}"
        )));
    }

    let headers = read_headers(stream)?;
    let body = read_body(stream, &headers)?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    };
    Ok(Some(Request {
        method,
        path,
        query,
        headers,
        body,
    }))
}

/// Reads one response from a buffered stream.
///
/// # Errors
/// Returns [`HttpError`] on malformed framing, premature EOF, or I/O
/// failure.
pub fn read_response<R: BufRead>(stream: &mut R) -> Result<Response, HttpError> {
    let line = read_line(stream)?.ok_or(HttpError::UnexpectedEof)?;
    let mut parts = line.splitn(3, ' ');
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed(format!("bad status line `{line}`")));
    }
    let code: u16 = parts
        .next()
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| HttpError::Malformed(format!("bad status code in `{line}`")))?;
    let headers = read_headers(stream)?;
    let body = read_body(stream, &headers)?;
    Ok(Response {
        status: Status(code),
        headers,
        body,
    })
}

/// Reads a CRLF- (or LF-) terminated line; `None` on immediate EOF.
fn read_line<R: BufRead>(stream: &mut R) -> Result<Option<String>, HttpError> {
    let mut buf = Vec::new();
    let n = read_until_limited(stream, b'\n', &mut buf, 64 * 1024)?;
    if n == 0 {
        return Ok(None);
    }
    while matches!(buf.last(), Some(b'\n' | b'\r')) {
        buf.pop();
    }
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| HttpError::Malformed("non-UTF-8 header data".into()))
}

/// `BufRead::read_until` with a size cap (header-smuggling guard).
fn read_until_limited<R: BufRead>(
    stream: &mut R,
    delim: u8,
    buf: &mut Vec<u8>,
    limit: usize,
) -> Result<usize, HttpError> {
    let mut total = 0;
    loop {
        let available = stream.fill_buf()?;
        if available.is_empty() {
            return Ok(total);
        }
        let (consume, done) = match available.iter().position(|b| *b == delim) {
            Some(i) => (i + 1, true),
            None => (available.len(), false),
        };
        total += consume;
        if total > limit {
            return Err(HttpError::Malformed("header line too long".into()));
        }
        buf.extend_from_slice(&available[..consume]);
        stream.consume(consume);
        if done {
            return Ok(total);
        }
    }
}

fn read_headers<R: BufRead>(stream: &mut R) -> Result<Headers, HttpError> {
    let mut headers = Headers::new();
    loop {
        let line = read_line(stream)?.ok_or(HttpError::UnexpectedEof)?;
        if line.is_empty() {
            return Ok(headers);
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::Malformed(format!("bad header line `{line}`")))?;
        headers.push(name.trim(), value.trim());
    }
}

fn read_body<R: BufRead>(stream: &mut R, headers: &Headers) -> Result<Vec<u8>, HttpError> {
    let len: usize = match headers.get("content-length") {
        Some(v) => v
            .parse()
            .map_err(|_| HttpError::Malformed(format!("bad Content-Length `{v}`")))?,
        None => 0,
    };
    if len > MAX_BODY {
        return Err(HttpError::BodyTooLarge { limit: MAX_BODY });
    }
    let mut body = vec![0u8; len];
    stream
        .read_exact(&mut body)
        .map_err(|_| HttpError::UnexpectedEof)?;
    Ok(body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn req(raw: &str) -> Result<Option<Request>, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_get_request() {
        let r = req("GET /search?ra=1 HTTP/1.1\r\nHost: proxy\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, Method::Get);
        assert_eq!(r.path, "/search");
        assert_eq!(r.query, "ra=1");
        assert_eq!(r.headers.get("host"), Some("proxy"));
        assert!(r.body.is_empty());
    }

    #[test]
    fn parses_post_with_body() {
        let r = req("POST /sql HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello")
            .unwrap()
            .unwrap();
        assert_eq!(r.method, Method::Post);
        assert_eq!(r.body, b"hello");
    }

    #[test]
    fn clean_eof_is_none() {
        assert!(req("").unwrap().is_none());
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            req("BLORP / HTTP/1.1\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(req("GET /\r\n\r\n"), Err(HttpError::Malformed(_))));
        assert!(matches!(
            req("GET / HTTP/2\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            req("GET / HTTP/1.1\r\nbadheader\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            req("POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn truncated_body_is_eof() {
        assert!(matches!(
            req("POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"),
            Err(HttpError::UnexpectedEof)
        ));
    }

    #[test]
    fn request_roundtrip_through_wire_form() {
        let original = Request::post_form("/sql?x=1", "cmd=SELECT+1");
        let bytes = original.to_bytes();
        let parsed = read_request(&mut BufReader::new(bytes.as_slice()))
            .unwrap()
            .unwrap();
        assert_eq!(parsed.method, Method::Post);
        assert_eq!(parsed.path, "/sql");
        assert_eq!(parsed.query, "x=1");
        assert_eq!(parsed.body, original.body);
    }

    #[test]
    fn response_roundtrip_through_wire_form() {
        let original = Response::ok("text/xml", "<a/>");
        let bytes = original.to_bytes();
        let parsed = read_response(&mut BufReader::new(bytes.as_slice())).unwrap();
        assert_eq!(parsed.status, Status::OK);
        assert_eq!(parsed.body, b"<a/>");
        assert_eq!(parsed.headers.get("content-type"), Some("text/xml"));
    }

    #[test]
    fn lf_only_lines_are_accepted() {
        let r = req("GET / HTTP/1.1\nHost: h\n\n").unwrap().unwrap();
        assert_eq!(r.headers.get("Host"), Some("h"));
    }
}
