//! A blocking HTTP client with a keep-alive connection.

use crate::message::{Request, Response};
use crate::parse::read_response;
use crate::HttpError;
use std::io::{BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// A client bound to one server address, reusing a single HTTP/1.1
/// keep-alive connection across requests. A connection the server has
/// meanwhile closed is detected on the next request and replaced
/// transparently — but only when **zero** response bytes had arrived:
/// that is the stale keep-alive signature, and resending is safe. A
/// connection that dies mid-response is poisoned (dropped) and the
/// error surfaces, because the server did receive the request and a
/// blind retry would silently duplicate it. Cloning yields an
/// independent client with its own connection.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    connect_timeout: Duration,
    read_timeout: Duration,
    conn: Mutex<Option<Conn>>,
}

/// A pooled connection. The reader wraps the stream in a byte counter
/// so [`HttpClient::send`] can tell a stale keep-alive (zero bytes
/// before the error) from a half-dead socket (some bytes, then error).
#[derive(Debug)]
struct Conn {
    reader: BufReader<CountingStream>,
    writer: TcpStream,
}

impl Conn {
    fn bytes_read(&self) -> u64 {
        self.reader.get_ref().bytes_read
    }
}

#[derive(Debug)]
struct CountingStream {
    stream: TcpStream,
    bytes_read: u64,
}

impl Read for CountingStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.stream.read(buf)?;
        self.bytes_read += n as u64;
        Ok(n)
    }
}

impl Clone for HttpClient {
    fn clone(&self) -> Self {
        HttpClient {
            addr: self.addr,
            connect_timeout: self.connect_timeout,
            read_timeout: self.read_timeout,
            conn: Mutex::new(None),
        }
    }
}

impl HttpClient {
    /// A client for `addr` with 10 s connect and 30 s read/write
    /// timeouts.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            connect_timeout: Duration::from_secs(10),
            read_timeout: Duration::from_secs(30),
            conn: Mutex::new(None),
        }
    }

    /// Sets one timeout for connect, read, and write. Drops any pooled
    /// connection so the new timeout applies from the next request.
    pub fn with_timeout(self, timeout: Duration) -> Self {
        self.with_timeouts(timeout, timeout)
    }

    /// Sets the connect and read/write timeouts separately — a proxy
    /// wants to give up on an unreachable origin much faster than on a
    /// slow response. Drops any pooled connection.
    pub fn with_timeouts(mut self, connect: Duration, read: Duration) -> Self {
        self.connect_timeout = connect;
        self.read_timeout = read;
        self.conn = Mutex::new(None);
        self
    }

    /// Sends `request` and reads the response, reusing the pooled
    /// connection when one is alive.
    ///
    /// # Errors
    /// Returns [`HttpError`] on connection failure, timeout, or
    /// malformed response framing.
    pub fn send(&self, request: &Request) -> Result<Response, HttpError> {
        let mut req = request.clone();
        req.headers.set("Connection", "keep-alive");
        req.headers.set("Host", self.addr.to_string());
        let bytes = req.to_bytes();

        let mut slot = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(mut conn) = slot.take() {
            let before = conn.bytes_read();
            match roundtrip(&mut conn, &bytes) {
                Ok(response) => {
                    park(&mut slot, conn, &response);
                    return Ok(response);
                }
                Err(e @ (HttpError::Io(_) | HttpError::UnexpectedEof)) => {
                    if conn.bytes_read() > before {
                        // A short read mid-response: the server had the
                        // request, so a retry would duplicate it. The
                        // connection is poisoned (dropped here), the
                        // caller decides what a safe retry looks like.
                        return Err(e);
                    }
                    // Zero response bytes: the server closed the pooled
                    // connection between requests. Fall through and
                    // resend on a fresh one.
                }
                Err(e) => return Err(e),
            }
        }
        let mut conn = self.connect()?;
        let response = roundtrip(&mut conn, &bytes)?;
        park(&mut slot, conn, &response);
        Ok(response)
    }

    /// Convenience GET.
    ///
    /// # Errors
    /// See [`HttpClient::send`].
    pub fn get(&self, path_and_query: &str) -> Result<Response, HttpError> {
        self.send(&Request::get(path_and_query))
    }

    fn connect(&self) -> Result<Conn, HttpError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)?;
        stream.set_read_timeout(Some(self.read_timeout))?;
        stream.set_write_timeout(Some(self.read_timeout))?;
        let writer = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(CountingStream {
                stream,
                bytes_read: 0,
            }),
            writer,
        })
    }
}

fn roundtrip(conn: &mut Conn, request_bytes: &[u8]) -> Result<Response, HttpError> {
    conn.writer.write_all(request_bytes)?;
    conn.writer.flush()?;
    read_response(&mut conn.reader)
}

/// Returns the connection to the pool unless the server asked to close.
fn park(slot: &mut Option<Conn>, conn: Conn, response: &Response) {
    let close = response
        .headers
        .get("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
    if !close {
        *slot = Some(conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::read_request;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn connect_failure_is_io_error() {
        // A port from the ephemeral range with nothing listening.
        let client = HttpClient::new("127.0.0.1:1".parse().unwrap())
            .with_timeout(Duration::from_millis(200));
        assert!(matches!(client.get("/"), Err(HttpError::Io(_))));
    }

    /// A hand-rolled server that counts accepted connections and serves
    /// `responses_per_conn` responses on each before hanging up.
    fn counting_server(responses_per_conn: usize) -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepts = Arc::new(AtomicUsize::new(0));
        let accepts2 = Arc::clone(&accepts);
        std::thread::spawn(move || {
            while let Ok((socket, _)) = listener.accept() {
                accepts2.fetch_add(1, Ordering::SeqCst);
                let mut writer = socket.try_clone().unwrap();
                let mut reader = BufReader::new(socket);
                for _ in 0..responses_per_conn {
                    match read_request(&mut reader) {
                        Ok(Some(request)) => {
                            let body = format!("echo:{}", request.path);
                            let response = Response::ok("text/plain", body);
                            writer.write_all(&response.to_bytes()).unwrap();
                            writer.flush().unwrap();
                        }
                        _ => break,
                    }
                }
                // Dropping the socket closes the connection.
            }
        });
        (addr, accepts)
    }

    #[test]
    fn keep_alive_reuses_one_connection() {
        let (addr, accepts) = counting_server(100);
        let client = HttpClient::new(addr).with_timeout(Duration::from_secs(5));
        for i in 0..5 {
            let r = client.get(&format!("/q{i}")).unwrap();
            assert_eq!(r.body_text(), format!("echo:/q{i}"));
        }
        assert_eq!(
            accepts.load(Ordering::SeqCst),
            1,
            "five requests must share one connection"
        );
    }

    #[test]
    fn reconnects_after_server_closes_the_connection() {
        // The server hangs up after every single response.
        let (addr, accepts) = counting_server(1);
        let client = HttpClient::new(addr).with_timeout(Duration::from_secs(5));
        for i in 0..3 {
            let r = client.get(&format!("/r{i}")).unwrap();
            assert_eq!(r.body_text(), format!("echo:/r{i}"));
        }
        assert_eq!(
            accepts.load(Ordering::SeqCst),
            3,
            "each request needed a fresh connection"
        );
    }

    /// A server whose connections serve one good response, then answer
    /// the next request with a *partial* response (advertised
    /// Content-Length never delivered) and hang up. Counts every
    /// request it reads.
    fn short_read_server() -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let requests = Arc::new(AtomicUsize::new(0));
        let requests2 = Arc::clone(&requests);
        std::thread::spawn(move || {
            while let Ok((socket, _)) = listener.accept() {
                let mut writer = socket.try_clone().unwrap();
                let mut reader = BufReader::new(socket);
                if let Ok(Some(request)) = read_request(&mut reader) {
                    requests2.fetch_add(1, Ordering::SeqCst);
                    let body = format!("echo:{}", request.path);
                    let response = Response::ok("text/plain", body);
                    writer.write_all(&response.to_bytes()).unwrap();
                    writer.flush().unwrap();
                }
                if let Ok(Some(_)) = read_request(&mut reader) {
                    requests2.fetch_add(1, Ordering::SeqCst);
                    writer
                        .write_all(b"HTTP/1.1 200 OK\r\ncontent-length: 1000\r\n\r\npartial")
                        .unwrap();
                    writer.flush().unwrap();
                }
                // Hang up mid-body.
            }
        });
        (addr, requests)
    }

    #[test]
    fn short_read_poisons_the_connection_instead_of_retrying() {
        let (addr, requests) = short_read_server();
        let client = HttpClient::new(addr).with_timeout(Duration::from_secs(5));
        assert_eq!(client.get("/ok").unwrap().body_text(), "echo:/ok");
        // The second request dies mid-response. The client must NOT
        // resend it on a fresh connection — the server already saw it.
        let err = client.get("/truncated").unwrap_err();
        assert!(
            matches!(err, HttpError::Io(_) | HttpError::UnexpectedEof),
            "expected a transport error, got {err:?}"
        );
        assert_eq!(
            requests.load(Ordering::SeqCst),
            2,
            "a short read must not be retried"
        );
        // The poisoned connection was dropped: the next request opens a
        // fresh one and succeeds.
        assert_eq!(client.get("/again").unwrap().body_text(), "echo:/again");
        assert_eq!(requests.load(Ordering::SeqCst), 3);
    }

    #[test]
    fn split_timeouts_apply() {
        let (addr, _accepts) = counting_server(10);
        let client =
            HttpClient::new(addr).with_timeouts(Duration::from_millis(250), Duration::from_secs(5));
        assert_eq!(client.get("/t").unwrap().body_text(), "echo:/t");
    }
}
