//! A blocking HTTP client with a keep-alive connection.

use crate::message::{Request, Response};
use crate::parse::read_response;
use crate::HttpError;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Mutex;
use std::time::Duration;

/// A client bound to one server address, reusing a single HTTP/1.1
/// keep-alive connection across requests. A connection the server has
/// meanwhile closed is detected on the next request and replaced
/// transparently (one reconnect, then the error propagates). Cloning
/// yields an independent client with its own connection.
#[derive(Debug)]
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
    conn: Mutex<Option<Conn>>,
}

#[derive(Debug)]
struct Conn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Clone for HttpClient {
    fn clone(&self) -> Self {
        HttpClient {
            addr: self.addr,
            timeout: self.timeout,
            conn: Mutex::new(None),
        }
    }
}

impl HttpClient {
    /// A client for `addr` with a 30 s default timeout.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            timeout: Duration::from_secs(30),
            conn: Mutex::new(None),
        }
    }

    /// Overrides the connect/read/write timeout. Drops any pooled
    /// connection so the new timeout applies from the next request.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self.conn = Mutex::new(None);
        self
    }

    /// Sends `request` and reads the response, reusing the pooled
    /// connection when one is alive.
    ///
    /// # Errors
    /// Returns [`HttpError`] on connection failure, timeout, or
    /// malformed response framing.
    pub fn send(&self, request: &Request) -> Result<Response, HttpError> {
        let mut req = request.clone();
        req.headers.set("Connection", "keep-alive");
        req.headers.set("Host", self.addr.to_string());
        let bytes = req.to_bytes();

        let mut slot = self.conn.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(mut conn) = slot.take() {
            match roundtrip(&mut conn, &bytes) {
                Ok(response) => {
                    park(&mut slot, conn, &response);
                    return Ok(response);
                }
                // The server closed the pooled connection between
                // requests: fall through and retry on a fresh one.
                Err(HttpError::Io(_) | HttpError::UnexpectedEof) => {}
                Err(e) => return Err(e),
            }
        }
        let mut conn = self.connect()?;
        let response = roundtrip(&mut conn, &bytes)?;
        park(&mut slot, conn, &response);
        Ok(response)
    }

    /// Convenience GET.
    ///
    /// # Errors
    /// See [`HttpClient::send`].
    pub fn get(&self, path_and_query: &str) -> Result<Response, HttpError> {
        self.send(&Request::get(path_and_query))
    }

    fn connect(&self) -> Result<Conn, HttpError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let writer = stream.try_clone()?;
        Ok(Conn {
            reader: BufReader::new(stream),
            writer,
        })
    }
}

fn roundtrip(conn: &mut Conn, request_bytes: &[u8]) -> Result<Response, HttpError> {
    conn.writer.write_all(request_bytes)?;
    conn.writer.flush()?;
    read_response(&mut conn.reader)
}

/// Returns the connection to the pool unless the server asked to close.
fn park(slot: &mut Option<Conn>, conn: Conn, response: &Response) {
    let close = response
        .headers
        .get("connection")
        .is_some_and(|v| v.eq_ignore_ascii_case("close"));
    if !close {
        *slot = Some(conn);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::read_request;
    use std::net::TcpListener;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn connect_failure_is_io_error() {
        // A port from the ephemeral range with nothing listening.
        let client = HttpClient::new("127.0.0.1:1".parse().unwrap())
            .with_timeout(Duration::from_millis(200));
        assert!(matches!(client.get("/"), Err(HttpError::Io(_))));
    }

    /// A hand-rolled server that counts accepted connections and serves
    /// `responses_per_conn` responses on each before hanging up.
    fn counting_server(responses_per_conn: usize) -> (SocketAddr, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let accepts = Arc::new(AtomicUsize::new(0));
        let accepts2 = Arc::clone(&accepts);
        std::thread::spawn(move || {
            while let Ok((socket, _)) = listener.accept() {
                accepts2.fetch_add(1, Ordering::SeqCst);
                let mut writer = socket.try_clone().unwrap();
                let mut reader = BufReader::new(socket);
                for _ in 0..responses_per_conn {
                    match read_request(&mut reader) {
                        Ok(Some(request)) => {
                            let body = format!("echo:{}", request.path);
                            let response = Response::ok("text/plain", body);
                            writer.write_all(&response.to_bytes()).unwrap();
                            writer.flush().unwrap();
                        }
                        _ => break,
                    }
                }
                // Dropping the socket closes the connection.
            }
        });
        (addr, accepts)
    }

    #[test]
    fn keep_alive_reuses_one_connection() {
        let (addr, accepts) = counting_server(100);
        let client = HttpClient::new(addr).with_timeout(Duration::from_secs(5));
        for i in 0..5 {
            let r = client.get(&format!("/q{i}")).unwrap();
            assert_eq!(r.body_text(), format!("echo:/q{i}"));
        }
        assert_eq!(
            accepts.load(Ordering::SeqCst),
            1,
            "five requests must share one connection"
        );
    }

    #[test]
    fn reconnects_after_server_closes_the_connection() {
        // The server hangs up after every single response.
        let (addr, accepts) = counting_server(1);
        let client = HttpClient::new(addr).with_timeout(Duration::from_secs(5));
        for i in 0..3 {
            let r = client.get(&format!("/r{i}")).unwrap();
            assert_eq!(r.body_text(), format!("echo:/r{i}"));
        }
        assert_eq!(
            accepts.load(Ordering::SeqCst),
            3,
            "each request needed a fresh connection"
        );
    }
}
