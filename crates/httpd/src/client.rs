//! A blocking HTTP client with per-request connections.

use crate::message::{Request, Response};
use crate::parse::read_response;
use crate::HttpError;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A client bound to one server address. Opens a fresh connection per
/// request (`Connection: close`), which keeps failure handling simple; the
/// RBE replayer measures whole-request latency anyway.
#[derive(Debug, Clone)]
pub struct HttpClient {
    addr: SocketAddr,
    timeout: Duration,
}

impl HttpClient {
    /// A client for `addr` with a 30 s default timeout.
    pub fn new(addr: SocketAddr) -> Self {
        HttpClient {
            addr,
            timeout: Duration::from_secs(30),
        }
    }

    /// Overrides the connect/read/write timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sends `request` and reads the response.
    ///
    /// # Errors
    /// Returns [`HttpError`] on connection failure, timeout, or malformed
    /// response framing.
    pub fn send(&self, request: &Request) -> Result<Response, HttpError> {
        let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;

        let mut req = request.clone();
        req.headers.set("Connection", "close");
        req.headers.set("Host", self.addr.to_string());

        let mut writer = stream.try_clone()?;
        writer.write_all(&req.to_bytes())?;
        writer.flush()?;

        let mut reader = BufReader::new(stream);
        read_response(&mut reader)
    }

    /// Convenience GET.
    ///
    /// # Errors
    /// See [`HttpClient::send`].
    pub fn get(&self, path_and_query: &str) -> Result<Response, HttpError> {
        self.send(&Request::get(path_and_query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_failure_is_io_error() {
        // A port from the ephemeral range with nothing listening.
        let client = HttpClient::new("127.0.0.1:1".parse().unwrap())
            .with_timeout(Duration::from_millis(200));
        assert!(matches!(client.get("/"), Err(HttpError::Io(_))));
    }
}
