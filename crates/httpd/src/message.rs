//! HTTP message types.

/// Request methods the proxy uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// `GET`
    Get,
    /// `POST`
    Post,
    /// `HEAD`
    Head,
}

impl Method {
    /// Wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Head => "HEAD",
        }
    }

    /// Parses the wire spelling (case-sensitive, per RFC 9110).
    pub fn parse(s: &str) -> Option<Method> {
        Some(match s {
            "GET" => Method::Get,
            "POST" => Method::Post,
            "HEAD" => Method::Head,
            _ => return None,
        })
    }
}

/// Response status codes the stack emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status(pub u16);

impl Status {
    /// 200
    pub const OK: Status = Status(200);
    /// 400
    pub const BAD_REQUEST: Status = Status(400);
    /// 404
    pub const NOT_FOUND: Status = Status(404);
    /// 408
    pub const REQUEST_TIMEOUT: Status = Status(408);
    /// 500
    pub const INTERNAL: Status = Status(500);
    /// 502
    pub const BAD_GATEWAY: Status = Status(502);
    /// 503
    pub const SERVICE_UNAVAILABLE: Status = Status(503);

    /// Canonical reason phrase.
    pub fn reason(self) -> &'static str {
        match self.0 {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            408 => "Request Timeout",
            500 => "Internal Server Error",
            502 => "Bad Gateway",
            503 => "Service Unavailable",
            _ => "Unknown",
        }
    }

    /// Whether the status is 2xx.
    pub fn is_success(self) -> bool {
        (200..300).contains(&self.0)
    }
}

/// An ordered, case-insensitive header map.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Headers {
    entries: Vec<(String, String)>,
}

impl Headers {
    /// An empty header set.
    pub fn new() -> Self {
        Headers::default()
    }

    /// Appends a header (duplicates allowed, order preserved).
    pub fn push(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.entries.push((name.into(), value.into()));
    }

    /// First value of `name`, case-insensitively.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.entries
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// Sets `name` to `value`, replacing any existing occurrences.
    pub fn set(&mut self, name: &str, value: impl Into<String>) {
        self.entries.retain(|(k, _)| !k.eq_ignore_ascii_case(name));
        self.entries.push((name.to_string(), value.into()));
    }

    /// Iterates `(name, value)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v.as_str()))
    }

    /// Number of header lines.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no headers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// An HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Request method.
    pub method: Method,
    /// Path component of the target (no query string).
    pub path: String,
    /// Raw query string (without `?`), empty when absent.
    pub query: String,
    /// Headers.
    pub headers: Headers,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// A GET request for `path_and_query` (e.g. `/search?ra=185`).
    pub fn get(path_and_query: &str) -> Request {
        let (path, query) = split_target(path_and_query);
        Request {
            method: Method::Get,
            path,
            query,
            headers: Headers::new(),
            body: Vec::new(),
        }
    }

    /// A POST request with a form-encoded body.
    pub fn post_form(path: &str, body: impl Into<Vec<u8>>) -> Request {
        let (path, query) = split_target(path);
        let mut headers = Headers::new();
        headers.set("Content-Type", "application/x-www-form-urlencoded");
        Request {
            method: Method::Post,
            path,
            query,
            headers,
            body: body.into(),
        }
    }

    /// The request target (`path?query`).
    pub fn target(&self) -> String {
        if self.query.is_empty() {
            self.path.clone()
        } else {
            format!("{}?{}", self.path, self.query)
        }
    }

    /// Decoded query parameters, in order of appearance.
    pub fn query_params(&self) -> Vec<(String, String)> {
        crate::urlenc::parse_query(&self.query)
    }

    /// Serializes the request head + body to wire form.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(self.method.as_str().as_bytes());
        out.push(b' ');
        out.extend_from_slice(self.target().as_bytes());
        out.extend_from_slice(b" HTTP/1.1\r\n");
        let mut has_len = false;
        for (k, v) in self.headers.iter() {
            if k.eq_ignore_ascii_case("content-length") {
                has_len = true;
            }
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        if !has_len && !self.body.is_empty() {
            out.extend_from_slice(format!("Content-Length: {}\r\n", self.body.len()).as_bytes());
        }
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(&self.body);
        out
    }
}

/// An HTTP response.
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: Status,
    /// Headers.
    pub headers: Headers,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A 200 response with a body and content type.
    pub fn ok(content_type: &str, body: impl Into<Vec<u8>>) -> Response {
        let mut headers = Headers::new();
        headers.set("Content-Type", content_type);
        Response {
            status: Status::OK,
            headers,
            body: body.into(),
        }
    }

    /// An error response with a plain-text body.
    pub fn error(status: Status, message: &str) -> Response {
        let mut headers = Headers::new();
        headers.set("Content-Type", "text/plain; charset=utf-8");
        Response {
            status,
            headers,
            body: message.as_bytes().to_vec(),
        }
    }

    /// Body interpreted as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Serializes the response to wire form (always sets Content-Length).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(128 + self.body.len());
        out.extend_from_slice(
            format!("HTTP/1.1 {} {}\r\n", self.status.0, self.status.reason()).as_bytes(),
        );
        for (k, v) in self.headers.iter() {
            if k.eq_ignore_ascii_case("content-length") {
                continue; // recomputed below
            }
            out.extend_from_slice(k.as_bytes());
            out.extend_from_slice(b": ");
            out.extend_from_slice(v.as_bytes());
            out.extend_from_slice(b"\r\n");
        }
        out.extend_from_slice(format!("Content-Length: {}\r\n\r\n", self.body.len()).as_bytes());
        out.extend_from_slice(&self.body);
        out
    }
}

fn split_target(target: &str) -> (String, String) {
    match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target.to_string(), String::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headers_are_case_insensitive_ordered() {
        let mut h = Headers::new();
        h.push("Content-Type", "text/xml");
        h.push("X-A", "1");
        h.push("X-A", "2");
        assert_eq!(h.get("content-type"), Some("text/xml"));
        assert_eq!(h.get("x-a"), Some("1"));
        h.set("x-a", "3");
        assert_eq!(h.get("X-A"), Some("3"));
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn request_target_roundtrip() {
        let r = Request::get("/search/radial?ra=185.0&dec=1.5");
        assert_eq!(r.path, "/search/radial");
        assert_eq!(r.query, "ra=185.0&dec=1.5");
        assert_eq!(r.target(), "/search/radial?ra=185.0&dec=1.5");
        let params = r.query_params();
        assert_eq!(params[0], ("ra".to_string(), "185.0".to_string()));
    }

    #[test]
    fn request_wire_form_has_length() {
        let r = Request::post_form("/sql", "cmd=SELECT");
        let text = String::from_utf8(r.to_bytes()).unwrap();
        assert!(text.starts_with("POST /sql HTTP/1.1\r\n"));
        assert!(text.contains("Content-Length: 10\r\n"));
        assert!(text.ends_with("\r\ncmd=SELECT"));
    }

    #[test]
    fn response_wire_form() {
        let r = Response::ok("text/plain", "hi");
        let text = String::from_utf8(r.to_bytes()).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.ends_with("\r\n\r\nhi"));
        assert!(Status::OK.is_success());
        assert!(!Status::NOT_FOUND.is_success());
    }

    #[test]
    fn method_parse_is_strict() {
        assert_eq!(Method::parse("GET"), Some(Method::Get));
        assert_eq!(Method::parse("get"), None);
        assert_eq!(Method::parse("PATCH"), None);
    }
}
