//! Robustness properties of the HTTP stack: the parser must never panic on
//! arbitrary bytes, and well-formed messages must round-trip through their
//! wire forms.

use fp_httpd::parse::{read_request, read_response};
use fp_httpd::urlenc::{decode_component, encode_component, encode_query, parse_query};
use fp_httpd::{Request, Response};
use proptest::prelude::*;
use std::io::BufReader;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Absolutely arbitrary bytes: parsing may fail, but never panic.
    #[test]
    fn request_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_request(&mut BufReader::new(bytes.as_slice()));
    }

    #[test]
    fn response_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = read_response(&mut BufReader::new(bytes.as_slice()));
    }

    /// ASCII-ish garbage that *looks* like HTTP: still no panic.
    #[test]
    fn almost_http_never_panics(
        method in "[A-Z]{1,8}",
        target in "[ -~]{0,40}",
        headers in prop::collection::vec(("[A-Za-z-]{1,12}", "[ -~]{0,20}"), 0..4),
        body in "[ -~]{0,64}",
    ) {
        let mut text = format!("{method} {target} HTTP/1.1\r\n");
        for (k, v) in &headers {
            text.push_str(&format!("{k}: {v}\r\n"));
        }
        text.push_str("\r\n");
        text.push_str(&body);
        let _ = read_request(&mut BufReader::new(text.as_bytes()));
    }

    /// Requests round-trip through serialization for arbitrary targets
    /// and bodies.
    #[test]
    fn request_roundtrip(
        path_seg in "[a-z0-9/_.-]{0,24}",
        query in "[a-z0-9=&+%._-]{0,24}",
        body in prop::collection::vec(any::<u8>(), 0..128),
    ) {
        let target = if query.is_empty() {
            format!("/{path_seg}")
        } else {
            format!("/{path_seg}?{query}")
        };
        let mut original = Request::post_form(&target, body);
        original.headers.set("X-Test", "1");
        let parsed = read_request(&mut BufReader::new(original.to_bytes().as_slice()))
            .expect("well-formed")
            .expect("present");
        prop_assert_eq!(parsed.path, original.path);
        prop_assert_eq!(parsed.query, original.query);
        prop_assert_eq!(parsed.body, original.body);
        prop_assert_eq!(parsed.headers.get("x-test"), Some("1"));
    }

    /// Responses round-trip for arbitrary bodies (including binary).
    #[test]
    fn response_roundtrip(body in prop::collection::vec(any::<u8>(), 0..256)) {
        let original = Response::ok("application/octet-stream", body);
        let parsed = read_response(&mut BufReader::new(original.to_bytes().as_slice()))
            .expect("well-formed");
        prop_assert_eq!(parsed.status, original.status);
        prop_assert_eq!(parsed.body, original.body);
    }

    /// URL component encoding is lossless for arbitrary strings.
    #[test]
    fn urlenc_component_roundtrip(s in "\\PC{0,48}") {
        prop_assert_eq!(decode_component(&encode_component(&s)), s);
    }

    /// Query-string encoding is lossless for arbitrary key/value pairs.
    #[test]
    fn urlenc_query_roundtrip(
        pairs in prop::collection::vec(("[ -~]{1,12}", "[ -~]{0,16}"), 0..6),
    ) {
        let encoded = encode_query(&pairs);
        let decoded = parse_query(&encoded);
        prop_assert_eq!(decoded, pairs);
    }

    /// Decoding never panics on malformed escapes.
    #[test]
    fn decode_never_panics(s in "[ -~%+]{0,64}") {
        let _ = decode_component(&s);
    }
}
