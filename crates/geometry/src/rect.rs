//! Axis-aligned hyperrectangles.

use crate::point::Point;
use crate::{approx_eq, approx_ge, approx_le, GeometryError, Result, EPS};
use serde::{Deserialize, Serialize};

/// A closed, axis-aligned box `[lo_0, hi_0] × … × [lo_{d-1}, hi_{d-1}]`.
///
/// This is the region type behind rectangular table-valued functions such as
/// SkyServer's `fGetObjFromRect(min_ra, max_ra, min_dec, max_dec)`, and it
/// also serves as the bounding-box key the R-tree cache description indexes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperRect {
    lo: Vec<f64>,
    hi: Vec<f64>,
}

impl HyperRect {
    /// Creates a rectangle from lower and upper corners.
    ///
    /// # Errors
    /// Returns an error when the corners disagree on dimensionality, are
    /// empty, contain non-finite values, or are inverted in some dimension.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self> {
        if lo.len() != hi.len() {
            return Err(GeometryError::DimensionMismatch {
                left: lo.len(),
                right: hi.len(),
            });
        }
        if lo.is_empty() {
            return Err(GeometryError::ZeroDimensions);
        }
        if lo.iter().chain(hi.iter()).any(|c| !c.is_finite()) {
            return Err(GeometryError::NotFinite { what: "bound" });
        }
        for (d, (l, h)) in lo.iter().zip(&hi).enumerate() {
            if l > h {
                return Err(GeometryError::InvertedBounds { dim: d });
            }
        }
        Ok(HyperRect { lo, hi })
    }

    /// The degenerate rectangle containing exactly one point.
    pub fn degenerate(p: &Point) -> Self {
        HyperRect {
            lo: p.coords().to_vec(),
            hi: p.coords().to_vec(),
        }
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.lo.len()
    }

    /// Lower corner.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper corner.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// Side length in dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> f64 {
        self.hi[d] - self.lo[d]
    }

    /// Center point of the rectangle.
    pub fn center(&self) -> Point {
        let coords: Vec<f64> = self
            .lo
            .iter()
            .zip(&self.hi)
            .map(|(l, h)| 0.5 * (l + h))
            .collect();
        Point::from_slice(&coords)
    }

    /// Volume (product of side lengths). Degenerate boxes have volume zero.
    pub fn volume(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).product()
    }

    /// Sum of side lengths; the "margin" criterion used by R-tree splits.
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(&self.hi).map(|(l, h)| h - l).sum()
    }

    /// Whether `p` lies inside the closed box (within [`EPS`]).
    pub fn contains_point(&self, p: &Point) -> bool {
        self.contains_coords(p.coords())
    }

    /// [`Self::contains_point`] on a raw coordinate slice (hot path).
    #[inline]
    pub fn contains_coords(&self, coords: &[f64]) -> bool {
        debug_assert_eq!(coords.len(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(coords)
            .all(|((l, h), c)| approx_le(*l, *c) && approx_le(*c, *h))
    }

    /// Whether `self` fully contains `other` (closed containment).
    pub fn contains_rect(&self, other: &HyperRect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((sl, sh), (ol, oh))| approx_le(*sl, *ol) && approx_ge(*sh, *oh))
    }

    /// Whether the closed boxes share at least one point.
    pub fn intersects_rect(&self, other: &HyperRect) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
            .all(|((sl, sh), (ol, oh))| approx_le(*sl, *oh) && approx_le(*ol, *sh))
    }

    /// Whether the boxes are equal within [`EPS`].
    pub fn approx_eq(&self, other: &HyperRect) -> bool {
        self.dims() == other.dims()
            && self
                .lo
                .iter()
                .zip(&other.lo)
                .chain(self.hi.iter().zip(&other.hi))
                .all(|(a, b)| approx_eq(*a, *b))
    }

    /// Smallest box enclosing both operands.
    ///
    /// # Errors
    /// Returns an error when dimensions differ.
    pub fn union(&self, other: &HyperRect) -> Result<HyperRect> {
        if self.dims() != other.dims() {
            return Err(GeometryError::DimensionMismatch {
                left: self.dims(),
                right: other.dims(),
            });
        }
        let lo = self
            .lo
            .iter()
            .zip(&other.lo)
            .map(|(a, b)| a.min(*b))
            .collect();
        let hi = self
            .hi
            .iter()
            .zip(&other.hi)
            .map(|(a, b)| a.max(*b))
            .collect();
        Ok(HyperRect { lo, hi })
    }

    /// Intersection of the closed boxes, or `None` when they are disjoint.
    pub fn intersection(&self, other: &HyperRect) -> Option<HyperRect> {
        debug_assert_eq!(self.dims(), other.dims());
        let mut lo = Vec::with_capacity(self.dims());
        let mut hi = Vec::with_capacity(self.dims());
        for ((sl, sh), (ol, oh)) in self
            .lo
            .iter()
            .zip(&self.hi)
            .zip(other.lo.iter().zip(&other.hi))
        {
            let l = sl.max(*ol);
            let h = sh.min(*oh);
            if l > h + EPS {
                return None;
            }
            lo.push(l);
            hi.push(h.max(l));
        }
        Some(HyperRect { lo, hi })
    }

    /// Volume the union bounding box would gain if `other` were merged in;
    /// the enlargement criterion of R-tree insertion.
    pub fn enlargement(&self, other: &HyperRect) -> f64 {
        let union = self
            .union(other)
            .expect("enlargement requires equal dimensions");
        union.volume() - self.volume()
    }

    /// Minimum squared Euclidean distance from `coords` to the box
    /// (zero when inside).
    pub fn min_dist2(&self, coords: &[f64]) -> f64 {
        debug_assert_eq!(coords.len(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(coords)
            .map(|((l, h), c)| {
                let d = if c < l {
                    l - c
                } else if c > h {
                    c - h
                } else {
                    0.0
                };
                d * d
            })
            .sum()
    }

    /// Maximum squared Euclidean distance from `coords` to any point of the box.
    pub fn max_dist2(&self, coords: &[f64]) -> f64 {
        debug_assert_eq!(coords.len(), self.dims());
        self.lo
            .iter()
            .zip(&self.hi)
            .zip(coords)
            .map(|((l, h), c)| {
                let d = (c - l).abs().max((c - h).abs());
                d * d
            })
            .sum()
    }

    /// Iterates the 2^d corner points. Intended for small d (d ≤ ~20).
    pub fn corners(&self) -> impl Iterator<Item = Point> + '_ {
        let d = self.dims();
        debug_assert!(d < usize::BITS as usize);
        (0u64..(1u64 << d)).map(move |mask| {
            let coords: Vec<f64> = (0..d)
                .map(|i| {
                    if mask & (1 << i) != 0 {
                        self.hi[i]
                    } else {
                        self.lo[i]
                    }
                })
                .collect();
            Point::from_slice(&coords)
        })
    }
}

impl std::fmt::Display for HyperRect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for d in 0..self.dims() {
            if d > 0 {
                write!(f, " x ")?;
            }
            write!(f, "{}..{}", self.lo[d], self.hi[d])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r2(lo: [f64; 2], hi: [f64; 2]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(HyperRect::new(vec![], vec![]).is_err());
        assert!(HyperRect::new(vec![0.0], vec![0.0, 1.0]).is_err());
        assert!(HyperRect::new(vec![1.0], vec![0.0]).is_err());
        assert!(HyperRect::new(vec![f64::NAN], vec![0.0]).is_err());
        assert!(HyperRect::new(vec![0.0], vec![0.0]).is_ok());
    }

    #[test]
    fn containment_and_intersection() {
        let outer = r2([0.0, 0.0], [10.0, 10.0]);
        let inner = r2([2.0, 2.0], [5.0, 5.0]);
        let far = r2([20.0, 20.0], [30.0, 30.0]);
        let touching = r2([10.0, 0.0], [12.0, 5.0]);

        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
        assert!(outer.intersects_rect(&inner));
        assert!(!outer.intersects_rect(&far));
        // closed boxes: sharing a face counts as intersecting
        assert!(outer.intersects_rect(&touching));
    }

    #[test]
    fn point_containment_is_closed() {
        let r = r2([0.0, 0.0], [1.0, 1.0]);
        assert!(r.contains_point(&Point::new(vec![0.0, 0.0]).unwrap()));
        assert!(r.contains_point(&Point::new(vec![1.0, 1.0]).unwrap()));
        assert!(r.contains_point(&Point::new(vec![0.5, 0.5]).unwrap()));
        assert!(!r.contains_point(&Point::new(vec![1.1, 0.5]).unwrap()));
    }

    #[test]
    fn union_and_intersection_geometry() {
        let a = r2([0.0, 0.0], [2.0, 2.0]);
        let b = r2([1.0, 1.0], [3.0, 3.0]);
        let u = a.union(&b).unwrap();
        assert_eq!(u.lo(), &[0.0, 0.0]);
        assert_eq!(u.hi(), &[3.0, 3.0]);
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.lo(), &[1.0, 1.0]);
        assert_eq!(i.hi(), &[2.0, 2.0]);
        let far = r2([10.0, 10.0], [11.0, 11.0]);
        assert!(a.intersection(&far).is_none());
    }

    #[test]
    fn volume_margin_enlargement() {
        let a = r2([0.0, 0.0], [2.0, 3.0]);
        assert_eq!(a.volume(), 6.0);
        assert_eq!(a.margin(), 5.0);
        let b = r2([0.0, 0.0], [4.0, 3.0]);
        assert_eq!(a.enlargement(&b), 6.0);
        assert_eq!(b.enlargement(&a), 0.0);
    }

    #[test]
    fn distances_to_box() {
        let r = r2([0.0, 0.0], [1.0, 1.0]);
        assert_eq!(r.min_dist2(&[0.5, 0.5]), 0.0);
        assert_eq!(r.min_dist2(&[2.0, 0.5]), 1.0);
        assert_eq!(r.min_dist2(&[2.0, 2.0]), 2.0);
        assert_eq!(r.max_dist2(&[0.0, 0.0]), 2.0);
    }

    #[test]
    fn corners_enumerate_all() {
        let r = r2([0.0, 0.0], [1.0, 2.0]);
        let corners: Vec<_> = r.corners().map(|p| p.coords().to_vec()).collect();
        assert_eq!(corners.len(), 4);
        assert!(corners.contains(&vec![0.0, 0.0]));
        assert!(corners.contains(&vec![1.0, 0.0]));
        assert!(corners.contains(&vec![0.0, 2.0]));
        assert!(corners.contains(&vec![1.0, 2.0]));
    }

    #[test]
    fn center_and_degenerate() {
        let r = r2([0.0, 2.0], [2.0, 4.0]);
        assert_eq!(r.center().coords(), &[1.0, 3.0]);
        let p = Point::new(vec![1.0, 1.0]).unwrap();
        let d = HyperRect::degenerate(&p);
        assert_eq!(d.volume(), 0.0);
        assert!(d.contains_point(&p));
    }

    #[test]
    fn display_formats() {
        let r = r2([0.0, 1.0], [2.0, 3.0]);
        assert_eq!(r.to_string(), "[0..2 x 1..3]");
    }
}
