//! Celestial coordinate helpers for SkyServer-style radial queries.
//!
//! SkyServer's Radial search calls `fGetNearbyObjEq(ra, dec, radius)` with
//! `ra`/`dec` in degrees and `radius` in **arc minutes**. The paper's
//! function template (Figure 3) abstracts this as a 3-D hypersphere around
//! the unit vector
//!
//! ```text
//! (cx, cy, cz) = (cos ra · cos dec, sin ra · cos dec, sin dec)
//! ```
//!
//! On the unit sphere, the set of points within *angular* distance θ of a
//! center direction equals the set of points within **chord** distance
//! `2·sin(θ/2)` of the center's unit vector, so an angular cone maps exactly
//! onto a Euclidean 3-D ball over `(cx, cy, cz)` — which is why the
//! template-based region checks of the proxy are exact for Radial queries.

use crate::point::Point;
use crate::sphere::HyperSphere;
use crate::{GeometryError, Result};

/// Degrees → radians.
#[inline]
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * std::f64::consts::PI / 180.0
}

/// Radians → degrees.
#[inline]
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / std::f64::consts::PI
}

/// Arc minutes → radians.
#[inline]
pub fn arcmin_to_rad(arcmin: f64) -> f64 {
    deg_to_rad(arcmin / 60.0)
}

/// Converts equatorial coordinates (degrees) to the unit vector
/// `(cx, cy, cz)` used by SkyServer result tuples.
pub fn radec_to_unit(ra_deg: f64, dec_deg: f64) -> [f64; 3] {
    let ra = deg_to_rad(ra_deg);
    let dec = deg_to_rad(dec_deg);
    [ra.cos() * dec.cos(), ra.sin() * dec.cos(), dec.sin()]
}

/// Converts a unit vector back to `(ra, dec)` in degrees, with
/// `ra ∈ [0, 360)` and `dec ∈ [-90, 90]`.
pub fn unit_to_radec(v: [f64; 3]) -> (f64, f64) {
    let dec = v[2].clamp(-1.0, 1.0).asin();
    let mut ra = v[1].atan2(v[0]);
    if ra < 0.0 {
        ra += 2.0 * std::f64::consts::PI;
    }
    (rad_to_deg(ra), rad_to_deg(dec))
}

/// Chord length on the unit sphere spanned by angle `theta_rad`.
#[inline]
pub fn chord_of_angle(theta_rad: f64) -> f64 {
    2.0 * (theta_rad / 2.0).sin()
}

/// Angle spanned by chord length `chord` on the unit sphere.
#[inline]
pub fn angle_of_chord(chord: f64) -> f64 {
    2.0 * (chord / 2.0).clamp(0.0, 2.0).asin()
}

/// Angular separation (radians) between two directions given in degrees.
///
/// Uses the haversine-free chord formulation, which is numerically stable
/// for the small separations radial queries use.
pub fn angular_separation(ra1: f64, dec1: f64, ra2: f64, dec2: f64) -> f64 {
    let a = radec_to_unit(ra1, dec1);
    let b = radec_to_unit(ra2, dec2);
    let chord2 = (a[0] - b[0]).powi(2) + (a[1] - b[1]).powi(2) + (a[2] - b[2]).powi(2);
    angle_of_chord(chord2.sqrt())
}

/// Builds the exact 3-D ball over `(cx, cy, cz)` for a Radial query:
/// objects within `radius_arcmin` of `(ra_deg, dec_deg)`.
///
/// # Errors
/// Returns an error when any input is non-finite or the radius is negative.
pub fn radial_query_sphere(ra_deg: f64, dec_deg: f64, radius_arcmin: f64) -> Result<HyperSphere> {
    if !ra_deg.is_finite() || !dec_deg.is_finite() {
        return Err(GeometryError::NotFinite { what: "ra/dec" });
    }
    if !radius_arcmin.is_finite() {
        return Err(GeometryError::NotFinite { what: "radius" });
    }
    if radius_arcmin < 0.0 {
        return Err(GeometryError::Negative { what: "radius" });
    }
    let center = Point::new(radec_to_unit(ra_deg, dec_deg).to_vec())?;
    let chord = chord_of_angle(arcmin_to_rad(radius_arcmin));
    HyperSphere::new(center, chord)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOL: f64 = 1e-10;

    #[test]
    fn unit_vectors_of_cardinal_directions() {
        let v = radec_to_unit(0.0, 0.0);
        assert!((v[0] - 1.0).abs() < TOL && v[1].abs() < TOL && v[2].abs() < TOL);
        let v = radec_to_unit(90.0, 0.0);
        assert!(v[0].abs() < TOL && (v[1] - 1.0).abs() < TOL);
        let v = radec_to_unit(123.0, 90.0);
        assert!((v[2] - 1.0).abs() < TOL);
    }

    #[test]
    fn radec_roundtrip() {
        for &(ra, dec) in &[(0.0, 0.0), (185.3, 1.2), (359.9, -45.0), (10.0, 89.0)] {
            let (ra2, dec2) = unit_to_radec(radec_to_unit(ra, dec));
            assert!((ra - ra2).abs() < 1e-9, "ra {ra} vs {ra2}");
            assert!((dec - dec2).abs() < 1e-9, "dec {dec} vs {dec2}");
        }
    }

    #[test]
    fn chord_angle_roundtrip() {
        for &theta in &[0.0, 1e-6, 0.01, 0.5, 1.0, std::f64::consts::PI] {
            let chord = chord_of_angle(theta);
            assert!((angle_of_chord(chord) - theta).abs() < 1e-9);
        }
    }

    #[test]
    fn angular_separation_basics() {
        // 90 degrees between the x and y axes
        let sep = angular_separation(0.0, 0.0, 90.0, 0.0);
        assert!((sep - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        // zero separation
        assert!(angular_separation(10.0, 20.0, 10.0, 20.0) < 1e-12);
    }

    #[test]
    fn radial_sphere_membership_matches_angular_distance() {
        // 30-arcmin query around (185, 1.5): a point 20' away is in,
        // a point 40' away is out.
        let q = radial_query_sphere(185.0, 1.5, 30.0).unwrap();
        let inside = radec_to_unit(185.0, 1.5 + 20.0 / 60.0);
        let outside = radec_to_unit(185.0, 1.5 + 40.0 / 60.0);
        assert!(q.contains_coords(&inside));
        assert!(!q.contains_coords(&outside));
    }

    #[test]
    fn radial_sphere_containment_mirrors_angular_containment() {
        // Concentric radial queries: the larger radius contains the smaller.
        let big = radial_query_sphere(185.0, 1.5, 30.0).unwrap();
        let small = radial_query_sphere(185.0, 1.5, 10.0).unwrap();
        assert!(big.contains_sphere(&small));
        assert!(!small.contains_sphere(&big));
        // Offset by 15' with radii 30' and 10': contained in angle
        // (15 + 10 <= 30) with a 5' margin that dwarfs the O(θ³) gap
        // between chord and angle at arcminute scales, so the 3-D chord
        // ball check also proves containment. (Exactly tangent caps would
        // conservatively classify as overlapping — sound, never wrong.)
        let offset = radial_query_sphere(185.0 + 15.0 / 60.0, 1.5, 10.0).unwrap();
        assert!(big.contains_sphere(&offset));
    }

    #[test]
    fn radial_sphere_validates_inputs() {
        assert!(radial_query_sphere(f64::NAN, 0.0, 1.0).is_err());
        assert!(radial_query_sphere(0.0, 0.0, -1.0).is_err());
        assert!(radial_query_sphere(0.0, 0.0, f64::INFINITY).is_err());
    }
}
