//! Pairwise region relationship classification.
//!
//! This is the geometric core of the paper's Section 3: "we can transform
//! the problem of checking the relationship between two queries (query exact
//! match, containment, overlapping, or disjoint) into that of checking the
//! spatial relationship between the two corresponding regions."

use crate::polytope::Polytope;
use crate::rect::HyperRect;
use crate::region::Region;
use crate::sphere::HyperSphere;

/// Relationship of a *new* region `a` to a *cached* region `b`.
///
/// # Soundness contract
///
/// * `Equal`, `Inside`, `Contains`, `Disjoint` are only returned when the
///   relation **provably holds** (point-set semantics, closed regions).
/// * `Overlaps` is the safe default: it is returned both for genuine partial
///   overlap and whenever a polytope is involved and neither containment nor
///   disjointness could be proven. The proxy treats `Overlaps`
///   conservatively (consults the origin site), so an imprecise `Overlaps`
///   can cost performance but never correctness.
///
/// Sphere/sphere, rect/rect, and sphere/rect pairs are decided exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// The regions cover the same point set (within tolerance).
    Equal,
    /// `a ⊆ b`: the new query is subsumed by the cached query.
    Inside,
    /// `a ⊇ b`: the new query contains the cached query (region containment).
    Contains,
    /// The regions share some, but provably not all, points — or the
    /// relationship could not be proven more precisely.
    Overlaps,
    /// The regions provably share no point.
    Disjoint,
}

impl Relation {
    /// The same relation seen from the other operand.
    pub fn flip(self) -> Relation {
        match self {
            Relation::Inside => Relation::Contains,
            Relation::Contains => Relation::Inside,
            other => other,
        }
    }

    /// Whether the new query can be fully answered from the cached one.
    pub fn answerable_from_cache(self) -> bool {
        matches!(self, Relation::Equal | Relation::Inside)
    }
}

impl std::fmt::Display for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Relation::Equal => "equal",
            Relation::Inside => "inside",
            Relation::Contains => "contains",
            Relation::Overlaps => "overlaps",
            Relation::Disjoint => "disjoint",
        };
        f.write_str(s)
    }
}

/// Classifies `a` against `b`. Exposed as [`Region::relate`].
pub(crate) fn relate_regions(a: &Region, b: &Region) -> Relation {
    debug_assert_eq!(a.dims(), b.dims(), "regions must share dimensionality");
    match (a, b) {
        (Region::Rect(ra), Region::Rect(rb)) => relate_rect_rect(ra, rb),
        (Region::Sphere(sa), Region::Sphere(sb)) => relate_sphere_sphere(sa, sb),
        (Region::Sphere(s), Region::Rect(r)) => relate_sphere_rect(s, r),
        (Region::Rect(r), Region::Sphere(s)) => relate_sphere_rect(s, r).flip(),
        (Region::Polytope(p), Region::Rect(r)) => relate_polytope_rect(p, r),
        (Region::Rect(r), Region::Polytope(p)) => relate_polytope_rect(p, r).flip(),
        (Region::Polytope(p), Region::Sphere(s)) => relate_polytope_sphere(p, s),
        (Region::Sphere(s), Region::Polytope(p)) => relate_polytope_sphere(p, s).flip(),
        (Region::Polytope(pa), Region::Polytope(pb)) => relate_polytope_polytope(pa, pb),
    }
}

fn relate_rect_rect(a: &HyperRect, b: &HyperRect) -> Relation {
    if a.approx_eq(b) {
        return Relation::Equal;
    }
    if b.contains_rect(a) {
        return Relation::Inside;
    }
    if a.contains_rect(b) {
        return Relation::Contains;
    }
    if a.intersects_rect(b) {
        Relation::Overlaps
    } else {
        Relation::Disjoint
    }
}

fn relate_sphere_sphere(a: &HyperSphere, b: &HyperSphere) -> Relation {
    if a.approx_eq(b) {
        return Relation::Equal;
    }
    if b.contains_sphere(a) {
        return Relation::Inside;
    }
    if a.contains_sphere(b) {
        return Relation::Contains;
    }
    if a.intersects_sphere(b) {
        Relation::Overlaps
    } else {
        Relation::Disjoint
    }
}

/// Relation of the sphere `s` to the rect `r` (exact in every case).
fn relate_sphere_rect(s: &HyperSphere, r: &HyperRect) -> Relation {
    // A ball and a box can only be Equal when the ball is degenerate and the
    // box is the same single point.
    let inside = s.inside_rect(r);
    let contains = s.contains_rect(r);
    if inside && contains {
        return Relation::Equal;
    }
    if inside {
        return Relation::Inside;
    }
    if contains {
        return Relation::Contains;
    }
    if s.intersects_rect(r) {
        Relation::Overlaps
    } else {
        Relation::Disjoint
    }
}

/// Relation of the polytope `p` to the rect `r`; sound, conservative.
fn relate_polytope_rect(p: &Polytope, r: &HyperRect) -> Relation {
    let inside = p.inside_rect_conservative(r);
    let contains = p.contains_rect(r);
    if inside && contains {
        return Relation::Equal;
    }
    if inside {
        return Relation::Inside;
    }
    if contains {
        return Relation::Contains;
    }
    if p.disjoint_rect(r) {
        Relation::Disjoint
    } else {
        Relation::Overlaps
    }
}

/// Relation of the polytope `p` to the sphere `s`; sound, conservative.
fn relate_polytope_sphere(p: &Polytope, s: &HyperSphere) -> Relation {
    let inside = p.inside_sphere_conservative(s);
    let contains = p.contains_sphere(s);
    if inside && contains {
        return Relation::Equal;
    }
    if inside {
        return Relation::Inside;
    }
    if contains {
        return Relation::Contains;
    }
    if p.disjoint_sphere(s) {
        Relation::Disjoint
    } else {
        Relation::Overlaps
    }
}

/// Relation of two polytopes; sound, conservative.
///
/// Containment either way is proven through one bounding box: `a ⊆ b` when
/// `b.contains_rect(a.bbox())` (exact test of box-in-polytope, and bbox ⊇ a).
fn relate_polytope_polytope(a: &Polytope, b: &Polytope) -> Relation {
    let inside = b.contains_rect(a.bbox());
    let contains = a.contains_rect(b.bbox());
    if inside && contains {
        return Relation::Equal;
    }
    if inside {
        return Relation::Inside;
    }
    if contains {
        return Relation::Contains;
    }
    if a.disjoint_rect(b.bbox()) || b.disjoint_rect(a.bbox()) {
        return Relation::Disjoint;
    }
    Relation::Overlaps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;

    fn rect(lo: &[f64], hi: &[f64]) -> Region {
        HyperRect::new(lo.to_vec(), hi.to_vec()).unwrap().into()
    }

    fn ball(c: &[f64], r: f64) -> Region {
        HyperSphere::new(Point::from_slice(c), r).unwrap().into()
    }

    #[test]
    fn flip_is_involutive() {
        for r in [
            Relation::Equal,
            Relation::Inside,
            Relation::Contains,
            Relation::Overlaps,
            Relation::Disjoint,
        ] {
            assert_eq!(r.flip().flip(), r);
        }
        assert_eq!(Relation::Inside.flip(), Relation::Contains);
    }

    #[test]
    fn answerable_only_for_equal_and_inside() {
        assert!(Relation::Equal.answerable_from_cache());
        assert!(Relation::Inside.answerable_from_cache());
        assert!(!Relation::Contains.answerable_from_cache());
        assert!(!Relation::Overlaps.answerable_from_cache());
        assert!(!Relation::Disjoint.answerable_from_cache());
    }

    #[test]
    fn rect_rect_all_cases() {
        let a = rect(&[0.0, 0.0], &[4.0, 4.0]);
        assert_eq!(a.relate(&rect(&[0.0, 0.0], &[4.0, 4.0])), Relation::Equal);
        assert_eq!(
            a.relate(&rect(&[-1.0, -1.0], &[5.0, 5.0])),
            Relation::Inside
        );
        assert_eq!(
            a.relate(&rect(&[1.0, 1.0], &[2.0, 2.0])),
            Relation::Contains
        );
        assert_eq!(
            a.relate(&rect(&[3.0, 3.0], &[6.0, 6.0])),
            Relation::Overlaps
        );
        assert_eq!(
            a.relate(&rect(&[9.0, 9.0], &[10.0, 10.0])),
            Relation::Disjoint
        );
    }

    #[test]
    fn sphere_sphere_all_cases() {
        let a = ball(&[0.0, 0.0], 2.0);
        assert_eq!(a.relate(&ball(&[0.0, 0.0], 2.0)), Relation::Equal);
        assert_eq!(a.relate(&ball(&[0.5, 0.0], 5.0)), Relation::Inside);
        assert_eq!(a.relate(&ball(&[0.5, 0.0], 0.5)), Relation::Contains);
        assert_eq!(a.relate(&ball(&[3.0, 0.0], 2.0)), Relation::Overlaps);
        assert_eq!(a.relate(&ball(&[10.0, 0.0], 2.0)), Relation::Disjoint);
    }

    #[test]
    fn sphere_rect_all_cases() {
        let s = ball(&[0.0, 0.0], 2.0);
        assert_eq!(
            s.relate(&rect(&[-5.0, -5.0], &[5.0, 5.0])),
            Relation::Inside
        );
        assert_eq!(
            s.relate(&rect(&[-1.0, -1.0], &[1.0, 1.0])),
            Relation::Contains
        );
        assert_eq!(
            s.relate(&rect(&[1.0, 1.0], &[5.0, 5.0])),
            Relation::Overlaps
        );
        assert_eq!(
            s.relate(&rect(&[10.0, 10.0], &[11.0, 11.0])),
            Relation::Disjoint
        );
        // and from the rect's point of view the relation flips
        let r = rect(&[-5.0, -5.0], &[5.0, 5.0]);
        assert_eq!(r.relate(&s), Relation::Contains);
    }

    #[test]
    fn degenerate_sphere_rect_equality() {
        let s = ball(&[1.0, 1.0], 0.0);
        let r = rect(&[1.0, 1.0], &[1.0, 1.0]);
        assert_eq!(s.relate(&r), Relation::Equal);
        assert_eq!(r.relate(&s), Relation::Equal);
    }

    #[test]
    fn polytope_relations_are_sound() {
        // The triangle x>=0, y>=0, x+y<=1.
        let t: Region = {
            use crate::polytope::HalfSpace;
            let faces = vec![
                HalfSpace::new(vec![-1.0, 0.0], 0.0).unwrap(),
                HalfSpace::new(vec![0.0, -1.0], 0.0).unwrap(),
                HalfSpace::new(vec![1.0, 1.0], 1.0).unwrap(),
            ];
            let bbox = HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
            Polytope::new(faces, bbox).unwrap().into()
        };
        // contains a small rect near the origin
        assert_eq!(
            t.relate(&rect(&[0.1, 0.1], &[0.2, 0.2])),
            Relation::Contains
        );
        // inside a big rect
        assert_eq!(
            t.relate(&rect(&[-1.0, -1.0], &[2.0, 2.0])),
            Relation::Inside
        );
        // disjoint from a far rect
        assert_eq!(
            t.relate(&rect(&[5.0, 5.0], &[6.0, 6.0])),
            Relation::Disjoint
        );
        // disjoint via a face proof (inside bbox, beyond hypotenuse)
        assert_eq!(
            t.relate(&rect(&[0.8, 0.8], &[0.9, 0.9])),
            Relation::Disjoint
        );
        // genuinely crossing the hypotenuse -> overlaps
        assert_eq!(
            t.relate(&rect(&[0.4, 0.4], &[0.9, 0.9])),
            Relation::Overlaps
        );
        // ball containment both ways
        assert_eq!(t.relate(&ball(&[0.25, 0.25], 0.05)), Relation::Contains);
        assert_eq!(t.relate(&ball(&[0.5, 0.5], 2.0)), Relation::Inside);
        // conservative: rect containing the triangle's true extent but not
        // the declared bbox still gets a sound answer (Overlaps, not wrong)
        let near = t.relate(&rect(&[0.0, 0.0], &[0.99, 0.99]));
        assert!(matches!(near, Relation::Overlaps | Relation::Contains));
    }

    #[test]
    fn polytope_polytope_via_bboxes() {
        let small = Region::Polytope(Polytope::from_rect(
            &HyperRect::new(vec![0.2, 0.2], vec![0.4, 0.4]).unwrap(),
        ));
        let big = Region::Polytope(Polytope::from_rect(
            &HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap(),
        ));
        let far = Region::Polytope(Polytope::from_rect(
            &HyperRect::new(vec![5.0, 5.0], vec![6.0, 6.0]).unwrap(),
        ));
        assert_eq!(small.relate(&big), Relation::Inside);
        assert_eq!(big.relate(&small), Relation::Contains);
        assert_eq!(big.relate(&far), Relation::Disjoint);
        assert_eq!(big.relate(&big.clone()), Relation::Equal);
    }

    #[test]
    fn display_names() {
        assert_eq!(Relation::Equal.to_string(), "equal");
        assert_eq!(Relation::Overlaps.to_string(), "overlaps");
    }
}
