//! The closed union of the proxy's supported region shapes.

use crate::point::Point;
use crate::polytope::Polytope;
use crate::rect::HyperRect;
use crate::relate::{relate_regions, Relation};
use crate::sphere::HyperSphere;
use serde::{Deserialize, Serialize};

/// A query region: the geometric meaning of one table-valued function call.
///
/// The proxy's template manager turns a bound function-embedded query into a
/// `Region` using the registered function template (shape + parameter
/// mapping); every caching decision afterwards is made on `Region`s alone,
/// without touching result data — the key idea of the paper's Section 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Region {
    /// An axis-aligned box, e.g. `fGetObjFromRect`.
    Rect(HyperRect),
    /// A ball, e.g. `fGetNearbyObjEq`.
    Sphere(HyperSphere),
    /// A convex polytope with a declared bounding box.
    Polytope(Polytope),
}

impl Region {
    /// Dimensionality of the region.
    pub fn dims(&self) -> usize {
        match self {
            Region::Rect(r) => r.dims(),
            Region::Sphere(s) => s.dims(),
            Region::Polytope(p) => p.dims(),
        }
    }

    /// Whether the point lies inside the (closed) region.
    pub fn contains_point(&self, p: &Point) -> bool {
        self.contains_coords(p.coords())
    }

    /// [`Self::contains_point`] on a raw coordinate slice — the inner loop
    /// of local evaluation of subsumed queries.
    #[inline]
    pub fn contains_coords(&self, coords: &[f64]) -> bool {
        match self {
            Region::Rect(r) => r.contains_coords(coords),
            Region::Sphere(s) => s.contains_coords(coords),
            Region::Polytope(p) => p.contains_coords(coords),
        }
    }

    /// Tight axis-aligned bounding box (declared box for polytopes).
    pub fn bounding_rect(&self) -> HyperRect {
        match self {
            Region::Rect(r) => r.clone(),
            Region::Sphere(s) => s.bounding_rect(),
            Region::Polytope(p) => p.bbox().clone(),
        }
    }

    /// Classifies the spatial relationship of `self` (the *new* query)
    /// against `other` (a *cached* query). See [`Relation`] for the
    /// soundness contract.
    pub fn relate(&self, other: &Region) -> Relation {
        relate_regions(self, other)
    }

    /// Short human-readable name of the shape; used in logs and templates.
    pub fn shape_name(&self) -> &'static str {
        match self {
            Region::Rect(_) => "hyperrect",
            Region::Sphere(_) => "hypersphere",
            Region::Polytope(_) => "polytope",
        }
    }
}

impl From<HyperRect> for Region {
    fn from(r: HyperRect) -> Self {
        Region::Rect(r)
    }
}

impl From<HyperSphere> for Region {
    fn from(s: HyperSphere) -> Self {
        Region::Sphere(s)
    }
}

impl From<Polytope> for Region {
    fn from(p: Polytope) -> Self {
        Region::Polytope(p)
    }
}

impl std::fmt::Display for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Region::Rect(r) => write!(f, "{r}"),
            Region::Sphere(s) => write!(f, "{s}"),
            Region::Polytope(p) => write!(f, "{p}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_and_shape_names() {
        let r: Region = HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0])
            .unwrap()
            .into();
        let s: Region = HyperSphere::new(Point::from_slice(&[0.0, 0.0, 0.0]), 1.0)
            .unwrap()
            .into();
        assert_eq!(r.dims(), 2);
        assert_eq!(s.dims(), 3);
        assert_eq!(r.shape_name(), "hyperrect");
        assert_eq!(s.shape_name(), "hypersphere");
    }

    #[test]
    fn membership_dispatches() {
        let r: Region = HyperRect::new(vec![0.0], vec![1.0]).unwrap().into();
        assert!(r.contains_coords(&[0.5]));
        assert!(!r.contains_coords(&[1.5]));
        let s: Region = HyperSphere::new(Point::from_slice(&[0.0]), 1.0)
            .unwrap()
            .into();
        assert!(s.contains_coords(&[-1.0]));
        assert!(!s.contains_coords(&[-1.01]));
    }

    #[test]
    fn bounding_rect_dispatches() {
        let s: Region = HyperSphere::new(Point::from_slice(&[1.0, 1.0]), 1.0)
            .unwrap()
            .into();
        // The ball's box is ε-padded to cover its fuzzy membership
        // fringe (see `HyperSphere::bounding_rect`), so near-equality.
        let bb = s.bounding_rect();
        for d in 0..2 {
            assert!(bb.lo()[d] <= 0.0 && bb.lo()[d] > -1e-8);
            assert!(bb.hi()[d] >= 2.0 && bb.hi()[d] < 2.0 + 1e-8);
        }
    }
}
