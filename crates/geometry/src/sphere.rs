//! Hyperspheres (d-dimensional closed balls).

use crate::point::{dist2_slices, Point};
use crate::rect::HyperRect;
use crate::{approx_eq, approx_le, GeometryError, Result, EPS};
use serde::{Deserialize, Serialize};

/// A closed ball `{x : |x - center| <= radius}` in d dimensions.
///
/// This is the region type behind SkyServer's Radial search: the function
/// template of `fGetNearbyObjEq(ra, dec, radius)` (paper Figure 3) abstracts
/// the function as *all points bounded by a 3-D hypersphere* around the unit
/// vector of `(ra, dec)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HyperSphere {
    center: Point,
    radius: f64,
}

impl HyperSphere {
    /// Creates a ball from a center and non-negative finite radius.
    ///
    /// # Errors
    /// Returns an error when the radius is negative or non-finite.
    pub fn new(center: Point, radius: f64) -> Result<Self> {
        if !radius.is_finite() {
            return Err(GeometryError::NotFinite { what: "radius" });
        }
        if radius < 0.0 {
            return Err(GeometryError::Negative { what: "radius" });
        }
        Ok(HyperSphere { center, radius })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.center.dims()
    }

    /// Ball center.
    #[inline]
    pub fn center(&self) -> &Point {
        &self.center
    }

    /// Ball radius.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius
    }

    /// Whether `p` lies in the closed ball.
    pub fn contains_point(&self, p: &Point) -> bool {
        self.contains_coords(p.coords())
    }

    /// [`Self::contains_point`] on a raw coordinate slice (hot path).
    #[inline]
    pub fn contains_coords(&self, coords: &[f64]) -> bool {
        debug_assert_eq!(coords.len(), self.dims());
        let d2 = dist2_slices(self.center.coords(), coords);
        approx_le(d2, self.radius * self.radius)
    }

    /// Whether `self` fully contains `other`:
    /// `|c1 - c2| + r2 <= r1`.
    pub fn contains_sphere(&self, other: &HyperSphere) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        let d = dist2_slices(self.center.coords(), other.center.coords()).sqrt();
        approx_le(d + other.radius, self.radius)
    }

    /// Whether the closed balls share at least one point:
    /// `|c1 - c2| <= r1 + r2`.
    pub fn intersects_sphere(&self, other: &HyperSphere) -> bool {
        debug_assert_eq!(self.dims(), other.dims());
        let d2 = dist2_slices(self.center.coords(), other.center.coords());
        let r = self.radius + other.radius;
        approx_le(d2, r * r)
    }

    /// Whether the balls are equal within tolerance.
    pub fn approx_eq(&self, other: &HyperSphere) -> bool {
        self.dims() == other.dims()
            && approx_eq(self.radius, other.radius)
            && self
                .center
                .coords()
                .iter()
                .zip(other.center.coords())
                .all(|(a, b)| approx_eq(*a, *b))
    }

    /// Whether `self` fully contains the box: true iff every corner of the
    /// box is inside the ball (the farthest point of a convex box from any
    /// center is a corner, so this is exact).
    pub fn contains_rect(&self, rect: &HyperRect) -> bool {
        debug_assert_eq!(self.dims(), rect.dims());
        let r2 = self.radius * self.radius;
        approx_le(rect.max_dist2(self.center.coords()), r2)
    }

    /// Whether the ball and the closed box share at least one point
    /// (min distance from center to box ≤ radius; exact).
    pub fn intersects_rect(&self, rect: &HyperRect) -> bool {
        debug_assert_eq!(self.dims(), rect.dims());
        let r2 = self.radius * self.radius;
        approx_le(rect.min_dist2(self.center.coords()), r2)
    }

    /// Whether the box fully contains the ball:
    /// `lo_d <= c_d - r` and `c_d + r <= hi_d` for every dimension (exact).
    pub fn inside_rect(&self, rect: &HyperRect) -> bool {
        debug_assert_eq!(self.dims(), rect.dims());
        self.center.coords().iter().enumerate().all(|(d, c)| {
            approx_le(rect.lo()[d], c - self.radius) && approx_le(c + self.radius, rect.hi()[d])
        })
    }

    /// Axis-aligned bounding box of every point [`Self::contains_coords`]
    /// accepts. Membership is ε-tolerant (`d² ≤ r² + EPS`), so the box
    /// half-width is `√(r² + EPS)`, not `r`: an exact `c ± r` box would
    /// silently drop fringe points, and a candidate search pruned by it
    /// (the origin's spatial index) would disagree with the membership
    /// test it feeds. At arcminute chord scales `EPS` on `d²` is ~0.3 %
    /// of the radius — large enough to lose real boundary objects.
    pub fn bounding_rect(&self) -> HyperRect {
        let half = (self.radius * self.radius + EPS).sqrt();
        let lo: Vec<f64> = self.center.coords().iter().map(|c| c - half).collect();
        let hi: Vec<f64> = self.center.coords().iter().map(|c| c + half).collect();
        HyperRect::new(lo, hi).expect("ball bounding box is well-formed")
    }
}

impl std::fmt::Display for HyperSphere {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ball(center={}, r={})", self.center, self.radius)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ball(center: &[f64], r: f64) -> HyperSphere {
        HyperSphere::new(Point::from_slice(center), r).unwrap()
    }

    #[test]
    fn construction_validates() {
        let c = Point::new(vec![0.0]).unwrap();
        assert!(HyperSphere::new(c.clone(), -1.0).is_err());
        assert!(HyperSphere::new(c.clone(), f64::NAN).is_err());
        assert!(HyperSphere::new(c, 0.0).is_ok());
    }

    #[test]
    fn point_containment_is_closed() {
        let b = ball(&[0.0, 0.0], 1.0);
        assert!(b.contains_coords(&[0.0, 0.0]));
        assert!(b.contains_coords(&[1.0, 0.0]));
        assert!(b.contains_coords(&[0.6, 0.6]));
        assert!(!b.contains_coords(&[0.8, 0.8]));
    }

    #[test]
    fn sphere_sphere_relations() {
        let big = ball(&[0.0, 0.0], 10.0);
        let small = ball(&[2.0, 0.0], 3.0);
        let far = ball(&[100.0, 0.0], 1.0);
        let tangent_inner = ball(&[7.0, 0.0], 3.0);
        let tangent_outer = ball(&[13.0, 0.0], 3.0);

        assert!(big.contains_sphere(&small));
        assert!(!small.contains_sphere(&big));
        assert!(big.contains_sphere(&tangent_inner)); // internal tangency counts
        assert!(big.intersects_sphere(&small));
        assert!(big.intersects_sphere(&tangent_outer)); // external tangency counts
        assert!(!big.intersects_sphere(&far));
        assert!(big.contains_sphere(&big));
    }

    #[test]
    fn sphere_rect_relations() {
        let b = ball(&[0.0, 0.0], 5.0);
        let inside = HyperRect::new(vec![-1.0, -1.0], vec![1.0, 1.0]).unwrap();
        let around = HyperRect::new(vec![-10.0, -10.0], vec![10.0, 10.0]).unwrap();
        let far = HyperRect::new(vec![20.0, 20.0], vec![21.0, 21.0]).unwrap();
        let corner_out = HyperRect::new(vec![0.0, 0.0], vec![4.0, 4.0]).unwrap();

        assert!(b.contains_rect(&inside));
        // corner (4,4) has distance sqrt(32) > 5: not contained, but intersects
        assert!(!b.contains_rect(&corner_out));
        assert!(b.intersects_rect(&corner_out));
        assert!(b.inside_rect(&around));
        assert!(!b.inside_rect(&inside));
        assert!(!b.intersects_rect(&far));
    }

    #[test]
    fn bounding_rect_covers_everything_membership_accepts() {
        let b = ball(&[1.0, 2.0, 3.0], 0.5);
        let r = b.bounding_rect();
        // Near-tight: within the ε fringe of the exact c ± r box.
        for d in 0..3 {
            assert!(r.lo()[d] <= b.center().coords()[d] - 0.5);
            assert!(r.hi()[d] >= b.center().coords()[d] + 0.5);
            assert!((r.lo()[d] - (b.center().coords()[d] - 0.5)).abs() < 1e-8);
            assert!((r.hi()[d] - (b.center().coords()[d] + 0.5)).abs() < 1e-8);
        }
        // Regression: a point the ε-tolerant membership accepts just
        // outside the exact radius must be inside the box, or index
        // pruning drops rows the membership filter would keep.
        let fringe = [1.0 + (0.25_f64 + crate::EPS / 2.0).sqrt(), 2.0, 3.0];
        assert!(b.contains_coords(&fringe));
        assert!(r.contains_coords(&fringe));
    }

    #[test]
    fn zero_radius_ball_is_a_point() {
        let b = ball(&[1.0, 1.0], 0.0);
        assert!(b.contains_coords(&[1.0, 1.0]));
        assert!(!b.contains_coords(&[1.0, 1.001]));
        let same = ball(&[1.0, 1.0], 0.0);
        assert!(b.contains_sphere(&same));
        assert!(b.approx_eq(&same));
    }
}
