//! Multidimensional region algebra for the function proxy.
//!
//! The function proxy (Luo & Xue, "Template-Based Proxy Caching for
//! Table-Valued Functions") reduces the question *"can this new
//! function-embedded query be answered from previously cached queries?"* to a
//! question about **spatial regions**: every table-valued function in the
//! supported query class returns the set of points falling inside a
//! multidimensional region — a hypersphere, a hyperrectangle, or (in the most
//! general case the paper mentions) a convex polytope.
//!
//! This crate provides those region types and the relationship checks the
//! proxy needs:
//!
//! * [`Point`] — a point in d-dimensional Euclidean space.
//! * [`HyperRect`] — an axis-aligned box (the region of `fGetObjFromRect`).
//! * [`HyperSphere`] — a ball (the region of `fGetNearbyObjEq`).
//! * [`Polytope`] — an intersection of half-spaces with an explicit bounding
//!   box (regions of more complex functions).
//! * [`Region`] — the closed union of the three, with
//!   [`Region::relate`] classifying a pair of regions as
//!   [`Relation::Equal`], [`Relation::Contains`], [`Relation::Inside`],
//!   [`Relation::Overlaps`], or [`Relation::Disjoint`].
//!
//! # Soundness contract
//!
//! Cache correctness hinges on one direction of these checks being exact:
//! when [`Region::relate`] returns `Contains`/`Inside`/`Equal`, containment
//! **really holds** (every point of the inner region lies in the outer one),
//! and when it returns `Disjoint` the regions really share no point. For
//! pairs involving a [`Polytope`] the check is *conservative*: if containment
//! or disjointness cannot be proven, the pair is reported as `Overlaps`,
//! which the proxy always handles correctly (it falls back to the origin web
//! site). Sphere/sphere, rect/rect, and sphere/rect pairs are decided
//! exactly.
//!
//! # Celestial helpers
//!
//! [`celestial`] maps SkyServer's `(ra, dec, radius-arcmin)` Radial-search
//! parameters onto a 3-D [`HyperSphere`] over unit-vector coordinates
//! `(cx, cy, cz)`, exactly as the paper's function template for
//! `fGetNearbyObjEq` does (Figure 3 of the paper).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod celestial;
pub mod point;
pub mod polytope;
pub mod rect;
pub mod region;
pub mod relate;
pub mod sampling;
pub mod sphere;
pub mod volume;

pub use point::Point;
pub use polytope::{HalfSpace, Polytope};
pub use rect::HyperRect;
pub use region::Region;
pub use relate::Relation;
pub use sphere::HyperSphere;

/// Absolute tolerance used by all geometric comparisons.
///
/// The proxy compares query parameters that originate from decimal text in
/// HTTP requests (e.g. `ra=185.0`), so values are exactly representable far
/// more often than in general numeric code; the epsilon only has to absorb
/// rounding in derived quantities such as chord lengths and norms.
pub const EPS: f64 = 1e-9;

/// Returns `true` when two floats are equal within [`EPS`] (absolute).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Returns `true` when `a <= b` within [`EPS`].
#[inline]
pub fn approx_le(a: f64, b: f64) -> bool {
    a <= b + EPS
}

/// Returns `true` when `a >= b` within [`EPS`].
#[inline]
pub fn approx_ge(a: f64, b: f64) -> bool {
    a + EPS >= b
}

/// Errors produced by region construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeometryError {
    /// Two operands had different dimensionality.
    DimensionMismatch {
        /// Dimensionality of the left operand.
        left: usize,
        /// Dimensionality of the right operand.
        right: usize,
    },
    /// A region was constructed with zero dimensions.
    ZeroDimensions,
    /// A length, radius, or coordinate was not a finite number.
    NotFinite {
        /// Which quantity was non-finite.
        what: &'static str,
    },
    /// A radius or extent was negative.
    Negative {
        /// Which quantity was negative.
        what: &'static str,
    },
    /// Rectangle bounds were inverted (`lo > hi` in some dimension).
    InvertedBounds {
        /// The dimension with inverted bounds.
        dim: usize,
    },
    /// A half-space had a (near-)zero normal vector.
    DegenerateHalfSpace,
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            GeometryError::ZeroDimensions => write!(f, "region must have at least one dimension"),
            GeometryError::NotFinite { what } => write!(f, "{what} must be finite"),
            GeometryError::Negative { what } => write!(f, "{what} must be non-negative"),
            GeometryError::InvertedBounds { dim } => {
                write!(f, "inverted bounds in dimension {dim}")
            }
            GeometryError::DegenerateHalfSpace => {
                write!(f, "half-space normal must be non-zero")
            }
        }
    }
}

impl std::error::Error for GeometryError {}

/// Crate-wide result type.
pub type Result<T> = std::result::Result<T, GeometryError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_helpers_behave() {
        assert!(approx_eq(1.0, 1.0 + 1e-12));
        assert!(!approx_eq(1.0, 1.0 + 1e-6));
        assert!(approx_le(1.0, 1.0));
        assert!(approx_le(1.0, 1.0 + 1e-12));
        assert!(approx_le(1.0 + 1e-12, 1.0));
        assert!(!approx_le(1.0 + 1e-6, 1.0));
        assert!(approx_ge(1.0, 1.0 - 1e-12));
        assert!(!approx_ge(1.0 - 1e-6, 1.0));
    }

    #[test]
    fn error_display_is_informative() {
        let e = GeometryError::DimensionMismatch { left: 2, right: 3 };
        assert!(e.to_string().contains("2 vs 3"));
        assert!(GeometryError::ZeroDimensions
            .to_string()
            .contains("one dimension"));
        assert!(GeometryError::NotFinite { what: "radius" }
            .to_string()
            .contains("radius"));
        assert!(GeometryError::InvertedBounds { dim: 1 }
            .to_string()
            .contains("dimension 1"));
    }
}
