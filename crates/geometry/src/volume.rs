//! Volumes of regions, analytic where possible and Monte-Carlo otherwise.
//!
//! Volumes are not needed for cache correctness, but the proxy's replacement
//! policy and the experiment harness use them to reason about how much of a
//! new query's region the cache covers, and tests use Monte-Carlo volume as
//! an independent oracle for the relationship checks.

use crate::rect::HyperRect;
use crate::region::Region;
use crate::sampling::Halton;
use crate::sphere::HyperSphere;

/// Volume of the unit d-ball: `π^{d/2} / Γ(d/2 + 1)`.
///
/// Computed by the stable recurrence `V_d = V_{d-2} · 2π/d` with
/// `V_0 = 1`, `V_1 = 2`.
pub fn unit_ball_volume(dims: usize) -> f64 {
    match dims {
        0 => 1.0,
        1 => 2.0,
        _ => unit_ball_volume(dims - 2) * 2.0 * std::f64::consts::PI / dims as f64,
    }
}

/// Analytic volume of a ball.
pub fn sphere_volume(s: &HyperSphere) -> f64 {
    unit_ball_volume(s.dims()) * s.radius().powi(s.dims() as i32)
}

/// Analytic volume where the shape has a closed form, `None` for polytopes.
pub fn analytic_volume(region: &Region) -> Option<f64> {
    match region {
        Region::Rect(r) => Some(r.volume()),
        Region::Sphere(s) => Some(sphere_volume(s)),
        Region::Polytope(_) => None,
    }
}

/// Deterministic quasi-Monte-Carlo volume estimate of `region`, sampling
/// `samples` Halton points inside its bounding box.
pub fn monte_carlo_volume(region: &Region, samples: usize) -> f64 {
    let bbox = region.bounding_rect();
    monte_carlo_volume_in(region, &bbox, samples)
}

/// Quasi-Monte-Carlo estimate of `vol(region ∩ window)`.
pub fn monte_carlo_volume_in(region: &Region, window: &HyperRect, samples: usize) -> f64 {
    assert!(samples > 0, "samples must be positive");
    let mut halton = Halton::new(window.dims());
    let mut hits = 0usize;
    let mut coords = vec![0.0; window.dims()];
    for _ in 0..samples {
        halton.next_in_rect(window, &mut coords);
        if region.contains_coords(&coords) {
            hits += 1;
        }
    }
    window.volume() * hits as f64 / samples as f64
}

/// Quasi-Monte-Carlo estimate of the fraction of `target`'s volume covered
/// by the union of `others` — what a semantic cache wants to know before
/// deciding whether a remainder query is worth sending.
///
/// Returns a value in `[0, 1]`; `0.0` when no sampled point lands inside
/// `target` at all (degenerate target).
pub fn monte_carlo_union_coverage(target: &Region, others: &[&Region], samples: usize) -> f64 {
    assert!(samples > 0, "samples must be positive");
    let bbox = target.bounding_rect();
    let mut halton = Halton::new(bbox.dims());
    let mut coords = vec![0.0; bbox.dims()];
    let mut inside = 0usize;
    let mut covered = 0usize;
    for _ in 0..samples {
        halton.next_in_rect(&bbox, &mut coords);
        if !target.contains_coords(&coords) {
            continue;
        }
        inside += 1;
        if others.iter().any(|r| r.contains_coords(&coords)) {
            covered += 1;
        }
    }
    if inside == 0 {
        0.0
    } else {
        covered as f64 / inside as f64
    }
}

/// Quasi-Monte-Carlo estimate of `vol(a ∩ b)`, sampling in the
/// intersection of the bounding boxes (zero when the boxes are disjoint).
pub fn monte_carlo_intersection_volume(a: &Region, b: &Region, samples: usize) -> f64 {
    assert!(samples > 0, "samples must be positive");
    let Some(window) = a.bounding_rect().intersection(&b.bounding_rect()) else {
        return 0.0;
    };
    let mut halton = Halton::new(window.dims());
    let mut hits = 0usize;
    let mut coords = vec![0.0; window.dims()];
    for _ in 0..samples {
        halton.next_in_rect(&window, &mut coords);
        if a.contains_coords(&coords) && b.contains_coords(&coords) {
            hits += 1;
        }
    }
    window.volume() * hits as f64 / samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Point;
    use crate::polytope::{HalfSpace, Polytope};

    #[test]
    fn unit_ball_volumes_match_known_values() {
        assert!((unit_ball_volume(1) - 2.0).abs() < 1e-12);
        assert!((unit_ball_volume(2) - std::f64::consts::PI).abs() < 1e-12);
        assert!((unit_ball_volume(3) - 4.0 / 3.0 * std::f64::consts::PI).abs() < 1e-12);
        // V_4 = π²/2
        assert!((unit_ball_volume(4) - std::f64::consts::PI.powi(2) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn sphere_volume_scales_with_radius() {
        let s = HyperSphere::new(Point::from_slice(&[0.0, 0.0]), 2.0).unwrap();
        assert!((sphere_volume(&s) - 4.0 * std::f64::consts::PI).abs() < 1e-12);
    }

    #[test]
    fn monte_carlo_agrees_with_analytic_for_disk() {
        let s: Region = HyperSphere::new(Point::from_slice(&[0.0, 0.0]), 1.0)
            .unwrap()
            .into();
        let mc = monte_carlo_volume(&s, 20_000);
        let exact = analytic_volume(&s).unwrap();
        assert!((mc - exact).abs() / exact < 0.02, "mc={mc} exact={exact}");
    }

    #[test]
    fn monte_carlo_triangle_volume() {
        // Triangle x>=0, y>=0, x+y<=1 has area 0.5.
        let faces = vec![
            HalfSpace::new(vec![-1.0, 0.0], 0.0).unwrap(),
            HalfSpace::new(vec![0.0, -1.0], 0.0).unwrap(),
            HalfSpace::new(vec![1.0, 1.0], 1.0).unwrap(),
        ];
        let bbox = HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        let t: Region = Polytope::new(faces, bbox).unwrap().into();
        assert!(analytic_volume(&t).is_none());
        let mc = monte_carlo_volume(&t, 20_000);
        assert!((mc - 0.5).abs() < 0.01, "mc={mc}");
    }

    #[test]
    fn union_coverage_estimates() {
        let target: Region = HyperRect::new(vec![0.0, 0.0], vec![2.0, 2.0])
            .unwrap()
            .into();
        let left: Region = HyperRect::new(vec![0.0, 0.0], vec![1.0, 2.0])
            .unwrap()
            .into();
        let right: Region = HyperRect::new(vec![1.0, 0.0], vec![2.0, 2.0])
            .unwrap()
            .into();
        let far: Region = HyperRect::new(vec![10.0, 10.0], vec![11.0, 11.0])
            .unwrap()
            .into();

        let full = monte_carlo_union_coverage(&target, &[&left, &right], 4000);
        assert!(full > 0.99, "two halves cover everything: {full}");
        let half = monte_carlo_union_coverage(&target, &[&left], 4000);
        assert!((half - 0.5).abs() < 0.03, "left half covers half: {half}");
        // Overlapping inputs must not double count.
        let overlapped = monte_carlo_union_coverage(&target, &[&left, &left], 4000);
        assert!(
            (overlapped - 0.5).abs() < 0.03,
            "duplicate cover: {overlapped}"
        );
        let none = monte_carlo_union_coverage(&target, &[&far], 1000);
        assert_eq!(none, 0.0);
        let empty = monte_carlo_union_coverage(&target, &[], 1000);
        assert_eq!(empty, 0.0);
    }

    #[test]
    fn intersection_volume_of_half_overlapping_rects() {
        let a: Region = HyperRect::new(vec![0.0, 0.0], vec![2.0, 2.0])
            .unwrap()
            .into();
        let b: Region = HyperRect::new(vec![1.0, 0.0], vec![3.0, 2.0])
            .unwrap()
            .into();
        let v = monte_carlo_intersection_volume(&a, &b, 10_000);
        assert!((v - 2.0).abs() < 0.05, "v={v}");
        let far: Region = HyperRect::new(vec![10.0, 10.0], vec![11.0, 11.0])
            .unwrap()
            .into();
        assert_eq!(monte_carlo_intersection_volume(&a, &far, 100), 0.0);
    }
}
