//! Convex polytopes as intersections of half-spaces.

use crate::point::{dot_slices, Point};
use crate::rect::HyperRect;
use crate::sphere::HyperSphere;
use crate::{approx_le, GeometryError, Result, EPS};
use serde::{Deserialize, Serialize};

/// A closed half-space `{x : normal · x <= offset}`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HalfSpace {
    normal: Vec<f64>,
    offset: f64,
}

impl HalfSpace {
    /// Creates a half-space from a non-zero normal and an offset.
    ///
    /// # Errors
    /// Returns an error when the normal is empty, (near-)zero, or any
    /// component is non-finite.
    pub fn new(normal: Vec<f64>, offset: f64) -> Result<Self> {
        if normal.is_empty() {
            return Err(GeometryError::ZeroDimensions);
        }
        if normal.iter().any(|c| !c.is_finite()) || !offset.is_finite() {
            return Err(GeometryError::NotFinite {
                what: "half-space coefficient",
            });
        }
        let norm2: f64 = normal.iter().map(|c| c * c).sum();
        if norm2 <= EPS * EPS {
            return Err(GeometryError::DegenerateHalfSpace);
        }
        Ok(HalfSpace { normal, offset })
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.normal.len()
    }

    /// Normal vector.
    #[inline]
    pub fn normal(&self) -> &[f64] {
        &self.normal
    }

    /// Offset (right-hand side of `normal · x <= offset`).
    #[inline]
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Euclidean norm of the normal vector.
    pub fn normal_len(&self) -> f64 {
        self.normal.iter().map(|c| c * c).sum::<f64>().sqrt()
    }

    /// Whether `coords` satisfies the half-space constraint.
    #[inline]
    pub fn contains_coords(&self, coords: &[f64]) -> bool {
        approx_le(dot_slices(&self.normal, coords), self.offset)
    }
}

/// A convex polytope: the intersection of finitely many half-spaces,
/// carried together with an explicit **bounding box**.
///
/// The paper notes that region shapes "can be a hypercube (most common), a
/// hypersphere, or even a polytope (more complex)". Function templates that
/// declare a polytope shape must also supply a bounding box (templates are
/// authored by the web site, which knows its functions); the box makes
/// conservative pairwise relationship checks cheap and *sound*:
///
/// * `polytope ⊆ X` is claimed only when `bbox ⊆ X` (bbox ⊇ polytope, so
///   this is sufficient);
/// * `polytope ∩ X = ∅` is claimed only when `bbox ∩ X = ∅`;
/// * `X ⊆ polytope` for a box or ball `X` is decided **exactly** via
///   convexity (all corners of the box satisfy every half-space / every
///   half-space clears the ball by its radius).
///
/// When neither containment nor disjointness can be proven the relationship
/// collapses to *overlaps*, which the proxy handles by consulting the origin
/// site — conservative, never incorrect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polytope {
    faces: Vec<HalfSpace>,
    bbox: HyperRect,
}

impl Polytope {
    /// Creates a polytope from half-spaces and a caller-supplied bounding box.
    ///
    /// # Errors
    /// Returns an error when the face list is empty or dimensions disagree.
    pub fn new(faces: Vec<HalfSpace>, bbox: HyperRect) -> Result<Self> {
        if faces.is_empty() {
            return Err(GeometryError::ZeroDimensions);
        }
        for f in &faces {
            if f.dims() != bbox.dims() {
                return Err(GeometryError::DimensionMismatch {
                    left: f.dims(),
                    right: bbox.dims(),
                });
            }
        }
        Ok(Polytope { faces, bbox })
    }

    /// Builds the polytope representation of an axis-aligned box
    /// (2·d half-spaces); useful in tests and for template authors.
    pub fn from_rect(rect: &HyperRect) -> Self {
        let d = rect.dims();
        let mut faces = Vec::with_capacity(2 * d);
        for i in 0..d {
            let mut n = vec![0.0; d];
            n[i] = 1.0;
            faces.push(HalfSpace::new(n, rect.hi()[i]).expect("unit normal"));
            let mut n = vec![0.0; d];
            n[i] = -1.0;
            faces.push(HalfSpace::new(n, -rect.lo()[i]).expect("unit normal"));
        }
        Polytope {
            faces,
            bbox: rect.clone(),
        }
    }

    /// Dimensionality.
    #[inline]
    pub fn dims(&self) -> usize {
        self.bbox.dims()
    }

    /// The half-space faces.
    #[inline]
    pub fn faces(&self) -> &[HalfSpace] {
        &self.faces
    }

    /// The declared bounding box.
    #[inline]
    pub fn bbox(&self) -> &HyperRect {
        &self.bbox
    }

    /// Whether `p` lies in the polytope (inside the box and all faces).
    pub fn contains_point(&self, p: &Point) -> bool {
        self.contains_coords(p.coords())
    }

    /// [`Self::contains_point`] on a raw coordinate slice (hot path).
    pub fn contains_coords(&self, coords: &[f64]) -> bool {
        self.bbox.contains_coords(coords) && self.faces.iter().all(|f| f.contains_coords(coords))
    }

    /// Exact check that the polytope contains the whole box: by convexity it
    /// suffices that every corner satisfies every face (and the bbox holds
    /// the box, which the face set implies for well-formed templates — we
    /// still check both to stay sound for loose bboxes).
    pub fn contains_rect(&self, rect: &HyperRect) -> bool {
        debug_assert_eq!(self.dims(), rect.dims());
        self.bbox.contains_rect(rect)
            && rect.corners().all(|corner| {
                self.faces
                    .iter()
                    .all(|f| f.contains_coords(corner.coords()))
            })
    }

    /// Exact check that the polytope contains the whole ball: each face must
    /// clear the ball center by `radius · |normal|`, and the bbox must
    /// contain the ball.
    pub fn contains_sphere(&self, ball: &HyperSphere) -> bool {
        debug_assert_eq!(self.dims(), ball.dims());
        ball.inside_rect(&self.bbox)
            && self.faces.iter().all(|f| {
                let lhs =
                    dot_slices(f.normal(), ball.center().coords()) + ball.radius() * f.normal_len();
                approx_le(lhs, f.offset())
            })
    }

    /// Sound (conservative) check that the polytope lies inside the box:
    /// via the declared bounding box.
    pub fn inside_rect_conservative(&self, rect: &HyperRect) -> bool {
        rect.contains_rect(&self.bbox)
    }

    /// Sound (conservative) check that the polytope lies inside the ball:
    /// via the declared bounding box.
    pub fn inside_sphere_conservative(&self, ball: &HyperSphere) -> bool {
        ball.contains_rect(&self.bbox)
    }

    /// Sound check that the polytope is disjoint from the box.
    ///
    /// Uses two independent proofs: bounding boxes do not meet, or some face
    /// of the polytope excludes the entire box (every corner violates it).
    pub fn disjoint_rect(&self, rect: &HyperRect) -> bool {
        if !self.bbox.intersects_rect(rect) {
            return true;
        }
        self.faces.iter().any(|f| {
            rect.corners()
                .all(|c| dot_slices(f.normal(), c.coords()) > f.offset() + EPS)
        })
    }

    /// Sound check that the polytope is disjoint from the ball: bounding
    /// boxes do not meet, or some face excludes the whole ball
    /// (`normal · center - radius · |normal| > offset`).
    pub fn disjoint_sphere(&self, ball: &HyperSphere) -> bool {
        if !ball.intersects_rect(&self.bbox) {
            return true;
        }
        self.faces.iter().any(|f| {
            dot_slices(f.normal(), ball.center().coords()) - ball.radius() * f.normal_len()
                > f.offset() + EPS
        })
    }
}

impl std::fmt::Display for Polytope {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "polytope({} faces, bbox={})",
            self.faces.len(),
            self.bbox
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The triangle x >= 0, y >= 0, x + y <= 1 in 2-D.
    fn triangle() -> Polytope {
        let faces = vec![
            HalfSpace::new(vec![-1.0, 0.0], 0.0).unwrap(),
            HalfSpace::new(vec![0.0, -1.0], 0.0).unwrap(),
            HalfSpace::new(vec![1.0, 1.0], 1.0).unwrap(),
        ];
        let bbox = HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        Polytope::new(faces, bbox).unwrap()
    }

    #[test]
    fn halfspace_validation() {
        assert!(HalfSpace::new(vec![], 0.0).is_err());
        assert!(HalfSpace::new(vec![0.0, 0.0], 0.0).is_err());
        assert!(HalfSpace::new(vec![f64::NAN], 0.0).is_err());
        assert!(HalfSpace::new(vec![1.0], f64::INFINITY).is_err());
        assert!(HalfSpace::new(vec![1.0, 0.0], 5.0).is_ok());
    }

    #[test]
    fn point_membership() {
        let t = triangle();
        assert!(t.contains_coords(&[0.25, 0.25]));
        assert!(t.contains_coords(&[0.0, 0.0]));
        assert!(t.contains_coords(&[0.5, 0.5])); // on the hypotenuse
        assert!(!t.contains_coords(&[0.75, 0.75]));
        assert!(!t.contains_coords(&[-0.1, 0.1]));
    }

    #[test]
    fn contains_rect_exact() {
        let t = triangle();
        let inside = HyperRect::new(vec![0.1, 0.1], vec![0.3, 0.3]).unwrap();
        let crossing = HyperRect::new(vec![0.4, 0.4], vec![0.9, 0.9]).unwrap();
        assert!(t.contains_rect(&inside));
        assert!(!t.contains_rect(&crossing));
    }

    #[test]
    fn contains_sphere_exact() {
        let t = triangle();
        let inside = HyperSphere::new(Point::from_slice(&[0.25, 0.25]), 0.1).unwrap();
        // center inside but ball pokes through hypotenuse
        let poking = HyperSphere::new(Point::from_slice(&[0.45, 0.45]), 0.2).unwrap();
        assert!(t.contains_sphere(&inside));
        assert!(!t.contains_sphere(&poking));
    }

    #[test]
    fn disjointness_proofs() {
        let t = triangle();
        let far_rect = HyperRect::new(vec![5.0, 5.0], vec![6.0, 6.0]).unwrap();
        assert!(t.disjoint_rect(&far_rect));
        // inside the bbox but beyond the hypotenuse face
        let cut_rect = HyperRect::new(vec![0.8, 0.8], vec![0.95, 0.95]).unwrap();
        assert!(t.disjoint_rect(&cut_rect));
        let meet_rect = HyperRect::new(vec![0.0, 0.0], vec![0.2, 0.2]).unwrap();
        assert!(!t.disjoint_rect(&meet_rect));

        let far_ball = HyperSphere::new(Point::from_slice(&[5.0, 5.0]), 0.5).unwrap();
        assert!(t.disjoint_sphere(&far_ball));
        let cut_ball = HyperSphere::new(Point::from_slice(&[0.9, 0.9]), 0.1).unwrap();
        assert!(t.disjoint_sphere(&cut_ball));
        let meet_ball = HyperSphere::new(Point::from_slice(&[0.5, 0.5]), 0.2).unwrap();
        assert!(!t.disjoint_sphere(&meet_ball));
    }

    #[test]
    fn conservative_inside_checks() {
        let t = triangle();
        let big_rect = HyperRect::new(vec![-1.0, -1.0], vec![2.0, 2.0]).unwrap();
        assert!(t.inside_rect_conservative(&big_rect));
        let small_rect = HyperRect::new(vec![0.0, 0.0], vec![0.5, 0.5]).unwrap();
        // the triangle actually pokes out of [0,0.5]^2, and even if it did
        // not, the bbox test must say "cannot prove"
        assert!(!t.inside_rect_conservative(&small_rect));

        let big_ball = HyperSphere::new(Point::from_slice(&[0.5, 0.5]), 2.0).unwrap();
        assert!(t.inside_sphere_conservative(&big_ball));
        let tight_ball = HyperSphere::new(Point::from_slice(&[0.5, 0.5]), 0.71).unwrap();
        // covers the bbox corners at distance sqrt(0.5)≈0.707
        assert!(t.inside_sphere_conservative(&tight_ball));
    }

    #[test]
    fn from_rect_roundtrips_membership() {
        let r = HyperRect::new(vec![1.0, 2.0], vec![3.0, 4.0]).unwrap();
        let p = Polytope::from_rect(&r);
        assert_eq!(p.faces().len(), 4);
        assert!(p.contains_coords(&[2.0, 3.0]));
        assert!(p.contains_coords(&[1.0, 2.0]));
        assert!(!p.contains_coords(&[0.9, 3.0]));
        assert!(!p.contains_coords(&[2.0, 4.1]));
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let f = HalfSpace::new(vec![1.0, 0.0, 0.0], 1.0).unwrap();
        let bbox = HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap();
        assert!(Polytope::new(vec![f], bbox).is_err());
    }
}
