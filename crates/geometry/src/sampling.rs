//! Deterministic low-discrepancy point sampling.
//!
//! Monte-Carlo volume estimation and the property-test oracles need point
//! samples inside boxes. A Halton sequence gives reproducible, well-spread
//! samples without any RNG dependency in the library crate.

use crate::rect::HyperRect;

/// The first 16 primes, used as Halton bases (one per dimension).
const PRIMES: [u64; 16] = [2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53];

/// A d-dimensional Halton low-discrepancy sequence over `[0, 1)^d`.
#[derive(Debug, Clone)]
pub struct Halton {
    dims: usize,
    index: u64,
}

impl Halton {
    /// Creates a sequence for `dims` dimensions (at most 16).
    ///
    /// # Panics
    /// Panics when `dims` is zero or exceeds the available prime bases.
    pub fn new(dims: usize) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert!(
            dims <= PRIMES.len(),
            "at most {} dimensions supported",
            PRIMES.len()
        );
        // Skip index 0 (the all-zero point) for better uniformity.
        Halton { dims, index: 1 }
    }

    /// Radical inverse of `n` in base `b` — the core of the Halton sequence.
    fn radical_inverse(mut n: u64, b: u64) -> f64 {
        let mut inv = 0.0;
        let mut denom = 1.0;
        while n > 0 {
            denom *= b as f64;
            inv += (n % b) as f64 / denom;
            n /= b;
        }
        inv
    }

    /// Writes the next point of the sequence (in `[0,1)^d`) into `out`.
    pub fn next_unit(&mut self, out: &mut [f64]) {
        assert_eq!(out.len(), self.dims);
        for (d, slot) in out.iter_mut().enumerate() {
            *slot = Self::radical_inverse(self.index, PRIMES[d]);
        }
        self.index += 1;
    }

    /// Writes the next point scaled into `rect` into `out`.
    pub fn next_in_rect(&mut self, rect: &HyperRect, out: &mut [f64]) {
        self.next_unit(out);
        for (d, slot) in out.iter_mut().enumerate() {
            *slot = rect.lo()[d] + *slot * (rect.hi()[d] - rect.lo()[d]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base2_sequence_is_van_der_corput() {
        let mut h = Halton::new(1);
        let mut out = [0.0];
        let expected = [0.5, 0.25, 0.75, 0.125, 0.625, 0.375, 0.875];
        for &e in &expected {
            h.next_unit(&mut out);
            assert!((out[0] - e).abs() < 1e-12, "got {} want {e}", out[0]);
        }
    }

    #[test]
    fn points_stay_in_rect() {
        let rect = HyperRect::new(vec![-2.0, 5.0], vec![-1.0, 7.0]).unwrap();
        let mut h = Halton::new(2);
        let mut out = [0.0; 2];
        for _ in 0..1000 {
            h.next_in_rect(&rect, &mut out);
            assert!(rect.contains_coords(&out));
        }
    }

    #[test]
    fn sequence_is_roughly_uniform() {
        // Mean of a uniform [0,1) sample should approach 0.5.
        let mut h = Halton::new(3);
        let mut out = [0.0; 3];
        let mut sums = [0.0; 3];
        let n = 5000;
        for _ in 0..n {
            h.next_unit(&mut out);
            for (sum, v) in sums.iter_mut().zip(&out) {
                *sum += v;
            }
        }
        for (d, sum) in sums.iter().enumerate() {
            let mean = sum / n as f64;
            assert!((mean - 0.5).abs() < 0.01, "dim {d} mean {mean}");
        }
    }

    #[test]
    #[should_panic(expected = "dims must be positive")]
    fn zero_dims_panics() {
        let _ = Halton::new(0);
    }
}
