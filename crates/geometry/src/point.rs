//! Points in d-dimensional Euclidean space.

use crate::{GeometryError, Result};
use serde::{Deserialize, Serialize};

/// A point in d-dimensional Euclidean space.
///
/// Cached result tuples carry the Cartesian coordinates of the point they
/// represent (the paper's *result attribute availability* property), and the
/// proxy evaluates subsumed queries by testing those points against the new
/// query's region, so `Point` is the type the local evaluation loop runs on.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    coords: Vec<f64>,
}

impl Point {
    /// Creates a point from its coordinates.
    ///
    /// # Errors
    /// Returns an error when `coords` is empty or contains a non-finite value.
    pub fn new(coords: Vec<f64>) -> Result<Self> {
        if coords.is_empty() {
            return Err(GeometryError::ZeroDimensions);
        }
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(GeometryError::NotFinite { what: "coordinate" });
        }
        Ok(Point { coords })
    }

    /// Creates a point without validation; intended for trusted, hot paths
    /// such as the local evaluation loop over cached tuples.
    #[inline]
    pub fn from_slice(coords: &[f64]) -> Self {
        debug_assert!(!coords.is_empty());
        debug_assert!(coords.iter().all(|c| c.is_finite()));
        Point {
            coords: coords.to_vec(),
        }
    }

    /// Dimensionality of the point.
    #[inline]
    pub fn dims(&self) -> usize {
        self.coords.len()
    }

    /// Coordinates as a slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// Coordinate in dimension `i`. Panics when out of range.
    #[inline]
    pub fn coord(&self, i: usize) -> f64 {
        self.coords[i]
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// # Errors
    /// Returns an error when dimensions differ.
    pub fn dist2(&self, other: &Point) -> Result<f64> {
        if self.dims() != other.dims() {
            return Err(GeometryError::DimensionMismatch {
                left: self.dims(),
                right: other.dims(),
            });
        }
        Ok(dist2_slices(&self.coords, &other.coords))
    }

    /// Euclidean distance to `other`.
    ///
    /// # Errors
    /// Returns an error when dimensions differ.
    pub fn dist(&self, other: &Point) -> Result<f64> {
        Ok(self.dist2(other)?.sqrt())
    }

    /// Euclidean norm of the point treated as a vector.
    pub fn norm(&self) -> f64 {
        self.coords.iter().map(|c| c * c).sum::<f64>().sqrt()
    }
}

/// Squared Euclidean distance between two coordinate slices of equal length.
#[inline]
pub fn dist2_slices(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Dot product of two coordinate slices of equal length.
#[inline]
pub fn dot_slices(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Point::new(vec![]).is_err());
        assert!(Point::new(vec![f64::NAN]).is_err());
        assert!(Point::new(vec![f64::INFINITY, 0.0]).is_err());
        let p = Point::new(vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(p.dims(), 3);
        assert_eq!(p.coord(1), 2.0);
    }

    #[test]
    fn distances() {
        let a = Point::new(vec![0.0, 0.0]).unwrap();
        let b = Point::new(vec![3.0, 4.0]).unwrap();
        assert_eq!(a.dist2(&b).unwrap(), 25.0);
        assert_eq!(a.dist(&b).unwrap(), 5.0);
        assert_eq!(b.norm(), 5.0);
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Point::new(vec![0.0]).unwrap();
        let b = Point::new(vec![0.0, 0.0]).unwrap();
        assert!(matches!(
            a.dist2(&b),
            Err(GeometryError::DimensionMismatch { left: 1, right: 2 })
        ));
    }

    #[test]
    fn display_formats_tuple() {
        let p = Point::new(vec![1.5, -2.0]).unwrap();
        assert_eq!(p.to_string(), "(1.5, -2)");
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(dist2_slices(&[0.0, 0.0], &[1.0, 1.0]), 2.0);
        assert_eq!(dot_slices(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
