//! Property tests: the relationship classifier is *sound* with respect to
//! point-set semantics. For arbitrary region pairs, any claim of
//! Equal/Inside/Contains/Disjoint must never be contradicted by a sampled
//! point. (`Overlaps` makes no claim, so nothing to check there.)

use fp_geometry::sampling::Halton;
use fp_geometry::{HyperRect, HyperSphere, Point, Polytope, Region, Relation};
use proptest::prelude::*;

const SAMPLES: usize = 256;

fn arb_rect(dims: usize) -> impl Strategy<Value = Region> {
    (
        prop::collection::vec(-10.0f64..10.0, dims),
        prop::collection::vec(0.01f64..8.0, dims),
    )
        .prop_map(|(lo, ext)| {
            let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
            Region::Rect(HyperRect::new(lo, hi).expect("valid rect"))
        })
}

fn arb_sphere(dims: usize) -> impl Strategy<Value = Region> {
    (prop::collection::vec(-10.0f64..10.0, dims), 0.01f64..6.0).prop_map(|(c, r)| {
        Region::Sphere(
            HyperSphere::new(Point::new(c).expect("valid point"), r).expect("valid ball"),
        )
    })
}

fn arb_polytope(dims: usize) -> impl Strategy<Value = Region> {
    // A random box turned into half-spaces, optionally cut by one diagonal
    // face; the declared bbox stays the box (a sound over-approximation).
    (
        prop::collection::vec(-10.0f64..10.0, dims),
        prop::collection::vec(0.5f64..8.0, dims),
        prop::bool::ANY,
    )
        .prop_map(move |(lo, ext, cut)| {
            let hi: Vec<f64> = lo.iter().zip(&ext).map(|(l, e)| l + e).collect();
            let rect = HyperRect::new(lo, hi).expect("valid rect");
            let mut p = Polytope::from_rect(&rect);
            if cut {
                //

                // Keep the half of the box below the diagonal through its
                // center: sum(x) <= sum(center).
                let center = rect.center();
                let offset: f64 = center.coords().iter().sum();
                let faces = {
                    let mut f = p.faces().to_vec();
                    f.push(
                        fp_geometry::HalfSpace::new(vec![1.0; rect.dims()], offset)
                            .expect("valid half-space"),
                    );
                    f
                };
                p = Polytope::new(faces, rect).expect("valid polytope");
            }
            Region::Polytope(p)
        })
}

fn arb_region(dims: usize) -> impl Strategy<Value = Region> {
    prop_oneof![arb_rect(dims), arb_sphere(dims), arb_polytope(dims)]
}

/// Samples points in and around both regions and checks the claimed
/// relation against observed membership.
fn check_soundness(a: &Region, b: &Region) {
    let rel = a.relate(b);
    let window = a
        .bounding_rect()
        .union(&b.bounding_rect())
        .expect("same dims");
    let mut halton = Halton::new(window.dims());
    let mut coords = vec![0.0; window.dims()];
    for _ in 0..SAMPLES {
        halton.next_in_rect(&window, &mut coords);
        let in_a = a.contains_coords(&coords);
        let in_b = b.contains_coords(&coords);
        match rel {
            Relation::Equal => {
                // No sampled point may distinguish the regions beyond
                // boundary tolerance; use strict interior disagreement.
                assert_eq!(in_a, in_b, "Equal violated at {coords:?} for {a} vs {b}");
            }
            Relation::Inside => {
                assert!(
                    !in_a || in_b,
                    "Inside violated at {coords:?} for {a} vs {b}"
                );
            }
            Relation::Contains => {
                assert!(
                    !in_b || in_a,
                    "Contains violated at {coords:?} for {a} vs {b}"
                );
            }
            Relation::Disjoint => {
                assert!(
                    !(in_a && in_b),
                    "Disjoint violated at {coords:?} for {a} vs {b}"
                );
            }
            Relation::Overlaps => {}
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn relate_sound_2d(a in arb_region(2), b in arb_region(2)) {
        check_soundness(&a, &b);
    }

    #[test]
    fn relate_sound_3d(a in arb_region(3), b in arb_region(3)) {
        check_soundness(&a, &b);
    }

    #[test]
    fn relate_antisymmetric(a in arb_region(2), b in arb_region(2)) {
        prop_assert_eq!(a.relate(&b), b.relate(&a).flip());
    }

    #[test]
    fn relate_reflexive_equal_rect(a in arb_rect(3)) {
        prop_assert_eq!(a.relate(&a.clone()), Relation::Equal);
    }

    #[test]
    fn relate_reflexive_equal_sphere(a in arb_sphere(3)) {
        prop_assert_eq!(a.relate(&a.clone()), Relation::Equal);
    }

    #[test]
    fn exact_pairs_never_imprecise_when_disjoint_boxes(
        a in arb_sphere(2), b in arb_rect(2)
    ) {
        // For exact pairs (sphere/rect), bounding boxes strictly apart in
        // some dimension must yield Disjoint, never Overlaps.
        let (ba, bb) = (a.bounding_rect(), b.bounding_rect());
        let strictly_apart = (0..2).any(|d| {
            ba.hi()[d] + 1e-6 < bb.lo()[d] || bb.hi()[d] + 1e-6 < ba.lo()[d]
        });
        if strictly_apart {
            prop_assert_eq!(a.relate(&b), Relation::Disjoint);
        }
    }

    /// Containment is transitive for the exactly-decided shapes: if A is
    /// inside B and B is inside C, A must relate to C as Inside or Equal.
    #[test]
    fn containment_transitivity_spheres(
        c in arb_sphere(3),
        f1 in 0.1f64..0.9,
        f2 in 0.1f64..0.9,
        dir in prop::collection::vec(-1.0f64..1.0, 3),
    ) {
        let Region::Sphere(outer) = &c else { unreachable!() };
        // B: concentric shrink of C; A: shrink of B shifted within slack.
        let b = HyperSphere::new(outer.center().clone(), outer.radius() * f1).expect("valid");
        let slack = b.radius() * (1.0 - f2);
        let norm = dir.iter().map(|d| d * d).sum::<f64>().sqrt().max(1e-9);
        let a_center: Vec<f64> = b
            .center()
            .coords()
            .iter()
            .zip(&dir)
            .map(|(c, d)| c + d / norm * slack * 0.9)
            .collect();
        let a = HyperSphere::new(Point::new(a_center).expect("valid"), b.radius() * f2)
            .expect("valid");

        let ab = Region::Sphere(a.clone()).relate(&Region::Sphere(b.clone()));
        let bc = Region::Sphere(b.clone()).relate(&c);
        let ac = Region::Sphere(a).relate(&c);
        prop_assert!(matches!(ab, Relation::Inside | Relation::Equal), "ab={ab:?}");
        prop_assert!(matches!(bc, Relation::Inside | Relation::Equal), "bc={bc:?}");
        prop_assert!(matches!(ac, Relation::Inside | Relation::Equal), "ac={ac:?}");
    }

    #[test]
    fn shrunken_rect_is_inside(a in arb_rect(3), f in 0.05f64..0.45) {
        let Region::Rect(r) = &a else { unreachable!() };
        let lo: Vec<f64> = r.lo().iter().zip(r.hi()).map(|(l, h)| l + f * (h - l)).collect();
        let hi: Vec<f64> = r.lo().iter().zip(r.hi()).map(|(l, h)| h - f * (h - l)).collect();
        let small = Region::Rect(HyperRect::new(lo, hi).expect("still valid"));
        prop_assert_eq!(small.relate(&a), Relation::Inside);
        prop_assert_eq!(a.relate(&small), Relation::Contains);
    }

    #[test]
    fn shrunken_sphere_is_inside(a in arb_sphere(3), f in 0.05f64..0.9) {
        let Region::Sphere(s) = &a else { unreachable!() };
        let small = Region::Sphere(
            HyperSphere::new(s.center().clone(), s.radius() * (1.0 - f)).expect("valid")
        );
        prop_assert_eq!(small.relate(&a), Relation::Inside);
    }
}
