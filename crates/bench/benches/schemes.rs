//! Figure 6 companion bench: real compute cost of the three active
//! caching schemes (First = full semantic, Second = + region containment,
//! Third = containment only) over one trace, unlimited cache, array
//! description. `repro figure6` prints the simulated response-time bars.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_bench::{make_proxy, Experiment, Scale};
use fp_trace::Rbe;
use funcproxy::cache::DescriptionKind;
use funcproxy::{CostModel, Scheme};

fn bench_schemes(c: &mut Criterion) {
    let exp = Experiment::prepare(Scale::small());
    let rbe = Rbe::default();

    let mut group = c.benchmark_group("figure6_active_schemes");
    group.sample_size(10);
    for (label, scheme) in [
        ("First", Scheme::FullSemantic),
        ("Second", Scheme::RegionContainment),
        ("Third", Scheme::ContainmentOnly),
    ] {
        group.bench_function(BenchmarkId::new("scheme", label), |b| {
            b.iter(|| {
                let mut proxy = make_proxy(
                    &exp.site,
                    scheme,
                    DescriptionKind::Array,
                    None,
                    CostModel::free(),
                );
                rbe.run(&mut proxy, &exp.trace).expect("replay")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schemes);
criterion_main!(benches);
