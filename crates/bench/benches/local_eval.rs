//! Cache-hit hot-path micro-benchmarks: row-major local evaluation vs
//! the columnar SoA + micro-index + slab-assembly path.
//!
//! Three questions, each a group:
//! * `hit_select` / `hit_serve` — how much faster is the columnar path
//!   at selecting a contained region, and at producing the response
//!   *bytes* (the quantity a client actually waits on)?
//! * `micro_index` — where is the flat/zones/grid crossover? (The
//!   constants in `fp_skyserver::columnar` encode the answer.)
//! * `build` — what does the columnar form cost at insert time?
//!
//! The run ends with a headline `speedup:` line measuring the end-to-end
//! serve ratio at 10 000 rows — the PR-acceptance number.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_geometry::{HyperSphere, Point, Region};
use fp_skyserver::{ColumnarRows, IndexKind, ResultSet};
use fp_sqlmini::Value;
use funcproxy::query::{eval_entry_region, eval_region_over, EvalScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

/// Coordinate columns (`cx`, `cy`, `cz`) within the radial template's
/// eleven-column result shape.
const COORD_IDX: [usize; 3] = [3, 4, 5];

/// A synthetic cached entry shaped like a radial-template result:
/// `objID` plus unit-cube coordinates plus five magnitude columns.
fn entry(rows: usize, seed: u64) -> ResultSet {
    let mut rng = StdRng::seed_from_u64(seed);
    ResultSet {
        columns: [
            "objID", "ra", "dec", "cx", "cy", "cz", "u", "g", "r", "i", "z",
        ]
        .iter()
        .map(|c| c.to_string())
        .collect(),
        rows: (0..rows)
            .map(|i| {
                let mut row = vec![
                    Value::Int(i as i64),
                    Value::Float(rng.gen_range(0.0..360.0)),
                    Value::Float(rng.gen_range(-90.0..90.0)),
                ];
                for _ in 0..3 {
                    row.push(Value::Float(rng.gen_range(-1.0..1.0)));
                }
                for _ in 0..5 {
                    row.push(Value::Float(rng.gen_range(14.0..24.0)));
                }
                row
            })
            .collect(),
    }
}

/// A ball around the origin covering roughly `fraction` of the unit
/// cube the coordinates are drawn from.
fn ball(fraction: f64) -> Region {
    let radius = (fraction * 8.0 * 3.0 / (4.0 * std::f64::consts::PI)).cbrt();
    Region::Sphere(HyperSphere::new(Point::from_slice(&[0.0, 0.0, 0.0]), radius).unwrap())
}

const SIZES: [usize; 2] = [1_000, 10_000];
const SELECTIVITIES: [(&str, f64); 2] = [("1pct", 0.01), ("10pct", 0.10)];

fn bench_hit_select(c: &mut Criterion) {
    let mut group = c.benchmark_group("hit_select");
    group.sample_size(50);
    for &rows in &SIZES {
        let rs = entry(rows, 7);
        let col = ColumnarRows::build(&rs, &COORD_IDX).expect("numeric entry");
        for &(label, fraction) in &SELECTIVITIES {
            let region = ball(fraction);
            group.bench_with_input(
                BenchmarkId::new(format!("row_major/{label}"), rows),
                &rows,
                |b, _| b.iter(|| eval_region_over(&rs, &COORD_IDX, black_box(&region)).unwrap()),
            );
            let mut scratch = EvalScratch::default();
            group.bench_with_input(
                BenchmarkId::new(format!("columnar/{label}"), rows),
                &rows,
                |b, _| {
                    b.iter(|| {
                        eval_entry_region(
                            &rs,
                            Some(&col),
                            &COORD_IDX,
                            black_box(&region),
                            &mut scratch,
                        )
                        .unwrap()
                        .result
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_hit_serve(c: &mut Criterion) {
    let mut group = c.benchmark_group("hit_serve");
    group.sample_size(50);
    for &rows in &SIZES {
        let rs = entry(rows, 7);
        let col = ColumnarRows::build(&rs, &COORD_IDX).expect("numeric entry");
        let region = ball(0.10);
        group.bench_with_input(BenchmarkId::new("row_major", rows), &rows, |b, _| {
            b.iter(|| {
                eval_region_over(&rs, &COORD_IDX, black_box(&region))
                    .unwrap()
                    .to_xml_string()
                    .into_bytes()
            })
        });
        let mut selected = Vec::new();
        let mut point = Vec::new();
        group.bench_with_input(BenchmarkId::new("columnar", rows), &rows, |b, _| {
            b.iter(|| {
                col.select_region(black_box(&region), &mut selected, &mut point);
                col.assemble_document(&selected)
            })
        });
    }
    group.finish();
}

fn bench_micro_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro_index");
    group.sample_size(50);
    let region = ball(0.01);
    for rows in [256, 1_024, 4_096, 16_384] {
        let rs = entry(rows, 11);
        for kind in [IndexKind::Flat, IndexKind::Zones, IndexKind::Grid] {
            let col = ColumnarRows::build_with_index(&rs, &COORD_IDX, kind).expect("numeric");
            let mut selected = Vec::new();
            let mut point = Vec::new();
            group.bench_with_input(
                BenchmarkId::new(format!("{kind:?}").to_lowercase(), rows),
                &rows,
                |b, _| b.iter(|| col.select_region(black_box(&region), &mut selected, &mut point)),
            );
        }
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(20);
    for &rows in &SIZES {
        let rs = entry(rows, 13);
        group.bench_with_input(BenchmarkId::from_parameter(rows), &rows, |b, _| {
            b.iter(|| ColumnarRows::build(&rs, &COORD_IDX).unwrap())
        });
    }
    group.finish();
}

/// The acceptance number: end-to-end serve (select + response bytes) at
/// a 10 000-row entry, columnar vs row-major, printed as a ratio.
fn headline_speedup(_c: &mut Criterion) {
    let rs = entry(10_000, 7);
    let col = ColumnarRows::build(&rs, &COORD_IDX).expect("numeric entry");
    let region = ball(0.10);
    let iters = 60;

    let start = Instant::now();
    for _ in 0..iters {
        black_box(
            eval_region_over(&rs, &COORD_IDX, &region)
                .unwrap()
                .to_xml_string()
                .into_bytes(),
        );
    }
    let row_major = start.elapsed();

    let mut selected = Vec::new();
    let mut point = Vec::new();
    let start = Instant::now();
    for _ in 0..iters {
        col.select_region(&region, &mut selected, &mut point);
        black_box(col.assemble_document(&selected));
    }
    let columnar = start.elapsed();

    println!(
        "speedup: columnar serve is {:.1}x row-major at 10000 rows ({:.2} ms vs {:.2} ms per hit)",
        row_major.as_secs_f64() / columnar.as_secs_f64().max(1e-12),
        columnar.as_secs_f64() * 1e3 / iters as f64,
        row_major.as_secs_f64() * 1e3 / iters as f64,
    );
}

/// The observability acceptance number: what the observe layer adds to
/// one exact-hit serve — a sampled-trace decision, three phase records,
/// one outcome record, and one span — as a fraction of the columnar
/// serve latency at a 10 000-row entry. Must stay ≤ 5 %.
fn headline_observe_overhead(_c: &mut Criterion) {
    use funcproxy::observe::{OutcomeClass, PathClass, Phase};
    use funcproxy::{ObserveConfig, Observer};

    let rs = entry(10_000, 7);
    let col = ColumnarRows::build(&rs, &COORD_IDX).expect("numeric entry");
    let region = ball(0.10);
    let iters = 100u32;
    // Best-of-three wall times so scheduler noise cannot fake (or mask)
    // an overhead regression.
    fn measure<F: FnMut()>(iters: u32, mut body: F) -> std::time::Duration {
        (0..3)
            .map(|_| {
                let start = Instant::now();
                for _ in 0..iters {
                    body();
                }
                start.elapsed()
            })
            .min()
            .unwrap()
    }

    let (mut selected, mut point) = (Vec::new(), Vec::new());
    let bare = measure(iters, || {
        col.select_region(&region, &mut selected, &mut point);
        black_box(col.assemble_document(&selected));
    });

    // The same serve plus exactly the recording the runtime performs on
    // an exact hit, at the default 1-in-16 trace sampling.
    let obs = Observer::new(&ObserveConfig::default());
    let (mut s2, mut p2) = (Vec::new(), Vec::new());
    let instrumented = measure(iters, || {
        let _trace = obs.begin_trace();
        let req = Instant::now();
        col.select_region(&region, &mut s2, &mut p2);
        black_box(col.assemble_document(&s2));
        obs.record_phase(Phase::Classify, PathClass::Hit, 0.01);
        obs.record_phase(Phase::LocalEval, PathClass::Hit, 0.5);
        obs.record_phase(Phase::Serialize, PathClass::Hit, 0.4);
        obs.record_outcome(OutcomeClass::Exact, 1.0);
        obs.span("request", "proxy", req, req.elapsed(), || {
            Some("exact".into())
        });
    });

    let overhead =
        (instrumented.as_secs_f64() - bare.as_secs_f64()) / bare.as_secs_f64().max(1e-12) * 100.0;
    println!(
        "observe overhead: {:.2}% of exact-hit serve latency ({:.3} ms instrumented vs {:.3} ms bare per hit)",
        overhead.max(0.0),
        instrumented.as_secs_f64() * 1e3 / f64::from(iters),
        bare.as_secs_f64() * 1e3 / f64::from(iters),
    );
    assert!(
        overhead < 5.0,
        "observe recording must stay under 5% of serve latency (measured {overhead:.2}%)"
    );
}

criterion_group!(
    benches,
    bench_hit_select,
    bench_hit_serve,
    bench_micro_index,
    bench_build,
    headline_speedup,
    headline_observe_overhead,
);
criterion_main!(benches);
