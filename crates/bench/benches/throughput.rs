//! Concurrent-runtime companion bench: wall-clock cost of replaying one
//! trace through a shared `ProxyHandle` at increasing client counts. With
//! zero origin delay this isolates the runtime's own overhead (sharded
//! locking + single-flight bookkeeping); `repro throughput` adds the
//! simulated WAN delay and prints qps / latency percentiles.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_bench::{Experiment, Scale};
use std::time::Duration;

fn bench_throughput(c: &mut Criterion) {
    let exp = Experiment::prepare(Scale::small());

    let mut group = c.benchmark_group("shared_handle_replay");
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        group.bench_function(BenchmarkId::new("clients", threads), |b| {
            b.iter(|| exp.throughput(&[threads], Duration::ZERO));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
