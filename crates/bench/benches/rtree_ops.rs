//! R-tree micro-benchmarks: incremental insert, STR bulk load, and window
//! search against a brute-force scan baseline — the origin site's spatial
//! index is the hottest structure on the miss path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fp_geometry::HyperRect;
use fp_rtree::RTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn points(n: usize, seed: u64) -> Vec<(HyperRect, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let x = rng.gen_range(0.0..100.0);
            let y = rng.gen_range(0.0..100.0);
            let z = rng.gen_range(0.0..100.0);
            (
                HyperRect::new(vec![x, y, z], vec![x, y, z]).expect("valid"),
                i as u32,
            )
        })
        .collect()
}

fn windows(n: usize, seed: u64) -> Vec<HyperRect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.gen_range(0.0..95.0);
            let y = rng.gen_range(0.0..95.0);
            let z = rng.gen_range(0.0..95.0);
            let s = rng.gen_range(1.0..5.0);
            HyperRect::new(vec![x, y, z], vec![x + s, y + s, z + s]).expect("valid")
        })
        .collect()
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("rtree_build");
    for n in [10_000usize, 100_000] {
        let data = points(n, 3);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("incremental", n), &data, |b, data| {
            b.iter(|| {
                let mut t = RTree::with_capacity_params(3, 16);
                for (r, v) in data {
                    t.insert(r.clone(), *v);
                }
                t.len()
            });
        });
        group.bench_with_input(BenchmarkId::new("bulk_str", n), &data, |b, data| {
            b.iter(|| {
                let mut t = RTree::with_capacity_params(3, 16);
                t.bulk_load(data.clone());
                t.len()
            });
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let data = points(100_000, 3);
    let probes = windows(128, 9);
    let mut tree = RTree::with_capacity_params(3, 16);
    tree.bulk_load(data.clone());

    let mut group = c.benchmark_group("rtree_search");
    group.throughput(Throughput::Elements(probes.len() as u64));
    group.bench_function("rtree_window", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for w in &probes {
                hits += tree.search_intersecting(w).len();
            }
            hits
        });
    });
    group.bench_function("linear_scan_baseline", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for w in &probes {
                hits += data.iter().filter(|(r, _)| r.intersects_rect(w)).count();
            }
            hits
        });
    });
    group.finish();
}

criterion_group!(benches, bench_build, bench_search);
criterion_main!(benches);
