//! Figure 5 companion bench: trace replay wall time for the four proxy
//! configurations (ACR / ACNR / PC / NC). The simulated response-time
//! *series* of Figure 5 is printed by `repro figure5`; this bench isolates
//! the real compute cost of each configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_bench::{make_proxy, Experiment, Scale};
use fp_trace::Rbe;
use funcproxy::cache::DescriptionKind;
use funcproxy::{CostModel, Scheme};

fn bench_response_time(c: &mut Criterion) {
    let exp = Experiment::prepare(Scale::small());
    let rbe = Rbe::default();
    let configs: [(&str, Scheme, DescriptionKind); 4] = [
        ("ACR", Scheme::FullSemantic, DescriptionKind::RTree),
        ("ACNR", Scheme::FullSemantic, DescriptionKind::Array),
        ("PC", Scheme::Passive, DescriptionKind::Array),
        ("NC", Scheme::NoCache, DescriptionKind::Array),
    ];

    let mut group = c.benchmark_group("figure5_trace_replay");
    group.sample_size(10);
    let capacity = Some(exp.capacity_for(0.5));
    for (label, scheme, desc) in configs {
        group.bench_function(BenchmarkId::new("config", label), |b| {
            b.iter(|| {
                let mut proxy = make_proxy(&exp.site, scheme, desc, capacity, CostModel::free());
                rbe.run(&mut proxy, &exp.trace).expect("replay")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_response_time);
criterion_main!(benches);
