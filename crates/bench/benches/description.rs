//! The §4.2 cache-description ablation: candidate lookup and maintenance
//! cost of the array ("ACNR") vs R-tree ("ACR") descriptions, swept over
//! description sizes far past anything a real proxy accumulates. This is
//! the paper's finding that "the size of the cache description is small so
//! that a linear search and a tree search have similar main memory
//! performance" and that "the maintenance of the R-tree index is more
//! costly than that of an array" — reproduced with measurements instead of
//! assertion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fp_geometry::celestial::radial_query_sphere;
use fp_geometry::Region;
use funcproxy::cache::{CacheDescription, DescriptionKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic radial-query bounding boxes over the default sky window.
fn boxes(n: usize, seed: u64) -> Vec<fp_geometry::HyperRect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let ra = rng.gen_range(180.0..190.0);
            let dec = rng.gen_range(-3.0..3.0);
            let radius = rng.gen_range(2.0..20.0);
            Region::Sphere(radial_query_sphere(ra, dec, radius).expect("valid")).bounding_rect()
        })
        .collect()
}

fn filled(kind: DescriptionKind, boxes: &[fp_geometry::HyperRect]) -> Box<dyn CacheDescription> {
    let mut d = kind.make(3);
    for (i, b) in boxes.iter().enumerate() {
        d.insert(i as u64, b.clone());
    }
    d
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("description_lookup");
    for n in [100usize, 1_000, 10_000] {
        let entries = boxes(n, 42);
        let probes = boxes(256, 7);
        group.throughput(Throughput::Elements(probes.len() as u64));
        for kind in [DescriptionKind::Array, DescriptionKind::RTree] {
            let d = filled(kind, &entries);
            group.bench_with_input(
                BenchmarkId::new(kind.to_string(), n),
                &probes,
                |b, probes| {
                    let mut out = Vec::with_capacity(64);
                    b.iter(|| {
                        let mut hits = 0usize;
                        for p in probes {
                            out.clear();
                            d.candidates(p, &mut out);
                            hits += out.len();
                        }
                        hits
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("description_maintenance");
    for n in [1_000usize, 10_000] {
        let entries = boxes(n, 42);
        group.throughput(Throughput::Elements(n as u64));
        for kind in [DescriptionKind::Array, DescriptionKind::RTree] {
            group.bench_with_input(
                BenchmarkId::new(format!("insert_remove_{kind}"), n),
                &entries,
                |b, entries| {
                    b.iter(|| {
                        let mut d = kind.make(3);
                        for (i, e) in entries.iter().enumerate() {
                            d.insert(i as u64, e.clone());
                        }
                        // Remove every other entry (eviction churn).
                        for (i, e) in entries.iter().enumerate().step_by(2) {
                            d.remove(i as u64, e);
                        }
                        d.len()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_lookup, bench_maintenance);
criterion_main!(benches);
