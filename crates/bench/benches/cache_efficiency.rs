//! Table 1 companion bench: full trace replays under active vs passive
//! caching (the measured time is the whole proxy+origin pipeline per
//! scheme; the cache-efficiency *numbers* are printed by `repro table1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fp_bench::{make_proxy, Experiment, Scale};
use fp_trace::Rbe;
use funcproxy::cache::DescriptionKind;
use funcproxy::{CostModel, Scheme};

fn bench_cache_efficiency(c: &mut Criterion) {
    let exp = Experiment::prepare(Scale::small());
    let rbe = Rbe::default();

    let mut group = c.benchmark_group("table1_trace_replay");
    group.sample_size(10);
    for (scheme, label) in [(Scheme::FullSemantic, "AC"), (Scheme::Passive, "PC")] {
        for (fraction, flabel) in [(1.0 / 6.0, "1/6"), (1.0, "1")] {
            let capacity = Some(exp.capacity_for(fraction));
            group.bench_with_input(
                BenchmarkId::new(label, flabel),
                &capacity,
                |b, &capacity| {
                    b.iter(|| {
                        // Cost model `free` so wall time measures real
                        // proxy + origin compute, not simulated WAN time.
                        let mut proxy = make_proxy(
                            &exp.site,
                            scheme,
                            DescriptionKind::Array,
                            capacity,
                            CostModel::free(),
                        );
                        rbe.run(&mut proxy, &exp.trace).expect("replay")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_cache_efficiency);
criterion_main!(benches);
