//! Micro-benchmarks of the region algebra: the relationship checks are the
//! innermost loop of cache classification, and point-membership tests are
//! the innermost loop of local evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fp_geometry::celestial::{radec_to_unit, radial_query_sphere};
use fp_geometry::{HyperRect, Polytope, Region};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_spheres(n: usize, seed: u64) -> Vec<Region> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            Region::Sphere(
                radial_query_sphere(
                    rng.gen_range(180.0..190.0),
                    rng.gen_range(-3.0..3.0),
                    rng.gen_range(2.0..30.0),
                )
                .expect("valid"),
            )
        })
        .collect()
}

fn bench_relate(c: &mut Criterion) {
    let spheres = random_spheres(1024, 1);
    let rects: Vec<Region> = spheres
        .iter()
        .map(|s| Region::Rect(s.bounding_rect()))
        .collect();
    let polys: Vec<Region> = rects
        .iter()
        .map(|r| {
            let Region::Rect(rect) = r else {
                unreachable!()
            };
            Region::Polytope(Polytope::from_rect(rect))
        })
        .collect();

    let mut group = c.benchmark_group("region_relate");
    group.throughput(Throughput::Elements(spheres.len() as u64));
    for (label, pool) in [
        ("sphere_sphere", &spheres),
        ("rect_rect", &rects),
        ("polytope_polytope", &polys),
    ] {
        group.bench_function(BenchmarkId::new("pair", label), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for w in pool.windows(2) {
                    acc += w[0].relate(&w[1]) as usize;
                }
                acc
            });
        });
    }
    group.finish();
}

fn bench_membership(c: &mut Criterion) {
    let region = Region::Sphere(radial_query_sphere(185.0, 0.0, 20.0).expect("valid"));
    let rect_region = Region::Rect(HyperRect::new(vec![184.0, -1.0], vec![186.0, 1.0]).unwrap());
    let mut rng = StdRng::seed_from_u64(2);
    let points3: Vec<[f64; 3]> = (0..4096)
        .map(|_| radec_to_unit(rng.gen_range(184.0..186.0), rng.gen_range(-1.0..1.0)))
        .collect();
    let points2: Vec<[f64; 2]> = (0..4096)
        .map(|_| [rng.gen_range(183.0..187.0), rng.gen_range(-2.0..2.0)])
        .collect();

    let mut group = c.benchmark_group("point_membership");
    group.throughput(Throughput::Elements(points3.len() as u64));
    group.bench_function("sphere_3d", |b| {
        b.iter(|| {
            points3
                .iter()
                .filter(|p| region.contains_coords(&p[..]))
                .count()
        });
    });
    group.bench_function("rect_2d", |b| {
        b.iter(|| {
            points2
                .iter()
                .filter(|p| rect_region.contains_coords(&p[..]))
                .count()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_relate, bench_membership);
criterion_main!(benches);
