//! SQL front-end micro-benchmarks: parsing form queries, template
//! matching/binding, and printing (remainder-query synthesis emits SQL
//! text on the overlap path, so printing is not cold code).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fp_sqlmini::{parse_query, QueryTemplate};

const RADIAL_SQL: &str = "SELECT TOP 1000 p.objID, p.run, p.ra, p.dec, p.cx, p.cy, p.cz \
     FROM fGetNearbyObjEq(185.0, 1.5, 30.0) n \
     JOIN PhotoPrimary p ON n.objID = p.objID \
     WHERE p.u BETWEEN 0.0 AND 22.5 AND p.r < 20.0 AND p.type IN (3, 6)";

const RADIAL_TEMPLATE: &str = "SELECT TOP 1000 p.objID, p.run, p.ra, p.dec, p.cx, p.cy, p.cz \
     FROM fGetNearbyObjEq($ra, $dec, $radius) n \
     JOIN PhotoPrimary p ON n.objID = p.objID \
     WHERE p.u BETWEEN 0.0 AND 22.5 AND p.r < $maxmag AND p.type IN (3, 6)";

fn bench_parse(c: &mut Criterion) {
    let mut group = c.benchmark_group("sql_front_end");
    group.throughput(Throughput::Bytes(RADIAL_SQL.len() as u64));
    group.bench_function("parse_radial_query", |b| {
        b.iter(|| parse_query(RADIAL_SQL).expect("parses"));
    });

    let query = parse_query(RADIAL_SQL).expect("parses");
    group.bench_function("print_radial_query", |b| {
        b.iter(|| query.to_sql());
    });

    let template = QueryTemplate::parse("radial", RADIAL_TEMPLATE).expect("parses");
    let concrete = {
        // Longest names first: `$ra` is a prefix of `$radius`.
        let sql = RADIAL_TEMPLATE
            .replace("$radius", "30.0")
            .replace("$maxmag", "20.0")
            .replace("$dec", "1.5")
            .replace("$ra", "185.0");
        parse_query(&sql).expect("parses")
    };
    group.bench_function("template_match_and_bind", |b| {
        b.iter(|| template.match_query(&concrete).expect("matches"));
    });
    group.finish();
}

criterion_group!(benches, bench_parse);
criterion_main!(benches);
