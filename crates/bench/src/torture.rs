//! `repro torture` — the whole-stack torture harness.
//!
//! One seed drives everything: a 3-node [`ClusterRouter`] fleet with
//! per-node disk tiers replays the calibrated Radial trace while a
//! seeded schedule injects faults into every layer at once —
//!
//! * **origin**: a mid-trace [`ChaosOrigin`] outage window;
//! * **network**: seeded packet loss and delay on the peer transport,
//!   plus an *asymmetric* (one-directional) partition window;
//! * **storage**: sticky slab-append faults (ENOSPC or EIO) on one
//!   node's tier for a window, and one byte of on-disk slab corruption
//!   flipped mid-run;
//! * **process**: one node killed mid-trace and revived later.
//!
//! Everything runs on one [`MockClock`], every random choice comes from
//! one xorshift stream seeded by `--seed`, and background refresh /
//! promotion threads are quiesced after every query — so a run is
//! **byte-deterministic**: the same seed replays the identical event
//! log and produces the identical `BENCH_torture.json` row, every time.
//!
//! While the trace replays, invariant oracles check every answer:
//!
//! 1. **soundness** — a served answer is a subset of the no-cache
//!    oracle answer, and complete unless flagged degraded, stale, or
//!    forwarded;
//! 2. **staleness** — no served entry is older than
//!    `ttl + max(stale_while_revalidate, stale_if_error)`;
//! 3. **availability** — the answered fraction stays above the chaos
//!    floor even with every fault armed;
//! 4. **durability** — after the run, faults heal, one node snapshots
//!    cleanly, restarts from disk, and must re-serve a cached answer
//!    with zero origin traffic and zero entry loss.
//!
//! [`MockClock`]: funcproxy::resilience::MockClock

use crate::cluster::{is_subset, parse_result};
use crate::Experiment;
use fp_trace::Rbe;
use funcproxy::cache::{IoFault, IoOp, SlabIo, TierConfig};
use funcproxy::cluster::{
    routing_key, ClusterConfig, ClusterRouter, LossyTransport, NodeId, NodeStatus,
};
use funcproxy::metrics::Outcome;
use funcproxy::origin::CountingOrigin;
use funcproxy::resilience::{ChaosOrigin, Clock, MockClock};
use funcproxy::template::TemplateManager;
use funcproxy::{CostModel, LifecycleConfig, Origin, ProxyConfig, ProxyHandle, Scheme, SiteOrigin};
use serde::Serialize;
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Virtual time between consecutive trace queries.
const TICK: Duration = Duration::from_millis(10);
/// Fleet size. Node 0 is the routing viewpoint and is never killed.
const NODES: usize = 3;
/// Per-template freshness bound.
const TTL: Duration = Duration::from_millis(600);
/// Stale-while-revalidate window.
const SWR: Duration = Duration::from_millis(200);
/// Stale-if-error window (the outage extension).
const SIE: Duration = Duration::from_millis(400);
/// Fraction of peer exchanges dropped by the lossy transport.
const DROP_RATE: f64 = 0.05;
/// Fraction of delivered peer exchanges delayed, and by how much.
const DELAY_RATE: f64 = 0.05;
const DELAY: Duration = Duration::from_millis(2);
/// The availability floor with every fault armed — the same chaos
/// floor the origin-outage and kill experiments hold.
pub const AVAILABILITY_FLOOR: f64 = 0.30;

/// The regression seed corpus CI replays on every push. A seed lands
/// here when it once found a bug (or probes a distinct schedule shape);
/// it never leaves.
pub const SEED_CORPUS: [u64; 5] = [3, 17, 1984, 0xC0FFEE, 0xFEED_BEEF];

/// One seed's torture run, the row `BENCH_torture.json` persists.
#[derive(Debug, Clone, Serialize, PartialEq)]
pub struct TortureRow {
    /// The schedule seed.
    pub seed: u64,
    /// Queries replayed.
    pub queries: usize,
    /// Queries answered.
    pub answered: usize,
    /// Answered fraction — must stay above [`AVAILABILITY_FLOOR`].
    pub availability: f64,
    /// Answers that exceeded the oracle or were incomplete without a
    /// degraded/stale flag. Must be 0.
    pub soundness_violations: usize,
    /// Answers older than `ttl + max(swr, sie)`. Must be 0.
    pub staleness_violations: usize,
    /// Answers served with the degraded flag set.
    pub degraded_answers: usize,
    /// Answers served stale (past TTL, inside a staleness window).
    pub stale_answers: usize,
    /// Origin faults the chaos layer injected.
    pub origin_faults_injected: u64,
    /// Slab I/O faults the storage seam injected.
    pub slab_faults_injected: u64,
    /// Healthy→degraded (eviction-only) tier transitions.
    pub tier_degrade_events: usize,
    /// Degraded→healthy tier transitions. Must be ≥ degrade events
    /// minus one (every window heals).
    pub tier_recoveries: usize,
    /// Slab I/O errors absorbed (never client-visible).
    pub slab_io_errors: usize,
    /// CRC-failed segments quarantined and re-fetched from the origin.
    pub read_repairs: usize,
    /// Snapshot/meta writes that failed and were absorbed.
    pub snapshot_io_errors: usize,
    /// Virtual ms from the kill until a survivor's live view first
    /// excluded the victim. `None` = never noticed (a bug).
    pub failover_ms: Option<f64>,
    /// Virtual ms from the revive until every live node saw the victim
    /// Alive again. `None` = never rejoined (a bug).
    pub rejoin_ms: Option<f64>,
    /// Entries (RAM + disk tier) on node 0 when it snapshotted after
    /// the run. Includes entries already aged past every serve window,
    /// which a restart legitimately drops.
    pub pre_restart_entries: usize,
    /// Entries (RAM + disk tier) recovered by the restarted node.
    pub restart_entries_recovered: usize,
    /// The restarted node re-served a pre-restart answer with zero
    /// origin traffic. Must be true.
    pub restart_served_from_cache: bool,
    /// FNV-1a hash of the full event log — two same-seed runs must
    /// produce identical hashes (the byte-determinism oracle).
    pub event_log_hash: String,
}

/// A torture run: the summary row plus the full event log.
#[derive(Debug, Clone)]
pub struct TortureRun {
    /// The summary row.
    pub row: TortureRow,
    /// The deterministic event log (virtual timestamps only).
    pub events: Vec<String>,
}

/// The report `repro torture` persists to `BENCH_torture.json`.
#[derive(Debug, Clone, Serialize)]
pub struct TortureBench {
    /// One row per seed.
    pub rows: Vec<TortureRow>,
}

impl std::fmt::Display for TortureBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Whole-stack torture (3 nodes, origin outage + loss/delay/partition + slab faults + kill/revive, virtual clock)"
        )?;
        writeln!(
            f,
            "  seed       | avail | sound | stale-ok | degr | repairs | io errs | failover ms | rejoin ms | restart"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>10} | {:>5.3} | {:>5} | {:>8} | {:>4} | {:>7} | {:>7} | {:>11} | {:>9} | {}",
                r.seed,
                r.availability,
                r.soundness_violations == 0,
                r.staleness_violations == 0,
                r.tier_degrade_events,
                r.read_repairs,
                r.slab_io_errors,
                r.failover_ms.map_or("never".into(), |m| format!("{m:.0}")),
                r.rejoin_ms.map_or("never".into(), |m| format!("{m:.0}")),
                if r.restart_served_from_cache {
                    "warm"
                } else {
                    "cold"
                },
            )?;
        }
        Ok(())
    }
}

/// The seeded xorshift stream every schedule choice is drawn from.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next() >> 17) as usize % n.max(1)
    }
}

/// What the seed chose to break, and when (query indices).
struct Schedule {
    victim: usize,
    kill_at: usize,
    revive_at: usize,
    slab_node: usize,
    slab_fault: IoFault,
    slab_from: usize,
    slab_until: usize,
    part_from_node: NodeId,
    part_to_node: NodeId,
    part_from: usize,
    part_until: usize,
    outage_start: Duration,
    outage_end: Duration,
    corrupt_at: usize,
}

impl Schedule {
    fn derive(seed: u64, queries: usize) -> (Schedule, Rng) {
        let mut rng = Rng(seed.max(1) ^ 0x7042_7042);
        let q = queries.max(12);
        let victim = 1 + rng.pick(NODES - 1);
        // The slab-fault node is any node; faulting the victim's tier
        // while it is down is a valid (boring) draw, so bias away.
        let slab_node = (victim + 1 + rng.pick(NODES - 1)) % NODES;
        let slab_fault = if rng.next().is_multiple_of(2) {
            IoFault::Enospc
        } else {
            IoFault::Eio
        };
        // One asymmetric partition: a live node stops reaching another,
        // while the reverse direction keeps working.
        let pa = rng.pick(NODES);
        let pb = (pa + 1 + rng.pick(NODES - 1)) % NODES;
        let schedule = Schedule {
            victim,
            kill_at: q / 3,
            revive_at: 2 * q / 3,
            slab_node,
            slab_fault,
            slab_from: q / 6,
            slab_until: q / 2,
            part_from_node: NodeId(pa as u16),
            part_to_node: NodeId(pb as u16),
            part_from: q / 4,
            part_until: 5 * q / 12,
            outage_start: TICK * (q as u32 * 55 / 100),
            outage_end: TICK * (q as u32 * 70 / 100),
            corrupt_at: q * 45 / 100,
        };
        (schedule, rng)
    }
}

impl Experiment {
    /// Replays the seed corpus (or any seed list) and collects rows.
    pub fn torture_corpus(&self, seeds: &[u64]) -> TortureBench {
        TortureBench {
            rows: seeds.iter().map(|&s| self.torture(s).row).collect(),
        }
    }

    /// One seeded torture run; see the module docs for the fault
    /// schedule and the oracles.
    pub fn torture(&self, seed: u64) -> TortureRun {
        let queries = self.trace.len();
        let (schedule, mut rng) = Schedule::derive(seed, queries);
        let mut events: Vec<String> = Vec::new();

        // Deterministic workspace: the path never enters the event log,
        // so two runs (different pids) still log identically.
        let root = std::env::temp_dir().join(format!("fp_torture_{}_{seed}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);

        let oracle = self.oracle_object_ids();
        let clock = MockClock::shared();
        let t0 = clock.now();
        let counting = Arc::new(CountingOrigin::new(Arc::new(SiteOrigin::new(
            self.site.clone(),
        ))));
        let chaos = Arc::new(ChaosOrigin::with_clock(
            Arc::clone(&counting) as Arc<dyn Origin>,
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        chaos.outage_between(schedule.outage_start, schedule.outage_end);

        let ios: Vec<SlabIo> = (0..NODES).map(|_| SlabIo::healthy()).collect();
        let node_dirs: Vec<PathBuf> = (0..NODES).map(|i| root.join(format!("node{i}"))).collect();
        let cap = self.capacity_for(1.0 / 6.0);
        let handles: Vec<ProxyHandle> = (0..NODES)
            .map(|i| self.torture_node(&node_dirs[i], cap, &ios[i], &clock, &chaos))
            .collect();
        let (router, lossy) = ClusterRouter::in_process(
            handles,
            ClusterConfig::fast_test(),
            Arc::clone(&clock) as Arc<dyn Clock>,
        )
        .with_faulty_transport(|inner| {
            LossyTransport::new(inner, DROP_RATE, seed ^ 0x5EED).with_delay(
                DELAY_RATE,
                DELAY,
                Arc::clone(&clock) as Arc<dyn Clock>,
            )
        });

        let ms = |clock: &MockClock| clock.now().duration_since(t0).as_millis();
        events.push(format!(
            "schedule seed={seed} victim={} kill@{} revive@{} slab node={} fault={:?} [{}, {}) partition {}->{} [{}, {}) outage [{}ms, {}ms) corrupt@{}",
            schedule.victim,
            schedule.kill_at,
            schedule.revive_at,
            schedule.slab_node,
            schedule.slab_fault,
            schedule.slab_from,
            schedule.slab_until,
            schedule.part_from_node.0,
            schedule.part_to_node.0,
            schedule.part_from,
            schedule.part_until,
            schedule.outage_start.as_millis(),
            schedule.outage_end.as_millis(),
            schedule.corrupt_at,
        ));

        let rbe = Rbe::default();
        let victim_id = NodeId(schedule.victim as u16);
        let stale_bound_ms = (TTL + SWR.max(SIE)).as_secs_f64() * 1000.0;
        let mut answered = 0usize;
        let mut soundness_violations = 0usize;
        let mut staleness_violations = 0usize;
        let mut degraded_answers = 0usize;
        let mut stale_answers = 0usize;
        let mut kill_time: Option<std::time::Instant> = None;
        let mut failover: Option<Duration> = None;
        let mut revive_time: Option<std::time::Instant> = None;
        let mut rejoin: Option<Duration> = None;
        let mut lcg: u64 = 0x0BEE_F00D ^ seed;

        for (i, q) in self.trace.queries.iter().enumerate() {
            clock.advance(TICK);

            // The seeded fault schedule, armed and healed by query index.
            if i == schedule.kill_at {
                router.kill(schedule.victim);
                events.push(format!("t={}ms kill node {}", ms(&clock), schedule.victim));
            }
            if i == schedule.revive_at {
                router.revive(schedule.victim);
                events.push(format!(
                    "t={}ms revive node {}",
                    ms(&clock),
                    schedule.victim
                ));
            }
            if i == schedule.slab_from {
                ios[schedule.slab_node].inject(IoOp::Append, schedule.slab_fault);
                ios[schedule.slab_node].inject(IoOp::MetaWrite, schedule.slab_fault);
                events.push(format!(
                    "t={}ms arm slab fault {:?} on node {}",
                    ms(&clock),
                    schedule.slab_fault,
                    schedule.slab_node
                ));
            }
            if i == schedule.slab_until {
                ios[schedule.slab_node].heal_all();
                events.push(format!(
                    "t={}ms heal slab on node {}",
                    ms(&clock),
                    schedule.slab_node
                ));
            }
            if i == schedule.part_from {
                lossy.block(schedule.part_from_node, schedule.part_to_node);
                events.push(format!(
                    "t={}ms partition {}->{}",
                    ms(&clock),
                    schedule.part_from_node.0,
                    schedule.part_to_node.0
                ));
            }
            if i == schedule.part_until {
                lossy.unblock(schedule.part_from_node, schedule.part_to_node);
                events.push(format!(
                    "t={}ms heal partition {}->{}",
                    ms(&clock),
                    schedule.part_from_node.0,
                    schedule.part_to_node.0
                ));
            }
            if i == schedule.corrupt_at {
                let flipped = corrupt_slab_byte(&node_dirs[0].join("tier"));
                events.push(format!(
                    "t={}ms flip slab byte on node 0: {}",
                    ms(&clock),
                    flipped
                ));
            }

            // Route at the edge exactly like the cluster bench: owner
            // as node 0 sees it, with a seeded quarter sprayed.
            let fields = q.form_fields();
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let owner_entry = router
                .node(0)
                .manager()
                .resolve_form(&rbe.form_path, &fields)
                .ok()
                .and_then(|bound| {
                    let key = routing_key(&bound.residual_key, &bound.region);
                    router.owner_seen_by(0, &key)
                })
                .map_or(0, |owner| owner.0 as usize);
            let entry = if (lcg >> 33).is_multiple_of(4) {
                ((lcg >> 17) as usize) % NODES
            } else {
                owner_entry
            };

            match router.handle_form(entry, &rbe.form_path, &fields) {
                Ok(served) => {
                    answered += 1;
                    let m = &served.response.metrics;
                    if m.degraded {
                        degraded_answers += 1;
                    }
                    if m.stale {
                        stale_answers += 1;
                    }
                    if m.entry_age_ms > stale_bound_ms {
                        staleness_violations += 1;
                        events.push(format!(
                            "t={}ms STALENESS q={} age={:.0}ms",
                            ms(&clock),
                            i,
                            m.entry_age_ms
                        ));
                    }
                    let oracle_ids = &oracle[&q.query_string()];
                    let sound = match parse_result(&served.response.body) {
                        Some(result) => {
                            is_subset(&result, oracle_ids)
                                && (m.degraded
                                    || m.stale
                                    || matches!(m.outcome, Outcome::Forwarded)
                                    || result.len() == oracle_ids.len())
                        }
                        None => false,
                    };
                    if !sound {
                        soundness_violations += 1;
                        events.push(format!("t={}ms UNSOUND q={}", ms(&clock), i));
                    }
                }
                Err(_) => {
                    events.push(format!("t={}ms unanswered q={}", ms(&clock), i));
                }
            }

            router.tick();
            // Join every background refresh/promotion before the next
            // query: thread completion points become deterministic.
            for n in 0..NODES {
                router.node(n).quiesce_revalidations();
            }

            if kill_time.is_none() && router.is_down(schedule.victim) {
                kill_time = Some(clock.now());
            }
            if let (Some(t), None) = (kill_time, failover) {
                let noticed = (0..NODES)
                    .filter(|&n| n != schedule.victim)
                    .any(|n| router.status_seen_by(n, victim_id) != Some(NodeStatus::Alive));
                if noticed {
                    failover = Some(clock.now().duration_since(t));
                    events.push(format!(
                        "t={}ms survivors routed around the victim",
                        ms(&clock)
                    ));
                }
            }
            if revive_time.is_none() && i >= schedule.revive_at && !router.is_down(schedule.victim)
            {
                revive_time = Some(clock.now());
            }
            if let (Some(t), None) = (revive_time, rejoin) {
                let all_back = (0..NODES)
                    .filter(|&n| n != schedule.victim)
                    .all(|n| router.status_seen_by(n, victim_id) == Some(NodeStatus::Alive));
                if all_back {
                    rejoin = Some(clock.now().duration_since(t));
                    events.push(format!("t={}ms victim seen alive everywhere", ms(&clock)));
                }
            }
        }

        // Heal the world, then let membership settle so the rejoin can
        // complete even when the revive fell late in the trace.
        for io in &ios {
            io.heal_all();
        }
        lossy.heal_partitions();
        if router.is_down(schedule.victim) {
            router.revive(schedule.victim);
        }
        for _ in 0..50 {
            clock.advance(TICK);
            router.tick();
            if let (Some(t), None) = (revive_time, rejoin) {
                let all_back = (0..NODES)
                    .filter(|&n| n != schedule.victim)
                    .all(|n| router.status_seen_by(n, victim_id) == Some(NodeStatus::Alive));
                if all_back {
                    rejoin = Some(clock.now().duration_since(t));
                    events.push(format!("t={}ms victim seen alive everywhere", ms(&clock)));
                }
            } else if rejoin.is_some() {
                break;
            }
            if revive_time.is_none() && !router.is_down(schedule.victim) {
                revive_time = Some(clock.now());
            }
        }

        // Durability oracle: cache a probe answer on node 0, snapshot,
        // restart from the same disk state, and re-serve it with zero
        // origin traffic.
        let probe_q = &self.trace.queries[rng.pick(queries)];
        let probe_fields = probe_q.form_fields();
        let node0 = router.node(0);
        let _ = node0.handle_form_xml(&rbe.form_path, &probe_fields);
        let warm = node0
            .handle_form_xml(&rbe.form_path, &probe_fields)
            .expect("healthy origin serves the probe");
        node0.quiesce_revalidations();
        let written = node0.snapshot_now().expect("healed io snapshots cleanly");
        let pre_stats = node0.cache_stats();
        let pre_restart_entries = pre_stats.entries + pre_stats.disk_entries;
        events.push(format!(
            "t={}ms node 0 snapshot: {} files, {} entries",
            ms(&clock),
            written,
            pre_restart_entries
        ));

        // Collect fleet-wide counters before the fleet goes away.
        let mut tier_degrade_events = 0usize;
        let mut tier_recoveries = 0usize;
        let mut slab_io_errors = 0usize;
        let mut read_repairs = 0usize;
        let mut snapshot_io_errors = 0usize;
        for n in 0..NODES {
            let s = router.node(n).runtime_stats();
            tier_degrade_events += s.tier_degraded;
            tier_recoveries += s.tier_recoveries;
            slab_io_errors += s.slab_io_errors;
            read_repairs += s.read_repairs;
            snapshot_io_errors += s.snapshot_io_errors;
        }
        let slab_faults_injected: u64 = ios.iter().map(|io| io.faults_injected() as u64).sum();
        drop(router);

        let restarted = self.torture_node(&node_dirs[0], cap, &SlabIo::healthy(), &clock, &chaos);
        let restart_stats = restarted.cache_stats();
        let restart_entries_recovered = restart_stats.entries + restart_stats.disk_entries;
        let before = counting.fetches();
        let reserved = restarted.handle_form_xml(&rbe.form_path, &probe_fields);
        let restart_served_from_cache = match &reserved {
            Ok(r) => counting.fetches() == before && r.body == warm.body,
            Err(_) => false,
        };
        events.push(format!(
            "t={}ms restart: {} entries recovered, warm re-serve: {}",
            ms(&clock),
            restart_entries_recovered,
            restart_served_from_cache
        ));
        self.site.reset_load();
        let _ = std::fs::remove_dir_all(&root);

        let row = TortureRow {
            seed,
            queries,
            answered,
            availability: answered as f64 / queries.max(1) as f64,
            soundness_violations,
            staleness_violations,
            degraded_answers,
            stale_answers,
            origin_faults_injected: chaos.faults_injected(),
            slab_faults_injected,
            tier_degrade_events,
            tier_recoveries,
            slab_io_errors,
            read_repairs,
            snapshot_io_errors,
            failover_ms: failover.map(|d| d.as_secs_f64() * 1000.0),
            rejoin_ms: rejoin.map(|d| d.as_secs_f64() * 1000.0),
            pre_restart_entries,
            restart_entries_recovered,
            restart_served_from_cache,
            event_log_hash: fnv1a(&events),
        };
        TortureRun { row, events }
    }

    /// One torture fleet node: 1/6-size RAM cache, disk tier carrying
    /// the injectable [`SlabIo`], short TTLs with both staleness
    /// windows, and snapshot-on-demand persistence.
    fn torture_node(
        &self,
        dir: &Path,
        cap: usize,
        io: &SlabIo,
        clock: &Arc<MockClock>,
        origin: &Arc<ChaosOrigin>,
    ) -> ProxyHandle {
        let tier_dir = dir.join("tier");
        let snap_dir = dir.join("snap");
        let _ = std::fs::create_dir_all(&tier_dir);
        let _ = std::fs::create_dir_all(&snap_dir);
        let lifecycle = LifecycleConfig::default()
            .with_default_ttl(TTL)
            .with_stale_while_revalidate(SWR)
            .with_stale_if_error(SIE)
            .with_epoch(1)
            // Interval far beyond the run: snapshots happen through
            // `snapshot_now` only, deterministically.
            .with_snapshot(snap_dir, Duration::from_secs(3600));
        ProxyHandle::with_shards_clocked(
            TemplateManager::with_sky_defaults(),
            Arc::clone(origin) as Arc<dyn Origin>,
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_capacity(Some(cap))
                .with_cost(CostModel::free())
                .with_lifecycle(lifecycle)
                .with_tier_config(TierConfig::new(tier_dir).with_io(io.clone())),
            2,
            Arc::clone(clock) as Arc<dyn Clock>,
        )
    }
}

/// Flips one byte in the middle of the first non-empty slab under
/// `tier_dir`, returning a description of what was done. The slab's
/// contents at this point are seed-deterministic, so the chosen offset
/// (and hence the logged line) is too.
fn corrupt_slab_byte(tier_dir: &Path) -> String {
    let mut slabs: Vec<PathBuf> = match std::fs::read_dir(tier_dir) {
        Ok(rd) => rd
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "fpslab"))
            .collect(),
        Err(_) => return "no tier dir".into(),
    };
    slabs.sort();
    for slab in slabs {
        let Ok(meta) = std::fs::metadata(&slab) else {
            continue;
        };
        if meta.len() <= 64 {
            continue;
        }
        let off = meta.len() / 2;
        let Ok(mut f) = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&slab)
        else {
            continue;
        };
        let mut byte = [0u8; 1];
        if f.seek(SeekFrom::Start(off)).is_err()
            || std::io::Read::read_exact(&mut f, &mut byte).is_err()
        {
            continue;
        }
        byte[0] ^= 0xFF;
        if f.seek(SeekFrom::Start(off)).is_ok() && f.write_all(&byte).is_ok() {
            let name = slab
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            return format!("{name} offset {off}");
        }
    }
    "no slab large enough".into()
}

/// FNV-1a over the event log, newline-joined: the fingerprint two
/// same-seed runs must agree on byte for byte.
fn fnv1a(events: &[String]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for line in events {
        for b in line.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h ^= u64::from(b'\n');
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    fn small() -> Experiment {
        Experiment::prepare(Scale {
            objects: 8_000,
            queries: 90,
            seed: 23,
        })
    }

    /// The acceptance bar: one corpus seed end to end — availability
    /// above the floor, zero soundness and staleness violations, the
    /// kill noticed and the victim rejoined, and a clean warm restart.
    #[test]
    fn torture_run_holds_every_invariant() {
        let exp = small();
        let run = exp.torture(SEED_CORPUS[0]);
        let r = &run.row;
        assert!(
            r.availability >= AVAILABILITY_FLOOR,
            "availability {:.3} under the floor",
            r.availability
        );
        assert_eq!(r.soundness_violations, 0, "events: {:#?}", run.events);
        assert_eq!(r.staleness_violations, 0, "events: {:#?}", run.events);
        assert!(r.failover_ms.is_some(), "survivors never noticed the kill");
        assert!(r.rejoin_ms.is_some(), "victim never rejoined");
        assert!(r.origin_faults_injected > 0, "outage window never fired");
        assert!(
            r.restart_served_from_cache,
            "restart lost the cached answer"
        );
        // A restart drops entries aged past every serve window, so the
        // recovered count may be lower — but never zero (the probe
        // entry is seconds old) and never higher than what was there.
        assert!(
            (1..=r.pre_restart_entries).contains(&r.restart_entries_recovered),
            "recovered {} of {} durable entries",
            r.restart_entries_recovered,
            r.pre_restart_entries
        );
    }

    /// The committed regression corpus: every seed must hold the
    /// soundness, staleness, availability, and restart oracles.
    #[test]
    fn seed_corpus_stays_sound() {
        let exp = small();
        let bench = exp.torture_corpus(&SEED_CORPUS);
        assert_eq!(bench.rows.len(), SEED_CORPUS.len());
        for r in &bench.rows {
            assert_eq!(r.soundness_violations, 0, "seed {}", r.seed);
            assert_eq!(r.staleness_violations, 0, "seed {}", r.seed);
            assert!(
                r.availability >= AVAILABILITY_FLOOR,
                "seed {}: availability {:.3}",
                r.seed,
                r.availability
            );
            assert!(r.restart_served_from_cache, "seed {}: cold restart", r.seed);
        }
    }

    /// Byte-determinism: the same seed must replay the identical event
    /// log (and therefore the identical row) twice in a row.
    #[test]
    fn same_seed_replays_byte_identically() {
        let exp = small();
        let a = exp.torture(9);
        let b = exp.torture(9);
        assert_eq!(a.events, b.events);
        assert_eq!(
            serde_json::to_string(&a.row).unwrap(),
            serde_json::to_string(&b.row).unwrap()
        );
        assert_eq!(a.row.event_log_hash, b.row.event_log_hash);
    }
}
