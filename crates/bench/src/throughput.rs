//! Multi-client throughput harness over the concurrent runtime.
//!
//! The paper evaluates the proxy with one emulated browser at a time; a
//! deployed proxy fronts many. This harness replays the calibrated Radial
//! trace through one shared [`ProxyHandle`] from `K` client threads
//! (round-robin deal, see `Rbe::replay_shared`) and measures what the
//! single-threaded replay cannot: queries per second, the wall-clock
//! latency distribution at the proxy, and how many origin round trips the
//! single-flight coalescer eliminated.
//!
//! The origin is wrapped in a [`CountingOrigin`] that both counts fetches
//! and sleeps a configurable per-fetch delay standing in for the WAN +
//! origin-server time the simulation's cost model normally only *accounts*
//! for. The delay makes concurrency observable on any machine: client
//! threads overlap their origin waits, so throughput scales with the
//! client count until the origin-bound work is fully pipelined — even on
//! a single core.

use crate::Experiment;
use fp_skyserver::SkySite;
use fp_trace::{Rbe, Trace};
use funcproxy::metrics::Outcome;
use funcproxy::observe::{OutcomeClass, PathClass, Phase};
use funcproxy::origin::CountingOrigin;
use funcproxy::runtime::RuntimeSnapshot;
use funcproxy::template::TemplateManager;
use funcproxy::LatencySummary;
use funcproxy::{CostModel, ProxyConfig, ProxyHandle, Scheme, SiteOrigin};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cache shards used by throughput runs (fixed so results are comparable
/// across machines instead of following `available_parallelism`).
pub const THROUGHPUT_SHARDS: usize = 8;

/// One measured client-count configuration.
#[derive(Debug, Clone, Serialize)]
pub struct ThroughputRow {
    /// Concurrent client threads.
    pub threads: usize,
    /// Wall-clock time for the whole replay, ms.
    pub elapsed_ms: f64,
    /// Queries per second over the replay.
    pub qps: f64,
    /// Median measured per-request latency at the proxy, ms.
    pub p50_ms: f64,
    /// 99th-percentile measured per-request latency at the proxy, ms.
    pub p99_ms: f64,
    /// 90th-percentile per-request latency from the runtime's lock-free
    /// histograms (log-bucketed, ≤ 1 % relative error) — the same
    /// numbers `/metrics` exposes, cross-checking the exact sort above.
    pub p90_ms: f64,
    /// 99.9th-percentile per-request latency from the runtime's
    /// histograms.
    pub p999_ms: f64,
    /// Origin fetches actually issued.
    pub origin_fetches: usize,
    /// Requests answered by piggybacking on another request's flight.
    pub coalesced: usize,
    /// Origin round trips the single-flight coalescer eliminated.
    pub duplicate_fetches_avoided: usize,
    /// Total time spent waiting on cache-shard locks, ms.
    pub lock_wait_ms: f64,
    /// Peak number of simultaneous origin flights.
    pub in_flight_peak: usize,
    /// Requests answered wholly from cache (exact + contained hits).
    pub hits: usize,
    /// Median measured latency over those cache hits, ms.
    pub hit_p50_ms: f64,
    /// 99th-percentile measured latency over those cache hits, ms.
    pub hit_p99_ms: f64,
    /// Hits served from the disk tier's mmap'd slab (zero without a
    /// tier configured).
    pub disk_hits: usize,
    /// Median measured latency over those disk-tier hits, ms.
    pub disk_hit_p50_ms: f64,
    /// 99th-percentile measured latency over those disk-tier hits, ms.
    pub disk_hit_p99_ms: f64,
    /// Cached rows the local evaluator tested after micro-index pruning.
    pub rows_scanned: usize,
    /// Cached rows the per-entry micro-index skipped without testing.
    pub rows_pruned: usize,
    /// Requests answered degraded, from cache alone with the origin
    /// unreachable (zero in a healthy run).
    pub degraded_hits: usize,
    /// Origin fetches whose deadline expired (zero without a resilience
    /// layer configured).
    pub origin_timeouts: u64,
    /// Requests answered from an expired-but-serveable entry (zero
    /// unless a lifecycle TTL is configured).
    pub stale_hits: usize,
    /// Background refreshes the stale hits triggered.
    pub revalidations: usize,
}

/// The throughput experiment: one row per client count.
#[derive(Debug, Clone, Serialize)]
pub struct Throughput {
    /// Simulated per-fetch origin delay, ms.
    pub origin_delay_ms: u64,
    /// Rows, ordered by client count.
    pub rows: Vec<ThroughputRow>,
    /// Per-phase and per-outcome latency distributions for each client
    /// count, drained from the runtime's histograms after the replay.
    pub latency: Vec<LatencyPercentilesRow>,
}

/// The `BENCH_latency_percentiles.json` artifact: per-phase and
/// per-outcome latency quantiles from the runtime's lock-free
/// histograms, per swept client count.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyPercentilesReport {
    /// Simulated per-fetch origin delay, ms.
    pub origin_delay_ms: u64,
    /// One entry per swept client count.
    pub rows: Vec<LatencyPercentilesRow>,
}

/// One client count's latency distributions.
#[derive(Debug, Clone, Serialize)]
pub struct LatencyPercentilesRow {
    /// Concurrent client threads.
    pub threads: usize,
    /// One entry per (phase, path class) cell that recorded samples.
    pub phases: Vec<PhasePercentiles>,
    /// One entry per outcome class that recorded samples.
    pub outcomes: Vec<OutcomePercentiles>,
}

/// Quantiles for one (phase, path-class) histogram cell.
#[derive(Debug, Clone, Serialize)]
pub struct PhasePercentiles {
    /// Request phase (`classify`, `local_eval`, `origin_fetch`, ...).
    pub phase: String,
    /// Path class (`hit`, `miss`, `background`).
    pub path: String,
    /// Samples recorded, and the p50/p90/p99/p999 quantiles in ms.
    pub summary: LatencySummary,
}

/// Quantiles for one outcome class's request-latency histogram.
#[derive(Debug, Clone, Serialize)]
pub struct OutcomePercentiles {
    /// Outcome class (`exact`, `contained`, `miss`, `degraded`, ...).
    pub class: String,
    /// Samples recorded, and the p50/p90/p99/p999 quantiles in ms.
    pub summary: LatencySummary,
}

/// The `BENCH_hit_latency.json` artifact: the cache-hit serve path's
/// latency and pruning trajectory, persisted so successive PRs can be
/// compared on the same axes.
#[derive(Debug, Clone, Serialize)]
pub struct HitLatencyReport {
    /// Simulated per-fetch origin delay, ms (context for the misses the
    /// hit latencies are measured alongside).
    pub origin_delay_ms: u64,
    /// One entry per swept client count.
    pub rows: Vec<HitLatencyRow>,
    /// The hit-rate-vs-RAM-budget sweep: RAM-only vs tiered at equal
    /// RAM, one row per budget (see [`crate::tiered`]).
    pub budget_sweep: Vec<crate::tiered::BudgetSweepRow>,
}

/// Per-client-count hit-path numbers extracted from a [`ThroughputRow`].
#[derive(Debug, Clone, Serialize)]
pub struct HitLatencyRow {
    /// Concurrent client threads.
    pub threads: usize,
    /// Exact + contained hits observed during the replay.
    pub hits: usize,
    /// Median measured hit latency at the proxy, ms.
    pub hit_p50_ms: f64,
    /// 99th-percentile measured hit latency at the proxy, ms.
    pub hit_p99_ms: f64,
    /// Hits served from the disk tier (zero in the untiered sweep; the
    /// tiered numbers live in [`HitLatencyReport::budget_sweep`]).
    pub disk_hits: usize,
    /// Median measured disk-tier hit latency, ms.
    pub disk_hit_p50_ms: f64,
    /// 99th-percentile measured disk-tier hit latency, ms.
    pub disk_hit_p99_ms: f64,
    /// Cached rows tested by the local evaluator after pruning.
    pub rows_scanned: usize,
    /// Cached rows the per-entry micro-index skipped without testing.
    pub rows_pruned: usize,
}

impl Throughput {
    /// Projects the histogram quantiles into the
    /// `BENCH_latency_percentiles.json` artifact.
    pub fn latency_percentiles(&self) -> LatencyPercentilesReport {
        LatencyPercentilesReport {
            origin_delay_ms: self.origin_delay_ms,
            rows: self.latency.clone(),
        }
    }

    /// Projects the hit-path columns into the perf-trajectory artifact,
    /// attaching the hit-rate-vs-budget sweep as its own section.
    pub fn hit_latency(&self, sweep: &crate::tiered::BudgetSweep) -> HitLatencyReport {
        HitLatencyReport {
            origin_delay_ms: self.origin_delay_ms,
            rows: self
                .rows
                .iter()
                .map(|r| HitLatencyRow {
                    threads: r.threads,
                    hits: r.hits,
                    hit_p50_ms: r.hit_p50_ms,
                    hit_p99_ms: r.hit_p99_ms,
                    disk_hits: r.disk_hits,
                    disk_hit_p50_ms: r.disk_hit_p50_ms,
                    disk_hit_p99_ms: r.disk_hit_p99_ms,
                    rows_scanned: r.rows_scanned,
                    rows_pruned: r.rows_pruned,
                })
                .collect(),
            budget_sweep: sweep.rows.clone(),
        }
    }
}

impl std::fmt::Display for Throughput {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Throughput scaling ({} cache shards, {} ms simulated origin delay per fetch)",
            THROUGHPUT_SHARDS, self.origin_delay_ms
        )?;
        writeln!(
            f,
            "  clients |     qps | p50 ms | p90 ms | p99 ms | p999 ms | hit p50 | hit p99 | scanned | pruned | fetches | coalesced | dup avoided | lock wait ms | peak flights | degraded | timeouts | stale | revalidated"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>7} | {:>7.1} | {:>6.1} | {:>6.1} | {:>6.1} | {:>7.1} | {:>7.3} | {:>7.3} | {:>7} | {:>6} | {:>7} | {:>9} | {:>11} | {:>12.2} | {:>12} | {:>8} | {:>8} | {:>5} | {:>11}",
                r.threads,
                r.qps,
                r.p50_ms,
                r.p90_ms,
                r.p99_ms,
                r.p999_ms,
                r.hit_p50_ms,
                r.hit_p99_ms,
                r.rows_scanned,
                r.rows_pruned,
                r.origin_fetches,
                r.coalesced,
                r.duplicate_fetches_avoided,
                r.lock_wait_ms,
                r.in_flight_peak,
                r.degraded_hits,
                r.origin_timeouts,
                r.stale_hits,
                r.revalidations
            )?;
        }
        Ok(())
    }
}

impl Experiment {
    /// Replays the trace at each client count in `thread_counts` through
    /// a fresh shared handle, with `origin_delay` of simulated WAN +
    /// origin time per fetch.
    pub fn throughput(&self, thread_counts: &[usize], origin_delay: Duration) -> Throughput {
        let (rows, latency) = thread_counts
            .iter()
            .map(|&threads| run_once(&self.site, &self.trace, threads, origin_delay))
            .unzip();
        Throughput {
            origin_delay_ms: origin_delay.as_millis() as u64,
            rows,
            latency,
        }
    }
}

/// Client counts for a `--threads K` sweep: powers of two up to `max`,
/// plus `max` itself (`8 → 1, 2, 4, 8`; `6 → 1, 2, 4, 6`).
pub fn thread_sweep(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut counts: Vec<usize> = std::iter::successors(Some(1usize), |n| n.checked_mul(2))
        .take_while(|&n| n < max)
        .collect();
    counts.push(max);
    counts
}

fn run_once(
    site: &SkySite,
    trace: &Trace,
    threads: usize,
    delay: Duration,
) -> (ThroughputRow, LatencyPercentilesRow) {
    let counting = Arc::new(CountingOrigin::with_delay(
        Arc::new(SiteOrigin::new(site.clone())),
        delay,
    ));
    let handle = ProxyHandle::with_shards(
        TemplateManager::with_sky_defaults(),
        Arc::clone(&counting) as Arc<dyn funcproxy::Origin>,
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
        THROUGHPUT_SHARDS,
    );

    let start = Instant::now();
    let metrics = Rbe::default()
        .replay_shared(&handle, trace, threads)
        .expect("trace replays");
    let elapsed = start.elapsed();

    // Real wall-clock time each request spent inside the proxy, including
    // flight waits, lock waits and (for leaders) the origin round trip.
    let mut latencies: Vec<f64> = metrics.iter().map(|m| m.proxy_ms).collect();
    latencies.sort_by(f64::total_cmp);

    // Cache hits in isolation: the latencies the columnar serve path
    // controls (no origin round trip hidden inside).
    let mut hit_latencies: Vec<f64> = metrics
        .iter()
        .filter(|m| matches!(m.outcome, Outcome::Exact | Outcome::Contained))
        .map(|m| m.proxy_ms)
        .collect();
    hit_latencies.sort_by(f64::total_cmp);

    // Disk-tier hits in isolation (none unless a tier is configured —
    // the column keeps the artifact schema uniform with the sweep).
    let mut disk_latencies: Vec<f64> = metrics
        .iter()
        .filter(|m| m.disk_hit)
        .map(|m| m.proxy_ms)
        .collect();
    disk_latencies.sort_by(f64::total_cmp);

    let snapshot: RuntimeSnapshot = handle.runtime_stats();
    let row = ThroughputRow {
        threads,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        qps: trace.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        p90_ms: snapshot.request_latency.p90_ms,
        p999_ms: snapshot.request_latency.p999_ms,
        origin_fetches: counting.fetches(),
        coalesced: snapshot.coalesced_exact + snapshot.coalesced_contained,
        duplicate_fetches_avoided: snapshot.duplicate_fetches_avoided,
        lock_wait_ms: snapshot.lock_wait_ms,
        in_flight_peak: snapshot.in_flight_peak,
        hits: hit_latencies.len(),
        hit_p50_ms: percentile(&hit_latencies, 0.50),
        hit_p99_ms: percentile(&hit_latencies, 0.99),
        disk_hits: disk_latencies.len(),
        disk_hit_p50_ms: percentile(&disk_latencies, 0.50),
        disk_hit_p99_ms: percentile(&disk_latencies, 0.99),
        rows_scanned: metrics.iter().map(|m| m.rows_scanned).sum(),
        rows_pruned: metrics.iter().map(|m| m.rows_pruned).sum(),
        degraded_hits: snapshot.degraded_hits,
        origin_timeouts: snapshot.origin_timeouts,
        stale_hits: snapshot.stale_hits,
        revalidations: snapshot.revalidations,
    };
    (row, latency_row(&handle, threads))
}

/// Drains every non-empty histogram cell from the handle's observer
/// into one serializable latency row.
fn latency_row(handle: &ProxyHandle, threads: usize) -> LatencyPercentilesRow {
    let obs = handle.observer();
    let phases = Phase::ALL
        .iter()
        .flat_map(|&phase| {
            PathClass::ALL.iter().filter_map(move |&path| {
                let snap = obs.phase_histogram(phase, path).snapshot();
                (snap.count() > 0).then(|| PhasePercentiles {
                    phase: phase.label().to_string(),
                    path: path.label().to_string(),
                    summary: LatencySummary::from_snapshot(&snap),
                })
            })
        })
        .collect();
    let outcomes = OutcomeClass::ALL
        .iter()
        .filter_map(|&class| {
            let snap = obs.outcome_histogram(class).snapshot();
            (snap.count() > 0).then(|| OutcomePercentiles {
                class: class.label().to_string(),
                summary: LatencySummary::from_snapshot(&snap),
            })
        })
        .collect();
    LatencyPercentilesRow {
        threads,
        phases,
        outcomes,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
pub(crate) fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn sweep_is_powers_of_two_capped_at_max() {
        assert_eq!(thread_sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(thread_sweep(1), vec![1]);
        assert_eq!(thread_sweep(0), vec![1]);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.99), 4.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    /// The acceptance bar for the concurrent runtime: with origin latency
    /// in the loop, eight clients must outrun one — their origin waits
    /// overlap — and the replay must stay correct (checked separately in
    /// the fp-trace oracle test).
    #[test]
    fn eight_clients_beat_one() {
        let exp = Experiment::prepare(Scale {
            objects: 10_000,
            queries: 120,
            seed: 21,
        });
        let t = exp.throughput(&[1, 8], Duration::from_millis(5));
        let (one, eight) = (&t.rows[0], &t.rows[1]);
        assert!(
            eight.qps > one.qps,
            "8 clients ({:.1} qps) must beat 1 client ({:.1} qps)",
            eight.qps,
            one.qps
        );
        // Both replays answer every query.
        assert_eq!(one.coalesced, 0, "no coalescing with a single client");
        assert!(eight.in_flight_peak >= 1);
        // The coalescer never multiplies origin work.
        assert!(eight.origin_fetches <= one.origin_fetches + eight.duplicate_fetches_avoided);
        // Hit-latency accounting: the trace repeats queries, so both
        // replays serve cache hits, and the percentiles are ordered.
        for r in [one, eight] {
            assert!(r.hits > 0, "replay must produce cache hits");
            assert!(r.hit_p99_ms >= r.hit_p50_ms);
            assert!(r.rows_scanned > 0, "hits evaluate cached rows");
        }
        // The histogram-backed columns and the percentile artifact are
        // populated: every client count records phases and outcomes.
        assert_eq!(t.latency.len(), t.rows.len());
        for (r, l) in t.rows.iter().zip(&t.latency) {
            assert!(r.p999_ms >= r.p90_ms, "quantiles must be ordered");
            assert!(!l.phases.is_empty(), "phases recorded");
            assert!(!l.outcomes.is_empty(), "outcomes recorded");
            assert!(
                l.phases.iter().any(|p| p.phase == "origin_fetch"),
                "origin fetches must be observed"
            );
            // Every replayed query records exactly one outcome sample.
            let total: u64 = l.outcomes.iter().map(|o| o.summary.count).sum();
            assert_eq!(total, 120, "one outcome sample per replayed query");
        }
    }
}
