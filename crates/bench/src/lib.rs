//! The experiment harness: everything needed to regenerate the paper's
//! tables and figures (see `src/bin/repro.rs` and EXPERIMENTS.md).
//!
//! One [`Experiment`] = one synthetic SkyServer + one calibrated Radial
//! trace. The functions below run the paper's configurations over it:
//!
//! * [`Experiment::trace_stats`] — §4.1 trace census (17 % / 34 % / 9 %).
//! * [`Experiment::table1`] — cache efficiency of AC vs PC across cache
//!   sizes 1/6, 1/3, 1/2, 1 × total result size.
//! * [`Experiment::figure5`] — response time of ACR / ACNR / PC / NC
//!   across the same cache sizes.
//! * [`Experiment::figure6`] — response time of the three active schemes
//!   with an unlimited cache and the array description.
//! * [`Experiment::compaction`] — region-containment compaction ablation.
//! * [`Experiment::throughput`] — extension: multi-client throughput over
//!   the concurrent runtime (see [`throughput`]).
//! * [`Experiment::edge_concurrency`] — extension: qps and tail latency of
//!   the nonblocking edge server under 64–1024 concurrent keep-alive
//!   connections (see [`edge`]).
//! * [`Experiment::chaos`] — extension: availability under a mid-trace
//!   origin outage with the resilience layer engaged (see [`chaos`]).
//! * [`Experiment::budget_sweep`] — extension: hit rate vs RAM budget,
//!   RAM-only vs the disk-backed tier at equal RAM (see [`tiered`]).
//! * [`Experiment::cluster`] — extension: fleet-size sweep and mid-trace
//!   peer kill over the slot-sharded proxy cluster (see [`cluster`]).
//! * [`Experiment::torture`] — extension: seeded whole-stack torture runs
//!   injecting origin, network, storage, and process faults at once while
//!   invariant oracles watch every answer (see [`torture`]).
//! * [`Experiment::adaptive`] — extension: adaptive scheme selection vs
//!   every static scheme under cost-aware replacement, on the standard
//!   and a Zipf-skewed trace, each answer checked against a no-cache
//!   oracle (see [`adaptive`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adaptive;
pub mod chaos;
pub mod cluster;
pub mod edge;
pub mod throughput;
pub mod tiered;
pub mod torture;

pub use adaptive::{
    AdaptiveBench, AdaptiveRow, AdaptiveSection, ADAPTIVE_CACHE_FRACTION, ADAPTIVE_HIT_TOLERANCE,
    ADAPTIVE_ORIGIN_TOLERANCE,
};
pub use chaos::ChaosReport;
pub use cluster::{fleet_sweep, ClusterBench, ClusterRow, KillReport, FLEET_SIZES};
pub use edge::{conn_sweep, EdgeConcurrency, EdgeConcurrencyRow, EDGE_WORKERS};
pub use throughput::{
    thread_sweep, HitLatencyReport, HitLatencyRow, Throughput, ThroughputRow, THROUGHPUT_SHARDS,
};
pub use tiered::{BudgetSweep, BudgetSweepRow, BUDGET_FRACTIONS};
pub use torture::{TortureBench, TortureRow, TortureRun, AVAILABILITY_FLOOR, SEED_CORPUS};

use fp_skyserver::{Catalog, CatalogSpec, SkySite};
use fp_trace::{classify_trace, Rbe, Trace, TraceMix, TraceSpec};
use funcproxy::cache::{DescriptionKind, Replacement};
use funcproxy::metrics::TraceReport;
use funcproxy::template::TemplateManager;
use funcproxy::{CostModel, FunctionProxy, ProxyConfig, Scheme, SiteOrigin};
use serde::Serialize;
use std::sync::Arc;

/// The cache-size fractions of Table 1 / Figure 5.
pub const CACHE_FRACTIONS: [(f64, &str); 4] = [
    (1.0 / 6.0, "1/6"),
    (1.0 / 3.0, "1/3"),
    (0.5, "1/2"),
    (1.0, "1"),
];

/// Experiment scale parameters.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Catalog object count (paper: terabytes of SDSS; here synthetic).
    pub objects: usize,
    /// Trace length (paper: 11,323 logged queries, 10,000 replayed).
    pub queries: usize,
    /// Seed for catalog and trace.
    pub seed: u64,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            objects: 150_000,
            queries: 2_000,
            seed: 0x5D55,
        }
    }
}

impl Scale {
    /// A quick scale for smoke tests and CI.
    pub fn small() -> Self {
        Scale {
            objects: 30_000,
            queries: 300,
            seed: 11,
        }
    }
}

/// A prepared experiment: site, trace, and the trace's total result size.
pub struct Experiment {
    /// The origin site.
    pub site: SkySite,
    /// The replayed trace.
    pub trace: Trace,
    /// Total serialized size of the distinct query results — the "total
    /// result size of the query trace" the cache fractions are taken of.
    pub total_result_bytes: usize,
    /// Cost model used in all runs.
    pub cost: CostModel,
}

impl Experiment {
    /// Builds the experiment: generate catalog + trace, then measure the
    /// total result size by running each *distinct* query once.
    pub fn prepare(scale: Scale) -> Experiment {
        let catalog = Catalog::generate(&CatalogSpec {
            seed: scale.seed,
            objects: scale.objects,
            ..CatalogSpec::default()
        });
        let site = SkySite::new(catalog);
        let trace = TraceSpec {
            seed: scale.seed ^ 0x7ACE,
            queries: scale.queries,
            ..TraceSpec::default()
        }
        .generate();

        // Distinct results only: repeated (exact-match) queries share one
        // cached file, mirroring "nearly 300MB XML files" for 11k queries.
        let mut seen = std::collections::HashSet::new();
        let mut total = 0usize;
        let mut proxy = make_proxy(
            &site,
            Scheme::NoCache,
            DescriptionKind::Array,
            None,
            CostModel::free(),
        );
        let rbe = Rbe::default();
        for q in &trace.queries {
            if seen.insert(q.query_string()) {
                let response = proxy
                    .handle_form(&rbe.form_path, &q.form_fields())
                    .expect("trace queries execute");
                total += response.result.xml_bytes();
            }
        }
        site.reset_load();

        Experiment {
            site,
            trace,
            total_result_bytes: total,
            cost: CostModel::default(),
        }
    }

    /// §4.1: the trace relationship census.
    pub fn trace_stats(&self) -> TraceMix {
        classify_trace(&self.trace)
    }

    /// Runs one (scheme, description, capacity) configuration.
    pub fn run(
        &self,
        scheme: Scheme,
        description: DescriptionKind,
        capacity: Option<usize>,
    ) -> TraceReport {
        let mut proxy = make_proxy(&self.site, scheme, description, capacity, self.cost);
        Rbe::default()
            .run(&mut proxy, &self.trace)
            .expect("trace replays")
    }

    /// Capacity in bytes for a cache-size fraction.
    pub fn capacity_for(&self, fraction: f64) -> usize {
        (self.total_result_bytes as f64 * fraction).ceil() as usize
    }

    /// **Table 1**: average cache efficiency of active (full semantic) and
    /// passive caching across the four cache sizes.
    pub fn table1(&self) -> Table1 {
        let mut rows = Vec::new();
        for (fraction, label) in CACHE_FRACTIONS {
            let cap = Some(self.capacity_for(fraction));
            let ac = self.run(Scheme::FullSemantic, DescriptionKind::Array, cap);
            let pc = self.run(Scheme::Passive, DescriptionKind::Array, cap);
            rows.push(Table1Row {
                cache_size: label,
                ac: ac.avg_cache_efficiency,
                pc: pc.avg_cache_efficiency,
            });
        }
        Table1 { rows }
    }

    /// **Figure 5**: average response time of ACR, ACNR, PC, NC across the
    /// four cache sizes (the paper replays the first 10,000 queries; we
    /// replay the whole scaled-down trace).
    pub fn figure5(&self) -> Figure5 {
        let mut rows = Vec::new();
        for (fraction, label) in CACHE_FRACTIONS {
            let cap = Some(self.capacity_for(fraction));
            rows.push(Figure5Row {
                cache_size: label,
                acr_ms: self
                    .run(Scheme::FullSemantic, DescriptionKind::RTree, cap)
                    .avg_response_ms,
                acnr_ms: self
                    .run(Scheme::FullSemantic, DescriptionKind::Array, cap)
                    .avg_response_ms,
                pc_ms: self
                    .run(Scheme::Passive, DescriptionKind::Array, cap)
                    .avg_response_ms,
                nc_ms: self
                    .run(Scheme::NoCache, DescriptionKind::Array, cap)
                    .avg_response_ms,
            });
        }
        Figure5 { rows }
    }

    /// **Figure 6**: average response time of the three active schemes,
    /// unlimited cache, array description — plus their efficiencies (the
    /// paper quotes 0.593 / 0.544 / 0.511).
    pub fn figure6(&self) -> Figure6 {
        let schemes = [
            ("First", Scheme::FullSemantic),
            ("Second", Scheme::RegionContainment),
            ("Third", Scheme::ContainmentOnly),
        ];
        let rows = schemes
            .map(|(label, scheme)| {
                let r = self.run(scheme, DescriptionKind::Array, None);
                Figure6Row {
                    scheme: label,
                    response_ms: r.avg_response_ms,
                    efficiency: r.avg_cache_efficiency,
                }
            })
            .to_vec();
        Figure6 { rows }
    }

    /// Ablation (extension): cache-efficiency impact of the replacement
    /// policy under a tight (1/6) cache budget, where victim selection
    /// actually matters.
    pub fn replacement(&self) -> ReplacementAblation {
        let cap = Some(self.capacity_for(1.0 / 6.0));
        let rows = Replacement::all()
            .iter()
            .map(|&policy| {
                let mut proxy = FunctionProxy::new(
                    TemplateManager::with_sky_defaults(),
                    Arc::new(SiteOrigin::new(self.site.clone())),
                    ProxyConfig::default()
                        .with_scheme(Scheme::FullSemantic)
                        .with_capacity(cap)
                        .with_cost(self.cost)
                        .with_replacement(policy),
                );
                let report = Rbe::default()
                    .run(&mut proxy, &self.trace)
                    .expect("trace replays");
                let stats = proxy.cache_stats();
                ReplacementRow {
                    policy: policy.to_string(),
                    efficiency: report.avg_cache_efficiency,
                    response_ms: report.avg_response_ms,
                    evictions: stats.evictions,
                }
            })
            .collect();
        ReplacementAblation { rows }
    }

    /// §4.2's "cache checking time with or without the R-tree index is
    /// always under 100 milliseconds": measured mean relationship-check
    /// time per query for both description implementations.
    pub fn checktime(&self) -> CheckTime {
        let acnr = self.run(Scheme::FullSemantic, DescriptionKind::Array, None);
        let acr = self.run(Scheme::FullSemantic, DescriptionKind::RTree, None);
        CheckTime {
            acnr_check_ms: acnr.avg_check_ms,
            acr_check_ms: acr.avg_check_ms,
        }
    }

    /// Ablation (extension): sweep of the overlap coverage threshold —
    /// the §3.2 remainder-query tradeoff made tunable.
    pub fn coverage(&self) -> CoverageAblation {
        let rows = [0.0, 0.25, 0.5, 0.75, 1.01]
            .map(|threshold| {
                let mut proxy = FunctionProxy::new(
                    TemplateManager::with_sky_defaults(),
                    Arc::new(SiteOrigin::new(self.site.clone())),
                    ProxyConfig::default()
                        .with_scheme(Scheme::FullSemantic)
                        .with_cost(self.cost)
                        .with_min_overlap_coverage(threshold),
                );
                let report = Rbe::default()
                    .run(&mut proxy, &self.trace)
                    .expect("trace replays");
                CoverageRow {
                    threshold,
                    efficiency: report.avg_cache_efficiency,
                    response_ms: report.avg_response_ms,
                    overlap_answers: report.counts[3],
                }
            })
            .to_vec();
        CoverageAblation { rows }
    }

    /// Ablation: cache entry counts with and without region-containment
    /// compaction (Second vs Third), supporting the paper's §3.2 claim
    /// that region containment "reduces the number of cached queries".
    pub fn compaction(&self) -> Compaction {
        let run = |scheme| {
            let mut proxy = make_proxy(&self.site, scheme, DescriptionKind::Array, None, self.cost);
            Rbe::default()
                .run(&mut proxy, &self.trace)
                .expect("trace replays");
            proxy.cache_stats()
        };
        let with = run(Scheme::RegionContainment);
        let without = run(Scheme::ContainmentOnly);
        Compaction {
            entries_with: with.entries,
            compactions: with.compactions,
            entries_without: without.entries,
        }
    }
}

/// Builds one configured proxy over a (shared) site.
pub fn make_proxy(
    site: &SkySite,
    scheme: Scheme,
    description: DescriptionKind,
    capacity: Option<usize>,
    cost: CostModel,
) -> FunctionProxy {
    FunctionProxy::new(
        TemplateManager::with_sky_defaults(),
        Arc::new(SiteOrigin::new(site.clone())),
        ProxyConfig::default()
            .with_scheme(scheme)
            .with_description(description)
            .with_capacity(capacity)
            .with_cost(cost),
    )
}

/// One Table 1 row.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Cache-size label ("1/6" … "1").
    pub cache_size: &'static str,
    /// Active-caching average cache efficiency.
    pub ac: f64,
    /// Passive-caching average cache efficiency.
    pub pc: f64,
}

/// Table 1 of the paper.
#[derive(Debug, Clone, Serialize)]
pub struct Table1 {
    /// Rows per cache size.
    pub rows: Vec<Table1Row>,
}

impl std::fmt::Display for Table1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Table 1. Average cache efficiency of AC and PC")?;
        write!(f, "  Cache Size |")?;
        for r in &self.rows {
            write!(f, " {:>6}", r.cache_size)?;
        }
        writeln!(f)?;
        write!(f, "  AC         |")?;
        for r in &self.rows {
            write!(f, " {:>6.3}", r.ac)?;
        }
        writeln!(f)?;
        write!(f, "  PC         |")?;
        for r in &self.rows {
            write!(f, " {:>6.3}", r.pc)?;
        }
        writeln!(f)
    }
}

/// One Figure 5 series point.
#[derive(Debug, Clone, Serialize)]
pub struct Figure5Row {
    /// Cache-size label.
    pub cache_size: &'static str,
    /// Active caching with R-tree description.
    pub acr_ms: f64,
    /// Active caching with array description.
    pub acnr_ms: f64,
    /// Passive caching.
    pub pc_ms: f64,
    /// No cache (tunneling proxy).
    pub nc_ms: f64,
}

/// Figure 5 of the paper.
#[derive(Debug, Clone, Serialize)]
pub struct Figure5 {
    /// Rows per cache size.
    pub rows: Vec<Figure5Row>,
}

impl std::fmt::Display for Figure5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Figure 5. Average response time (ms)")?;
        writeln!(f, "  Cache Size |    ACR |   ACNR |     PC |     NC")?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>10} | {:>6.0} | {:>6.0} | {:>6.0} | {:>6.0}",
                r.cache_size, r.acr_ms, r.acnr_ms, r.pc_ms, r.nc_ms
            )?;
        }
        Ok(())
    }
}

/// One Figure 6 bar.
#[derive(Debug, Clone, Serialize)]
pub struct Figure6Row {
    /// Scheme label (First / Second / Third).
    pub scheme: &'static str,
    /// Average response time, ms.
    pub response_ms: f64,
    /// Average cache efficiency.
    pub efficiency: f64,
}

/// Figure 6 of the paper.
#[derive(Debug, Clone, Serialize)]
pub struct Figure6 {
    /// One row per active scheme.
    pub rows: Vec<Figure6Row>,
}

impl std::fmt::Display for Figure6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Figure 6. Average response time of active caching schemes (unlimited cache, array description)"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>6}: {:>6.0} ms (cache efficiency {:.3})",
                r.scheme, r.response_ms, r.efficiency
            )?;
        }
        Ok(())
    }
}

/// One replacement-ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct ReplacementRow {
    /// Policy name.
    pub policy: String,
    /// Average cache efficiency over the trace.
    pub efficiency: f64,
    /// Average response time, ms.
    pub response_ms: f64,
    /// Evictions performed.
    pub evictions: usize,
}

/// Replacement-policy ablation (extension experiment).
#[derive(Debug, Clone, Serialize)]
pub struct ReplacementAblation {
    /// One row per policy.
    pub rows: Vec<ReplacementRow>,
}

impl std::fmt::Display for ReplacementAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Replacement-policy ablation (full semantic caching, 1/6 cache size)"
        )?;
        writeln!(
            f,
            "  policy          | efficiency | avg resp ms | evictions"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:<15} | {:>10.3} | {:>11.0} | {:>9}",
                r.policy, r.efficiency, r.response_ms, r.evictions
            )?;
        }
        Ok(())
    }
}

/// Cache-check timing comparison (the paper's <100 ms claim).
#[derive(Debug, Clone, Serialize)]
pub struct CheckTime {
    /// Mean check time with the array description, ms.
    pub acnr_check_ms: f64,
    /// Mean check time with the R-tree description, ms.
    pub acr_check_ms: f64,
}

impl std::fmt::Display for CheckTime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Cache relationship-checking time (paper: always < 100 ms)"
        )?;
        writeln!(
            f,
            "  ACNR (array):  {:.4} ms mean per query",
            self.acnr_check_ms
        )?;
        writeln!(
            f,
            "  ACR  (R-tree): {:.4} ms mean per query",
            self.acr_check_ms
        )
    }
}

/// One coverage-threshold ablation row.
#[derive(Debug, Clone, Serialize)]
pub struct CoverageRow {
    /// Minimum coverage required to take the overlap path.
    pub threshold: f64,
    /// Average cache efficiency.
    pub efficiency: f64,
    /// Average response time, ms.
    pub response_ms: f64,
    /// Queries answered via probe + remainder.
    pub overlap_answers: usize,
}

/// Coverage-threshold ablation (extension experiment).
#[derive(Debug, Clone, Serialize)]
pub struct CoverageAblation {
    /// One row per threshold.
    pub rows: Vec<CoverageRow>,
}

impl std::fmt::Display for CoverageAblation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Overlap coverage-threshold ablation (full semantic caching, unlimited cache)"
        )?;
        writeln!(
            f,
            "  threshold | efficiency | avg resp ms | overlap answers"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>9.2} | {:>10.3} | {:>11.0} | {:>15}",
                r.threshold, r.efficiency, r.response_ms, r.overlap_answers
            )?;
        }
        Ok(())
    }
}

/// Compaction ablation output.
#[derive(Debug, Clone, Serialize)]
pub struct Compaction {
    /// Cache entries at end of trace with region containment (Second).
    pub entries_with: usize,
    /// Compactions performed by Second.
    pub compactions: usize,
    /// Cache entries at end of trace without (Third).
    pub entries_without: usize,
}

impl std::fmt::Display for Compaction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "Region-containment compaction (unlimited cache)")?;
        writeln!(
            f,
            "  Second (with compaction):    {} entries at end of trace, {} entries compacted away",
            self.entries_with, self.compactions
        )?;
        writeln!(
            f,
            "  Third  (without compaction): {} entries at end of trace",
            self.entries_without
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_experiment_produces_the_paper_shapes() {
        let exp = Experiment::prepare(Scale::small());
        assert!(exp.total_result_bytes > 0);

        // Census: close to the calibration targets.
        let mix = exp.trace_stats();
        let [e, c, o, _] = mix.fractions();
        assert!((e - 0.17).abs() < 0.08, "exact {e}");
        assert!((c - 0.34).abs() < 0.10, "contained {c}");
        assert!(o < 0.2, "overlap {o}");

        // Table 1 shape: AC efficiency > PC efficiency at full size, and
        // both non-decreasing from smallest to largest cache (allowing
        // small noise at this scale).
        let t1 = exp.table1();
        let last = t1.rows.last().unwrap();
        assert!(last.ac > last.pc, "AC {} vs PC {}", last.ac, last.pc);
        assert!(last.ac > 0.3);

        // Figure 5 shape: NC slowest, AC fastest at full cache size.
        let f5 = exp.figure5();
        let last = f5.rows.last().unwrap();
        assert!(
            last.nc_ms > last.pc_ms,
            "NC {} vs PC {}",
            last.nc_ms,
            last.pc_ms
        );
        assert!(
            last.pc_ms > last.acnr_ms,
            "PC {} vs ACNR {}",
            last.pc_ms,
            last.acnr_ms
        );

        // Figure 6 shape: Third and Second have slightly lower efficiency
        // than First.
        let f6 = exp.figure6();
        assert_eq!(f6.rows.len(), 3);
        assert!(f6.rows[0].efficiency >= f6.rows[2].efficiency);

        // Compaction reduces entry counts.
        let comp = exp.compaction();
        assert!(comp.entries_with <= comp.entries_without);
    }
}
