//! Hit-rate-vs-RAM-budget sweep: RAM-only vs tiered caching at equal RAM.
//!
//! The disk tier's pitch is that a RAM budget stops being a hit-rate
//! ceiling: entries the budget would have evicted demote to the mmap'd
//! slab instead and keep answering exact/contained hits from the page
//! cache. This harness measures that claim directly — for each cache
//! budget it replays the calibrated Radial trace twice through the
//! concurrent runtime, once RAM-only (over-budget entries are evicted)
//! and once tiered (they demote), and compares hit rates at *equal RAM*.
//! Disk-tier hit latency is reported next to RAM-tier hit latency so the
//! "within ~10× of a RAM hit" expectation is checkable run over run, and
//! each pair of runs cross-checks per-query row counts: the tier must
//! never change an answer, only where it is served from.

use crate::{Experiment, THROUGHPUT_SHARDS};
use fp_trace::Rbe;
use funcproxy::metrics::{Outcome, QueryMetrics};
use funcproxy::template::TemplateManager;
use funcproxy::{CostModel, ProxyConfig, ProxyHandle, Scheme, SiteOrigin};
use serde::Serialize;
use std::sync::Arc;

/// RAM-budget fractions swept (of the trace's total result size). The
/// interesting regime is a budget well under the working set; at 1×
/// nothing demotes and the two configurations coincide.
pub const BUDGET_FRACTIONS: [(f64, &str); 3] =
    [(1.0 / 6.0, "1/6"), (1.0 / 3.0, "1/3"), (0.5, "1/2")];

/// One budget point: RAM-only vs tiered at the same RAM budget.
#[derive(Debug, Clone, Serialize)]
pub struct BudgetSweepRow {
    /// Budget label ("1/6" … "1/2" of total result size).
    pub budget: &'static str,
    /// The RAM budget in bytes (identical for both runs).
    pub budget_bytes: usize,
    /// Fraction of queries answered wholly from cache, RAM-only run.
    pub ram_only_hit_rate: f64,
    /// Fraction of queries answered wholly from cache, tiered run
    /// (RAM hits + disk-tier hits).
    pub tiered_hit_rate: f64,
    /// Median latency of RAM-resident hits in the tiered run, ms.
    pub ram_hit_p50_ms: f64,
    /// 99th-percentile latency of RAM-resident hits in the tiered run, ms.
    pub ram_hit_p99_ms: f64,
    /// Queries served from the disk tier (mmap'd slab) in the tiered run.
    pub disk_hits: usize,
    /// Median latency of those disk-tier hits, ms.
    pub disk_hit_p50_ms: f64,
    /// 99th-percentile latency of those disk-tier hits, ms.
    pub disk_hit_p99_ms: f64,
    /// Entries demoted RAM → slab during the tiered run.
    pub demotions: usize,
    /// Entries promoted slab → RAM after disk hits.
    pub promotions: usize,
    /// Entries living only on the disk tier at end of trace.
    pub disk_entries: usize,
    /// Slab file bytes at end of trace.
    pub slab_bytes: usize,
    /// Slab compaction passes triggered by dead bytes.
    pub slab_compactions: usize,
    /// Whether every query returned the same row count in both runs —
    /// the tier changes where answers come from, never the answers.
    pub rows_agree: bool,
}

/// The `hit-rate vs budget` experiment: one row per RAM budget.
#[derive(Debug, Clone, Serialize)]
pub struct BudgetSweep {
    /// Concurrent client threads used for every replay.
    pub threads: usize,
    /// Rows, ordered by ascending budget.
    pub rows: Vec<BudgetSweepRow>,
}

impl Experiment {
    /// Replays the trace at each budget fraction twice — RAM-only and
    /// tiered — through a fresh shared handle with `threads` concurrent
    /// clients, and pairs the results at equal RAM.
    pub fn budget_sweep(&self, threads: usize) -> BudgetSweep {
        let rows = BUDGET_FRACTIONS
            .iter()
            .map(|&(fraction, label)| {
                let budget = self.capacity_for(fraction);
                let (ram_metrics, _) = self.replay_budget(budget, None, threads);
                let slab_dir = sweep_dir(label);
                let (tier_metrics, tier_stats) =
                    self.replay_budget(budget, Some(&slab_dir), threads);
                let _ = std::fs::remove_dir_all(&slab_dir);

                let total = ram_metrics.len().max(1) as f64;
                let ram_hits: Vec<f64> = hit_latencies(&tier_metrics, false);
                let disk_hits: Vec<f64> = hit_latencies(&tier_metrics, true);
                let rows_agree = ram_metrics
                    .iter()
                    .zip(&tier_metrics)
                    .all(|(a, b)| a.rows_total == b.rows_total);
                BudgetSweepRow {
                    budget: label,
                    budget_bytes: budget,
                    ram_only_hit_rate: count_hits(&ram_metrics) as f64 / total,
                    tiered_hit_rate: count_hits(&tier_metrics) as f64 / total,
                    ram_hit_p50_ms: crate::throughput::percentile(&ram_hits, 0.50),
                    ram_hit_p99_ms: crate::throughput::percentile(&ram_hits, 0.99),
                    disk_hits: disk_hits.len(),
                    disk_hit_p50_ms: crate::throughput::percentile(&disk_hits, 0.50),
                    disk_hit_p99_ms: crate::throughput::percentile(&disk_hits, 0.99),
                    demotions: tier_stats.demotions,
                    promotions: tier_stats.promotions,
                    disk_entries: tier_stats.disk_entries,
                    slab_bytes: tier_stats.slab_bytes,
                    slab_compactions: tier_stats.slab_compactions,
                    rows_agree,
                }
            })
            .collect();
        BudgetSweep { threads, rows }
    }

    /// One replay at a fixed RAM budget, optionally with the disk tier
    /// attached. Returns per-query metrics (trace order) and the final
    /// cache statistics, after quiescing background promotions.
    fn replay_budget(
        &self,
        budget: usize,
        slab_dir: Option<&std::path::Path>,
        threads: usize,
    ) -> (Vec<QueryMetrics>, funcproxy::cache::CacheStats) {
        let mut config = ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_capacity(Some(budget))
            .with_cost(CostModel::free());
        if let Some(dir) = slab_dir {
            config = config.with_tier(dir.to_path_buf());
        }
        let handle = ProxyHandle::with_shards(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(self.site.clone())),
            config,
            THROUGHPUT_SHARDS,
        );
        // The bytes path (`handle_form_xml`) is what the HTTP front ends
        // serve through — RAM hits splice pre-serialized XML, disk hits
        // splice it straight out of the mmap — so the sweep measures the
        // zero-copy serve latencies, not the tuple-materializing row path.
        let metrics = Rbe::default()
            .replay_shared_xml(&handle, &self.trace, threads)
            .expect("trace replays");
        handle.quiesce_revalidations();
        let stats = handle.cache_stats();
        (metrics, stats)
    }
}

/// Queries answered wholly from cache (exact + contained, either tier).
fn count_hits(metrics: &[QueryMetrics]) -> usize {
    metrics
        .iter()
        .filter(|m| matches!(m.outcome, Outcome::Exact | Outcome::Contained))
        .count()
}

/// Ascending-sorted proxy latencies of cache hits, split by serving tier.
fn hit_latencies(metrics: &[QueryMetrics], disk: bool) -> Vec<f64> {
    let mut out: Vec<f64> = metrics
        .iter()
        .filter(|m| matches!(m.outcome, Outcome::Exact | Outcome::Contained))
        .filter(|m| m.disk_hit == disk)
        .map(|m| m.proxy_ms)
        .collect();
    out.sort_by(f64::total_cmp);
    out
}

/// A fresh per-process slab directory for one sweep point.
fn sweep_dir(label: &str) -> std::path::PathBuf {
    let mut dir = std::env::temp_dir();
    let tag: String = label.chars().filter(char::is_ascii_alphanumeric).collect();
    dir.push(format!("fp_bench_tier_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

impl std::fmt::Display for BudgetSweep {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Hit rate vs RAM budget ({} cache shards, {} clients; tiered = same RAM + mmap'd slab)",
            THROUGHPUT_SHARDS, self.threads
        )?;
        writeln!(
            f,
            "  budget | ram-only hit% | tiered hit% | ram p50 | ram p99 | disk hits | disk p50 | disk p99 | demoted | promoted | slab KB | rows agree"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>6} | {:>13.1} | {:>11.1} | {:>7.3} | {:>7.3} | {:>9} | {:>8.3} | {:>8.3} | {:>7} | {:>8} | {:>7.1} | {}",
                r.budget,
                r.ram_only_hit_rate * 100.0,
                r.tiered_hit_rate * 100.0,
                r.ram_hit_p50_ms,
                r.ram_hit_p99_ms,
                r.disk_hits,
                r.disk_hit_p50_ms,
                r.disk_hit_p99_ms,
                r.demotions,
                r.promotions,
                r.slab_bytes as f64 / 1024.0,
                r.rows_agree,
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    /// The tier's acceptance bar at bench level: under a tight budget
    /// the tiered configuration must demote instead of evict, serve
    /// disk hits, sustain at least the RAM-only hit rate, and agree on
    /// every answer's row count.
    #[test]
    fn tiered_sustains_hit_rate_at_equal_ram() {
        let exp = Experiment::prepare(Scale {
            objects: 20_000,
            queries: 200,
            seed: 33,
        });
        let sweep = BudgetSweep {
            threads: 4,
            rows: vec![{
                let budget = exp.capacity_for(1.0 / 6.0);
                let (ram, _) = exp.replay_budget(budget, None, 4);
                let dir = sweep_dir("test16");
                let (tier, stats) = exp.replay_budget(budget, Some(&dir), 4);
                let _ = std::fs::remove_dir_all(&dir);
                assert!(stats.demotions > 0, "tight budget must demote");
                assert!(
                    tier.iter().any(|m| m.disk_hit),
                    "some hits must be served from the slab"
                );
                assert!(
                    count_hits(&tier) >= count_hits(&ram),
                    "tiered hits {} must sustain RAM-only hits {}",
                    count_hits(&tier),
                    count_hits(&ram)
                );
                for (i, (a, b)) in ram.iter().zip(&tier).enumerate() {
                    assert_eq!(a.rows_total, b.rows_total, "query {i} row count");
                }
                BudgetSweepRow {
                    budget: "1/6",
                    budget_bytes: budget,
                    ram_only_hit_rate: count_hits(&ram) as f64 / ram.len() as f64,
                    tiered_hit_rate: count_hits(&tier) as f64 / tier.len() as f64,
                    ram_hit_p50_ms: 0.0,
                    ram_hit_p99_ms: 0.0,
                    disk_hits: tier.iter().filter(|m| m.disk_hit).count(),
                    disk_hit_p50_ms: 0.0,
                    disk_hit_p99_ms: 0.0,
                    demotions: stats.demotions,
                    promotions: stats.promotions,
                    disk_entries: stats.disk_entries,
                    slab_bytes: stats.slab_bytes,
                    slab_compactions: stats.slab_compactions,
                    rows_agree: true,
                }
            }],
        };
        // The Display table renders without panicking.
        assert!(!format!("{sweep}").is_empty());
    }
}
