//! Availability under origin failure: the chaos experiment behind
//! `repro --chaos`.
//!
//! The paper's evaluation assumes the origin site always answers; a
//! deployed proxy cannot. This harness replays the calibrated Radial
//! trace through a [`ProxyHandle`] whose origin is wrapped in a
//! [`ChaosOrigin`], with a full outage covering the middle third of the
//! trace and a burst of latency spikes at the start. Everything runs on
//! a [`MockClock`] — the clock advances a fixed tick per query, the
//! outage window, deadlines, backoff waits and breaker cooldowns all
//! consume that same virtual time, so the run is bit-for-bit
//! deterministic on any machine.
//!
//! The question the report answers: **what fraction of queries does the
//! proxy still answer while its origin is down**, and at what quality?
//! During the outage, exact and contained queries are served from cache
//! as usual; region-containment and overlap queries are served
//! *degraded* (the cached subset of the answer, marked partial); only
//! true disjoint misses fail. Every served row is checked against a
//! no-cache oracle run, so degraded answers are also verified sound
//! (subset) here, not just in the property tests.
//!
//! [`MockClock`]: funcproxy::resilience::MockClock

use crate::Experiment;
use fp_trace::Rbe;
use funcproxy::cache::DescriptionKind;
use funcproxy::metrics::Outcome;
use funcproxy::resilience::{Clock, MockClock};
use funcproxy::template::TemplateManager;
use funcproxy::{
    ChaosOrigin, CostModel, Fault, ProxyConfig, ProxyHandle, ResilienceConfig, Scheme, SiteOrigin,
};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Virtual time that passes between consecutive trace queries.
const TICK: Duration = Duration::from_millis(10);
/// Latency spikes injected before the outage (each exceeds the deadline,
/// so each costs one query and one recorded timeout).
const LATENCY_SPIKES: usize = 2;
/// Cache shards (fixed for determinism, mirroring the throughput runs).
const SHARDS: usize = 8;

/// The resilience policy the chaos run exercises. All durations are in
/// MockClock time.
fn policy() -> ResilienceConfig {
    ResilienceConfig {
        deadline: Some(Duration::from_millis(100)),
        max_retries: 1,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(20),
        backoff_seed: 0xC4A05,
        breaker_threshold: 3,
        breaker_cooldown: Duration::from_millis(200),
    }
}

/// The availability report of one chaos replay.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosReport {
    /// Queries in the trace.
    pub queries: usize,
    /// Queries inside the outage window.
    pub outage_queries: usize,
    /// Queries answered (any outcome, degraded included), whole trace.
    pub answered: usize,
    /// Queries answered inside the outage window.
    pub answered_in_outage: usize,
    /// Of the outage answers, how many were served degraded.
    pub degraded_in_outage: usize,
    /// Queries that failed inside the outage window (disjoint misses
    /// and fast-fails with nothing cached to fall back on).
    pub failed_in_outage: usize,
    /// Queries that failed outside the outage window (the injected
    /// latency spikes).
    pub failed_outside_outage: usize,
    /// Rows served by degraded answers, summed over the trace.
    pub degraded_rows: usize,
    /// Rows the no-cache oracle returns for those same queries — the
    /// denominator of the degraded-completeness fraction.
    pub degraded_oracle_rows: usize,
    /// Every served answer was a subset of (or equal to) the oracle
    /// answer for that query. Soundness holds even under fault
    /// injection; `false` would be a bug.
    pub all_answers_sound: bool,
    /// Fetches whose deadline expired.
    pub origin_timeouts: u64,
    /// Origin retries issued.
    pub origin_retries: u64,
    /// Fetches failed fast by the open breaker.
    pub origin_fast_fails: u64,
    /// Times the breaker opened.
    pub breaker_opens: u64,
    /// Breaker state after the post-outage recovery probe ("closed" if
    /// the proxy healed).
    pub final_breaker_state: &'static str,
    /// Virtual milliseconds between the outage ending and the breaker
    /// observed closed again; `None` if it never re-closed.
    pub breaker_reclose_ms: Option<f64>,
}

/// The compact availability summary `repro --chaos` persists to
/// `BENCH_availability.json`, so successive lifecycle/resilience changes
/// can be compared on fixed axes.
#[derive(Debug, Clone, Serialize)]
pub struct AvailabilityBench {
    /// Queries in the trace.
    pub queries: usize,
    /// Fraction of all queries answered.
    pub availability: f64,
    /// Fraction of outage-window queries still answered.
    pub availability_in_outage: f64,
    /// Of the outage answers, the fraction served degraded.
    pub degraded_hit_rate: f64,
    /// Virtual ms from outage end until the breaker re-closed.
    pub breaker_reclose_ms: Option<f64>,
    /// Times the breaker opened over the run.
    pub breaker_opens: u64,
    /// Every served answer verified as a subset of the oracle answer.
    pub all_answers_sound: bool,
}

impl ChaosReport {
    /// Fraction of all queries answered.
    pub fn availability(&self) -> f64 {
        self.answered as f64 / (self.queries.max(1)) as f64
    }

    /// Fraction of outage-window queries still answered.
    pub fn availability_in_outage(&self) -> f64 {
        if self.outage_queries == 0 {
            return 1.0;
        }
        self.answered_in_outage as f64 / self.outage_queries as f64
    }

    /// Mean completeness of degraded answers: degraded rows served over
    /// the rows a healthy origin would have produced for those queries.
    pub fn degraded_completeness(&self) -> f64 {
        if self.degraded_oracle_rows == 0 {
            return 1.0;
        }
        self.degraded_rows as f64 / self.degraded_oracle_rows as f64
    }

    /// Projects this report onto the persisted benchmark axes.
    pub fn availability_bench(&self) -> AvailabilityBench {
        AvailabilityBench {
            queries: self.queries,
            availability: self.availability(),
            availability_in_outage: self.availability_in_outage(),
            degraded_hit_rate: if self.answered_in_outage == 0 {
                0.0
            } else {
                self.degraded_in_outage as f64 / self.answered_in_outage as f64
            },
            breaker_reclose_ms: self.breaker_reclose_ms,
            breaker_opens: self.breaker_opens,
            all_answers_sound: self.all_answers_sound,
        }
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Availability under origin failure (outage over the middle third of the trace, virtual clock)"
        )?;
        writeln!(
            f,
            "  queries: {} total, {} inside the outage window",
            self.queries, self.outage_queries
        )?;
        writeln!(
            f,
            "  availability: {:.1}% overall, {:.1}% during the outage",
            self.availability() * 100.0,
            self.availability_in_outage() * 100.0
        )?;
        writeln!(
            f,
            "  outage window: {} answered ({} degraded), {} failed (disjoint misses)",
            self.answered_in_outage, self.degraded_in_outage, self.failed_in_outage
        )?;
        writeln!(
            f,
            "  degraded answers: {} rows served of {} a healthy origin would return ({:.1}% complete), all sound subsets: {}",
            self.degraded_rows,
            self.degraded_oracle_rows,
            self.degraded_completeness() * 100.0,
            self.all_answers_sound
        )?;
        writeln!(
            f,
            "  resilience: {} timeouts, {} retries, {} fast-fails, breaker opened {}x, final state: {}",
            self.origin_timeouts,
            self.origin_retries,
            self.origin_fast_fails,
            self.breaker_opens,
            self.final_breaker_state
        )?;
        match self.breaker_reclose_ms {
            Some(ms) => writeln!(
                f,
                "  breaker re-closed {ms:.0} virtual ms after the outage ended"
            ),
            None => writeln!(f, "  breaker never re-closed"),
        }
    }
}

impl Experiment {
    /// Replays the trace with the origin failing mid-trace; see the
    /// module docs for the fault plan and the report semantics.
    pub fn chaos(&self) -> ChaosReport {
        let rbe = Rbe::default();

        // Oracle pass: what every query answers when nothing ever fails
        // and nothing is cached. Keyed by query string, since the trace
        // repeats queries.
        let mut oracle = crate::make_proxy(
            &self.site,
            Scheme::NoCache,
            DescriptionKind::Array,
            None,
            CostModel::free(),
        );
        let mut oracle_rows: HashMap<String, Vec<fp_sqlmini::Value>> = HashMap::new();
        for q in &self.trace.queries {
            oracle_rows.entry(q.query_string()).or_insert_with(|| {
                let response = oracle
                    .handle_form(&rbe.form_path, &q.form_fields())
                    .expect("oracle executes");
                let key_col = response
                    .result
                    .column_index("objID")
                    .expect("radial results carry objID");
                response
                    .result
                    .rows
                    .iter()
                    .map(|r| r[key_col].clone())
                    .collect()
            });
        }
        self.site.reset_load();

        // The chaos replay: outage over the middle third of the virtual
        // timeline, latency spikes on the first origin calls.
        let n = self.trace.len();
        let clock = MockClock::shared();
        let chaos = Arc::new(ChaosOrigin::with_clock(
            Arc::new(SiteOrigin::new(self.site.clone())),
            Arc::clone(&clock) as Arc<dyn Clock>,
        ));
        let outage_start = TICK * (n as u32 / 3);
        let outage_end = TICK * (2 * n as u32 / 3);
        chaos.outage_between(outage_start, outage_end);
        chaos.script(vec![
            Fault::Latency(
                Duration::from_millis(150),
                Box::new(Fault::Healthy)
            );
            LATENCY_SPIKES
        ]);

        let handle = ProxyHandle::with_shards_clocked(
            TemplateManager::with_sky_defaults(),
            Arc::clone(&chaos) as Arc<dyn funcproxy::Origin>,
            ProxyConfig::default()
                .with_scheme(Scheme::FullSemantic)
                .with_cost(CostModel::free())
                .with_resilience(policy()),
            SHARDS,
            Arc::clone(&clock) as Arc<dyn Clock>,
        );

        let mut report = ChaosReport {
            queries: n,
            outage_queries: 0,
            answered: 0,
            answered_in_outage: 0,
            degraded_in_outage: 0,
            failed_in_outage: 0,
            failed_outside_outage: 0,
            degraded_rows: 0,
            degraded_oracle_rows: 0,
            all_answers_sound: true,
            origin_timeouts: 0,
            origin_retries: 0,
            origin_fast_fails: 0,
            breaker_opens: 0,
            final_breaker_state: "none",
            breaker_reclose_ms: None,
        };

        let t0 = clock.now();
        let mut reclosed_at: Option<Duration> = None;
        for q in &self.trace.queries {
            clock.advance(TICK);
            let in_outage = chaos.in_outage();
            report.outage_queries += usize::from(in_outage);
            match handle.handle_form(&rbe.form_path, &q.form_fields()) {
                Ok(response) => {
                    report.answered += 1;
                    report.answered_in_outage += usize::from(in_outage);
                    let oracle = &oracle_rows[&q.query_string()];
                    if !is_subset(&response.result, oracle) {
                        report.all_answers_sound = false;
                    }
                    if response.metrics.degraded {
                        report.degraded_in_outage += usize::from(in_outage);
                        report.degraded_rows += response.result.len();
                        report.degraded_oracle_rows += oracle.len();
                    } else if !matches!(response.metrics.outcome, Outcome::Forwarded)
                        && response.result.len() != oracle.len()
                    {
                        // A non-degraded cache answer must be complete.
                        report.all_answers_sound = false;
                    }
                }
                Err(_) => {
                    if in_outage {
                        report.failed_in_outage += 1;
                    } else {
                        report.failed_outside_outage += 1;
                    }
                }
            }
            // Track when the breaker is first seen closed again after
            // the outage window (virtual time, so deterministic).
            if reclosed_at.is_none() {
                let elapsed = clock.now().duration_since(t0);
                if elapsed > outage_end && handle.runtime_stats().breaker_state == "closed" {
                    reclosed_at = Some(elapsed);
                }
            }
        }

        // Recovery: let the breaker cooldown lapse, then force one
        // origin-bound query (a fresh position no trace query covers) so
        // the half-open probe runs against the healed origin.
        clock.advance(policy().breaker_cooldown + TICK);
        let probe_fields = vec![
            ("ra".to_string(), "10.0".to_string()),
            ("dec".to_string(), "75.0".to_string()),
            ("radius".to_string(), "1.0".to_string()),
        ];
        let _ = handle.handle_form(&rbe.form_path, &probe_fields);

        let snapshot = handle.runtime_stats();
        report.origin_timeouts = snapshot.origin_timeouts;
        report.origin_retries = snapshot.origin_retries;
        report.origin_fast_fails = snapshot.origin_fast_fails;
        report.breaker_opens = snapshot.breaker_opens;
        report.final_breaker_state = snapshot.breaker_state;
        if reclosed_at.is_none() && snapshot.breaker_state == "closed" {
            // Closed by the healing probe, after the trace loop ended.
            reclosed_at = Some(clock.now().duration_since(t0));
        }
        report.breaker_reclose_ms =
            reclosed_at.map(|at| at.saturating_sub(outage_end).as_secs_f64() * 1000.0);
        report
    }
}

/// Whether every key of `result` appears in the oracle's key set.
fn is_subset(result: &fp_skyserver::ResultSet, oracle: &[fp_sqlmini::Value]) -> bool {
    let Some(key_col) = result.column_index("objID") else {
        return result.is_empty();
    };
    result
        .rows
        .iter()
        .all(|r| oracle.iter().any(|v| *v == r[key_col]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    /// The acceptance bar for the fault-tolerant origin layer, end to
    /// end: the proxy keeps answering through a full mid-trace outage,
    /// every answer stays sound, and the breaker heals afterwards.
    #[test]
    fn outage_mid_trace_keeps_the_proxy_answering() {
        let exp = Experiment::prepare(Scale {
            objects: 10_000,
            queries: 150,
            seed: 21,
        });
        let r = exp.chaos();

        assert_eq!(r.queries, 150);
        assert!(r.outage_queries > 30, "outage covers a third of the trace");
        assert!(
            r.answered_in_outage > 0,
            "cache must keep answering during the outage"
        );
        assert!(
            r.availability_in_outage() > r.failed_in_outage as f64 / r.outage_queries.max(1) as f64
                || r.availability_in_outage() > 0.3,
            "outage availability {:.2} too low",
            r.availability_in_outage()
        );
        assert!(r.all_answers_sound, "a served answer exceeded the oracle");
        // The latency spikes show up as timeouts, the outage as breaker
        // activity, and fast-fails prove the breaker shed load instead
        // of hammering the dead origin.
        assert!(r.origin_timeouts >= LATENCY_SPIKES as u64);
        assert!(r.breaker_opens >= 1, "the outage must trip the breaker");
        assert!(r.origin_fast_fails > 0, "the open breaker must shed load");
        assert_eq!(
            r.final_breaker_state, "closed",
            "the breaker must re-close once the origin heals"
        );
        let reclose = r
            .breaker_reclose_ms
            .expect("a healed breaker has a reclose time");
        assert!(
            (0.0..=10_000.0).contains(&reclose),
            "reclose time {reclose} ms out of range"
        );
        let bench = r.availability_bench();
        assert!(bench.availability > 0.0 && bench.availability <= 1.0);
        assert!(bench.degraded_hit_rate <= 1.0);
        // Outside the outage window, the only failures are the scripted
        // latency spikes plus the short post-outage tail where the
        // breaker is still in its last cooldown (at most
        // cooldown / TICK queries before the healing probe runs).
        let cooldown_ticks = (policy().breaker_cooldown.as_millis() / TICK.as_millis()) as usize;
        assert!(
            r.failed_outside_outage >= LATENCY_SPIKES,
            "the latency spikes must fail ({} outside-outage failures)",
            r.failed_outside_outage
        );
        assert!(
            r.failed_outside_outage <= LATENCY_SPIKES + cooldown_ticks,
            "{} outside-outage failures exceeds spikes + cooldown tail",
            r.failed_outside_outage
        );
    }
}
