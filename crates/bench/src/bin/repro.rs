//! `repro` — regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! repro [--objects N] [--queries N] [--seed S] [--threads K] [--json] <experiment>...
//!
//! experiments:
//!   trace-stats   §4.1 relationship census of the Radial trace
//!   table1        Table 1: cache efficiency of AC vs PC across cache sizes
//!   figure5       Figure 5: response time of ACR/ACNR/PC/NC across cache sizes
//!   figure6       Figure 6: response time of the three active schemes
//!   compaction    §3.2 region-containment compaction ablation
//!   replacement   extension: replacement-policy ablation at 1/6 cache size
//!   coverage      extension: overlap coverage-threshold ablation
//!   checktime     §4.2 cache-checking time, array vs R-tree
//!   throughput    extension: multi-client qps/latency over the concurrent
//!                 runtime, sweeping client counts up to --threads (default 8),
//!                 then the tiered and edge sweeps below
//!   tiered        extension: hit rate vs RAM budget — RAM-only vs the
//!                 disk-backed tier at equal RAM, with disk-tier hit latency
//!   edge          extension: qps and tail latency of the nonblocking edge
//!                 server over real sockets, sweeping keep-alive connection
//!                 counts 64, 128, … up to --edge-conns (default 256)
//!   chaos         extension: availability under a mid-trace origin outage
//!                 with deadlines, retries and the circuit breaker engaged
//!                 (`--chaos` is an alias)
//!   cluster       extension: proxy-fleet sweep over 1, 2, 4, … up to
//!                 --nodes (default 8) slot-sharded peers with gossip
//!                 membership, plus a mid-trace peer kill on a 3-node fleet
//!   torture       extension: seeded whole-stack torture runs — origin
//!                 outage, packet loss/delay, an asymmetric partition,
//!                 slab I/O faults and corruption, and a mid-trace
//!                 kill/revive, with soundness/staleness/availability/
//!                 durability oracles. Replays the committed seed corpus;
//!                 with an explicit --seed N, replays exactly that seed
//!                 (byte-deterministically) and prints its event log
//!   adaptive      extension: adaptive scheme selection vs every static
//!                 scheme under cost-aware replacement, on the standard
//!                 and a Zipf-skewed trace, every answer checked against
//!                 a no-cache oracle (`--adaptive` is an alias)
//!   all           everything above
//! ```

use fp_bench::{conn_sweep, fleet_sweep, thread_sweep, Experiment, Scale, SEED_CORPUS};
use std::time::Duration;

fn main() {
    let mut scale = Scale::default();
    let mut seed_set = false;
    let mut json = false;
    let mut threads = 8usize;
    let mut edge_conns = 256usize;
    let mut nodes = 8usize;
    let mut experiments: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--objects" => scale.objects = parse_num(args.next(), "--objects"),
            "--queries" => scale.queries = parse_num(args.next(), "--queries"),
            "--seed" => {
                scale.seed = parse_num(args.next(), "--seed") as u64;
                seed_set = true;
            }
            "--threads" => threads = parse_num(args.next(), "--threads"),
            "--edge-conns" => edge_conns = parse_num(args.next(), "--edge-conns"),
            "--nodes" => nodes = parse_num(args.next(), "--nodes"),
            "--json" => json = true,
            "--chaos" => experiments.push("chaos".to_string()),
            "--adaptive" => experiments.push("adaptive".to_string()),
            "--help" | "-h" => {
                print_usage();
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option `{other}`");
                print_usage();
                std::process::exit(2);
            }
            exp => experiments.push(exp.to_string()),
        }
    }
    if experiments.is_empty() {
        experiments.push("all".to_string());
    }
    let all = experiments.iter().any(|e| e == "all");

    eprintln!(
        "# preparing experiment: {} catalog objects, {} trace queries, seed {}",
        scale.objects, scale.queries, scale.seed
    );
    let exp = Experiment::prepare(scale);
    eprintln!(
        "# total result size of the trace: {:.1} MB ({} bytes)",
        exp.total_result_bytes as f64 / 1e6,
        exp.total_result_bytes
    );

    let want = |name: &str| all || experiments.iter().any(|e| e == name);

    if want("trace-stats") {
        let mix = exp.trace_stats();
        if json {
            println!("{}", serde_json::to_string(&mix).expect("serializes"));
        } else {
            println!("\nSection 4.1 trace census (paper: 17% exact, 34% contained, ~9% overlap)");
            println!("  {mix}");
            println!(
                "  completely answerable from cache: {:.1}% (paper: ~51%)",
                mix.fully_answerable() * 100.0
            );
        }
    }
    if want("table1") {
        let t = exp.table1();
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
    }
    if want("figure5") {
        let t = exp.figure5();
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
    }
    if want("figure6") {
        let t = exp.figure6();
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
    }
    if want("compaction") {
        let t = exp.compaction();
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
    }
    if want("replacement") {
        let t = exp.replacement();
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
    }
    if want("coverage") {
        let t = exp.coverage();
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
    }
    if want("checktime") {
        let t = exp.checktime();
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
    }
    // The budget sweep rides along with `throughput` (its rows are a
    // section of the hit-latency artifact) and runs alone as `tiered`.
    if want("throughput") || want("tiered") {
        let sweep = exp.budget_sweep(threads);
        print_block(
            json,
            &sweep,
            &serde_json::to_string(&sweep).expect("serializes"),
        );
        let t = exp.throughput(&thread_sweep(threads), Duration::from_millis(5));
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
        // Persist the hit-path trajectory (plus the budget sweep) so
        // successive changes to the columnar and disk-tier serve paths
        // can be compared on fixed axes.
        let report = t.hit_latency(&sweep);
        let path = "BENCH_hit_latency.json";
        match std::fs::write(path, serde_json::to_string(&report).expect("serializes")) {
            Ok(()) => eprintln!("# wrote {path}"),
            Err(e) => eprintln!("# could not write {path}: {e}"),
        }
        // Persist the per-phase/per-outcome latency quantiles from the
        // runtime's histograms — the same distributions `/metrics`
        // exposes, on fixed axes for run-over-run comparison.
        let percentiles = t.latency_percentiles();
        let path = "BENCH_latency_percentiles.json";
        match std::fs::write(
            path,
            serde_json::to_string(&percentiles).expect("serializes"),
        ) {
            Ok(()) => eprintln!("# wrote {path}"),
            Err(e) => eprintln!("# could not write {path}: {e}"),
        }
    }
    // The edge sweep rides along with `throughput` (both answer "what
    // does concurrency cost"), and runs alone as `edge`.
    if want("edge") || want("throughput") {
        let t = exp.edge_concurrency(&conn_sweep(edge_conns), Duration::from_millis(5));
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
        // Persist qps + tail latency vs connection count so edge changes
        // can be compared run over run.
        let path = "BENCH_edge_concurrency.json";
        match std::fs::write(path, serde_json::to_string(&t).expect("serializes")) {
            Ok(()) => eprintln!("# wrote {path}"),
            Err(e) => eprintln!("# could not write {path}: {e}"),
        }
    }
    if want("chaos") {
        let t = exp.chaos();
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
        // Persist the availability axes so lifecycle/resilience changes
        // can be compared run over run.
        let bench = t.availability_bench();
        let path = "BENCH_availability.json";
        match std::fs::write(path, serde_json::to_string(&bench).expect("serializes")) {
            Ok(()) => eprintln!("# wrote {path}"),
            Err(e) => eprintln!("# could not write {path}: {e}"),
        }
    }
    if want("torture") {
        // An explicit --seed narrows the run to exactly that seed (the
        // byte-deterministic replay path); otherwise the committed
        // regression corpus runs.
        let t = if seed_set {
            let run = exp.torture(scale.seed);
            if !json {
                println!("\n# torture event log, seed {}", scale.seed);
                for line in &run.events {
                    println!("{line}");
                }
            }
            fp_bench::TortureBench {
                rows: vec![run.row],
            }
        } else {
            exp.torture_corpus(&SEED_CORPUS)
        };
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
        // Persist availability, soundness, repair, and recovery axes
        // per seed for run-over-run comparison.
        let path = "BENCH_torture.json";
        match std::fs::write(path, serde_json::to_string(&t).expect("serializes")) {
            Ok(()) => eprintln!("# wrote {path}"),
            Err(e) => eprintln!("# could not write {path}: {e}"),
        }
    }
    if want("adaptive") {
        let t = exp.adaptive();
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
        // Persist the adaptive-vs-static axes (hit rate, origin time,
        // soundness verdicts) for run-over-run comparison.
        let path = "BENCH_adaptive.json";
        match std::fs::write(path, serde_json::to_string(&t).expect("serializes")) {
            Ok(()) => eprintln!("# wrote {path}"),
            Err(e) => eprintln!("# could not write {path}: {e}"),
        }
    }
    if want("cluster") {
        let t = exp.cluster(&fleet_sweep(nodes));
        print_block(json, &t, &serde_json::to_string(&t).expect("serializes"));
        // Persist the fleet axes (origin fetches vs fleet size, kill-run
        // availability and failover time) for run-over-run comparison.
        let path = "BENCH_cluster.json";
        match std::fs::write(path, serde_json::to_string(&t).expect("serializes")) {
            Ok(()) => eprintln!("# wrote {path}"),
            Err(e) => eprintln!("# could not write {path}: {e}"),
        }
    }
}

fn print_block(json: bool, table: &dyn std::fmt::Display, json_text: &str) {
    if json {
        println!("{json_text}");
    } else {
        println!("\n{table}");
    }
}

fn parse_num(v: Option<String>, flag: &str) -> usize {
    v.and_then(|s| s.parse().ok()).unwrap_or_else(|| {
        eprintln!("{flag} requires a number");
        std::process::exit(2);
    })
}

fn print_usage() {
    eprintln!(
        "usage: repro [--objects N] [--queries N] [--seed S] [--threads K] [--edge-conns N] \
         [--nodes N] [--json] [--chaos] [--adaptive] \
         [trace-stats|table1|figure5|figure6|compaction|replacement|coverage|checktime|throughput|tiered|edge|chaos|cluster|torture|adaptive|all]..."
    );
}
