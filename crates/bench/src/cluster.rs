//! Fleet-size sweep and mid-trace peer kill: the cluster experiment
//! behind `repro --nodes N cluster`.
//!
//! The paper evaluates one proxy; a deployment runs several. This
//! harness replays the calibrated Radial trace through an in-process
//! [`ClusterRouter`] fleet of N full proxies, each with a 1/6-size
//! cache of its own, all sharing one counted origin. Requests are
//! routed at the edge: most go straight to the slot owner of their
//! routing key (the consistent-hash partition doing its job), a
//! seeded quarter are sprayed to a random entry node to model an
//! imperfect load balancer — those exercise the owner-probe leg, where
//! a local miss is answered from the owning peer's cache with zero
//! origin traffic.
//!
//! Everything runs on a [`MockClock`]: the clock advances a fixed tick
//! per query and the SWIM failure detector runs one round per tick, so
//! the sweep and the kill run are bit-for-bit deterministic.
//!
//! Two questions the report answers:
//!
//! 1. **Does the fleet pool its cache?** Aggregate capacity grows with
//!    N while per-node capacity stays fixed, so origin fetches must
//!    *fall* as the fleet grows (the acceptance axis of the sweep).
//! 2. **Does a node kill stay invisible to clients?** Mid-trace, one
//!    node of a 3-node fleet is killed. Entry rerouting, probe
//!    fall-through and slot failover must keep every request answered,
//!    and the report measures how long (virtual ms) the survivors take
//!    to route around the corpse.
//!
//! Every served answer is checked against a no-cache oracle run, so
//! peer-served and failover-served answers are verified sound here,
//! not just in the unit tests.
//!
//! [`MockClock`]: funcproxy::resilience::MockClock

use crate::Experiment;
use fp_skyserver::ResultSet;
use fp_trace::Rbe;
use fp_xmlite::Element;
use funcproxy::cache::DescriptionKind;
use funcproxy::cluster::{routing_key, ClusterConfig, ClusterRouter, NodeId, NodeStatus};
use funcproxy::metrics::Outcome;
use funcproxy::origin::CountingOrigin;
use funcproxy::resilience::{Clock, MockClock};
use funcproxy::template::TemplateManager;
use funcproxy::{CostModel, Origin, ProxyConfig, ProxyHandle, Scheme, SiteOrigin};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

/// Virtual time that passes between consecutive trace queries.
const TICK: Duration = Duration::from_millis(10);
/// Cache shards per node (fixed for determinism).
const SHARDS: usize = 2;
/// Fleet size of the mid-trace kill run.
const KILL_FLEET: usize = 3;
/// The canonical sweep of the acceptance criterion.
pub const FLEET_SIZES: [usize; 4] = [1, 2, 4, 8];

/// Power-of-two fleet sizes up to `max` (always including `max`), the
/// way `thread_sweep` builds the throughput axis.
pub fn fleet_sweep(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut sizes = Vec::new();
    let mut n = 1;
    while n < max {
        sizes.push(n);
        n *= 2;
    }
    sizes.push(max);
    sizes
}

/// One fleet-size row of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterRow {
    /// Fleet size.
    pub nodes: usize,
    /// Queries replayed.
    pub queries: usize,
    /// Queries answered (all of them, or something is broken).
    pub answered: usize,
    /// Fraction of queries answered.
    pub availability: f64,
    /// Fraction of queries served without any origin fetch (local or
    /// peer cache hits, degraded answers included).
    pub hit_rate: f64,
    /// Origin executions summed over the whole fleet.
    pub origin_fetches: usize,
    /// Serving-path probes of a peer's cache.
    pub peer_probes: u64,
    /// Probes the peer's cache answered (zero-origin-traffic hits).
    pub peer_hits: u64,
    /// Every served answer was a subset of (or equal to) the oracle
    /// answer; `false` would be a bug.
    pub all_answers_sound: bool,
}

/// The mid-trace kill run over a 3-node fleet.
#[derive(Debug, Clone, Serialize)]
pub struct KillReport {
    /// Fleet size.
    pub nodes: usize,
    /// Queries replayed.
    pub queries: usize,
    /// Query index at which the victim was killed.
    pub kill_at_query: usize,
    /// Node index killed (never the routing viewpoint, node 0).
    pub victim: usize,
    /// Queries answered over the whole run.
    pub answered: usize,
    /// Fraction of queries answered — must stay at least at the
    /// single-node chaos availability floor.
    pub availability: f64,
    /// Virtual ms from the kill until a survivor's live view first
    /// excluded the victim (its slots failed over at that moment);
    /// `None` if the survivors never noticed, which would be a bug.
    pub failover_ms: Option<f64>,
    /// Origin executions summed over the whole fleet.
    pub origin_fetches: usize,
    /// Serving-path probes that failed transport after retries — each
    /// fed the failure detector and fell through to a local origin
    /// path instead of surfacing to the client.
    pub peer_probe_failures: u64,
    /// Suspected/Died transitions observed across the fleet.
    pub failovers: u64,
    /// Every served answer was a subset of the oracle answer.
    pub all_answers_sound: bool,
}

/// The cluster report `repro --nodes N cluster` persists to
/// `BENCH_cluster.json`.
#[derive(Debug, Clone, Serialize)]
pub struct ClusterBench {
    /// One row per fleet size.
    pub rows: Vec<ClusterRow>,
    /// The mid-trace kill run.
    pub kill: KillReport,
}

impl std::fmt::Display for ClusterBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Proxy fleet sweep (1/6-size cache per node, owner-routed edge with 25% spray, virtual clock)"
        )?;
        writeln!(
            f,
            "  nodes | avail | hit rate | origin fetches | peer probes | peer hits | sound"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>5} | {:>5.3} | {:>8.3} | {:>14} | {:>11} | {:>9} | {}",
                r.nodes,
                r.availability,
                r.hit_rate,
                r.origin_fetches,
                r.peer_probes,
                r.peer_hits,
                r.all_answers_sound
            )?;
        }
        let k = &self.kill;
        writeln!(
            f,
            "Mid-trace peer kill ({} nodes, node {} killed at query {})",
            k.nodes, k.victim, k.kill_at_query
        )?;
        writeln!(
            f,
            "  availability {:.3} ({} of {} answered), {} origin fetches, {} probe failures absorbed, {} failover transitions, sound: {}",
            k.availability,
            k.answered,
            k.queries,
            k.origin_fetches,
            k.peer_probe_failures,
            k.failovers,
            k.all_answers_sound
        )?;
        match k.failover_ms {
            Some(ms) => writeln!(
                f,
                "  survivors routed around the victim {ms:.0} virtual ms after the kill"
            ),
            None => writeln!(f, "  survivors never excluded the victim (bug)"),
        }
    }
}

/// Shared per-query accounting of one fleet replay.
struct ReplayTally {
    answered: usize,
    zero_origin: usize,
    all_sound: bool,
}

impl Experiment {
    /// Runs the fleet-size sweep plus the mid-trace kill run; see the
    /// module docs for the routing model and the report semantics.
    pub fn cluster(&self, sizes: &[usize]) -> ClusterBench {
        let oracle = self.oracle_object_ids();
        let rows = sizes.iter().map(|&n| self.run_fleet(n, &oracle)).collect();
        let kill = self.run_kill(&oracle);
        ClusterBench { rows, kill }
    }

    /// Oracle pass: the objID set every query answers when nothing is
    /// cached and nothing fails, keyed by query string (the trace
    /// repeats queries). Shared with the torture harness.
    pub(crate) fn oracle_object_ids(&self) -> HashMap<String, Vec<fp_sqlmini::Value>> {
        let rbe = Rbe::default();
        let mut oracle = crate::make_proxy(
            &self.site,
            Scheme::NoCache,
            DescriptionKind::Array,
            None,
            CostModel::free(),
        );
        let mut oracle_rows: HashMap<String, Vec<fp_sqlmini::Value>> = HashMap::new();
        for q in &self.trace.queries {
            oracle_rows.entry(q.query_string()).or_insert_with(|| {
                let response = oracle
                    .handle_form(&rbe.form_path, &q.form_fields())
                    .expect("oracle executes");
                let key_col = response
                    .result
                    .column_index("objID")
                    .expect("radial results carry objID");
                response
                    .result
                    .rows
                    .iter()
                    .map(|r| r[key_col].clone())
                    .collect()
            });
        }
        self.site.reset_load();
        oracle_rows
    }

    /// Builds an N-node fleet: every node gets its own 1/6-size cache
    /// and all nodes share one counted origin, so `fetches()` is the
    /// fleet's total origin traffic.
    fn build_fleet(
        &self,
        n: usize,
        clock: &Arc<MockClock>,
        counting: &Arc<CountingOrigin>,
    ) -> ClusterRouter {
        let cap = self.capacity_for(1.0 / 6.0);
        let handles = (0..n)
            .map(|_| {
                ProxyHandle::with_shards_clocked(
                    TemplateManager::with_sky_defaults(),
                    Arc::clone(counting) as Arc<dyn Origin>,
                    ProxyConfig::default()
                        .with_scheme(Scheme::FullSemantic)
                        .with_capacity(Some(cap))
                        .with_cost(CostModel::free()),
                    SHARDS,
                    Arc::clone(clock) as Arc<dyn Clock>,
                )
            })
            .collect();
        ClusterRouter::in_process(
            handles,
            ClusterConfig::fast_test(),
            Arc::clone(clock) as Arc<dyn Clock>,
        )
    }

    /// One sweep row: replay the trace through an N-node fleet.
    fn run_fleet(&self, n: usize, oracle: &HashMap<String, Vec<fp_sqlmini::Value>>) -> ClusterRow {
        let clock = MockClock::shared();
        let counting = Arc::new(CountingOrigin::new(Arc::new(SiteOrigin::new(
            self.site.clone(),
        ))));
        let router = self.build_fleet(n, &clock, &counting);
        let tally = self.replay(&router, &clock, &counting, oracle, None, &mut |_| {});
        self.site.reset_load();
        ClusterRow {
            nodes: n,
            queries: self.trace.len(),
            answered: tally.answered,
            availability: tally.answered as f64 / self.trace.len().max(1) as f64,
            hit_rate: tally.zero_origin as f64 / self.trace.len().max(1) as f64,
            origin_fetches: counting.fetches(),
            peer_probes: router.stats().peer_probes(),
            peer_hits: router.stats().peer_hits(),
            all_answers_sound: tally.all_sound,
        }
    }

    /// The kill run: a 3-node fleet, one node killed halfway through.
    fn run_kill(&self, oracle: &HashMap<String, Vec<fp_sqlmini::Value>>) -> KillReport {
        let clock = MockClock::shared();
        let counting = Arc::new(CountingOrigin::new(Arc::new(SiteOrigin::new(
            self.site.clone(),
        ))));
        let router = self.build_fleet(KILL_FLEET, &clock, &counting);
        let victim = KILL_FLEET - 1;
        let victim_id = NodeId(victim as u16);
        let kill_at = self.trace.len() / 2;

        let mut kill_time: Option<std::time::Instant> = None;
        let mut failover: Option<Duration> = None;
        let tally = self.replay(
            &router,
            &clock,
            &counting,
            oracle,
            Some((kill_at, victim)),
            &mut |router| {
                // Poll after every query: the failover instant is when a
                // survivor's live view first excludes the victim.
                if kill_time.is_none() && router.is_down(victim) {
                    kill_time = Some(clock.now());
                }
                if let (Some(t0), None) = (kill_time, failover) {
                    let noticed = (0..KILL_FLEET)
                        .filter(|&i| i != victim)
                        .any(|i| router.status_seen_by(i, victim_id) != Some(NodeStatus::Alive));
                    if noticed {
                        failover = Some(clock.now().duration_since(t0));
                    }
                }
            },
        );
        self.site.reset_load();
        KillReport {
            nodes: KILL_FLEET,
            queries: self.trace.len(),
            kill_at_query: kill_at,
            victim,
            answered: tally.answered,
            availability: tally.answered as f64 / self.trace.len().max(1) as f64,
            failover_ms: failover.map(|d| d.as_secs_f64() * 1000.0),
            origin_fetches: counting.fetches(),
            peer_probe_failures: router.stats().peer_probe_failures(),
            failovers: router.stats().failovers(),
            all_answers_sound: tally.all_sound,
        }
    }

    /// Replays the trace through `router`, routing each query to its
    /// slot owner (with a seeded 25% spray to random entries), ticking
    /// the failure detector once per query, and checking every answer
    /// against the oracle. `kill` = (query index, node index) crashes a
    /// node mid-trace; `observe` runs after every query.
    fn replay(
        &self,
        router: &ClusterRouter,
        clock: &MockClock,
        counting: &CountingOrigin,
        oracle: &HashMap<String, Vec<fp_sqlmini::Value>>,
        kill: Option<(usize, usize)>,
        observe: &mut dyn FnMut(&ClusterRouter),
    ) -> ReplayTally {
        let rbe = Rbe::default();
        let n = router.len();
        let mut tally = ReplayTally {
            answered: 0,
            zero_origin: 0,
            all_sound: true,
        };
        // Seeded LCG: the edge's routing noise, deterministic per fleet
        // size so runs are reproducible.
        let mut lcg: u64 = 0x0BEE_F00D ^ (n as u64);
        for (i, q) in self.trace.queries.iter().enumerate() {
            clock.advance(TICK);
            if let Some((at, victim)) = kill {
                if i == at {
                    router.kill(victim);
                }
            }
            let fields = q.form_fields();
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Route at the edge: hash the routing key to its owner
            // (as node 0 currently sees the fleet), except for the
            // sprayed quarter that lands on an arbitrary node.
            let owner_entry = router
                .node(0)
                .manager()
                .resolve_form(&rbe.form_path, &fields)
                .ok()
                .and_then(|bound| {
                    let key = routing_key(&bound.residual_key, &bound.region);
                    router.owner_seen_by(0, &key)
                })
                .map_or(0, |owner| owner.0 as usize);
            let entry = if (lcg >> 33).is_multiple_of(4) {
                ((lcg >> 17) as usize) % n
            } else {
                owner_entry
            };
            let before = counting.fetches();
            if let Ok(served) = router.handle_form(entry, &rbe.form_path, &fields) {
                tally.answered += 1;
                if counting.fetches() == before {
                    tally.zero_origin += 1;
                }
                let oracle_ids = &oracle[&q.query_string()];
                match parse_result(&served.response.body) {
                    Some(result) => {
                        if !is_subset(&result, oracle_ids) {
                            tally.all_sound = false;
                        }
                        if !served.response.metrics.degraded
                            && !matches!(served.response.metrics.outcome, Outcome::Forwarded)
                            && result.len() != oracle_ids.len()
                        {
                            // A non-degraded cache answer must be complete.
                            tally.all_sound = false;
                        }
                    }
                    None => tally.all_sound = false,
                }
            }
            router.tick();
            observe(router);
        }
        tally
    }
}

/// Parses a served XML body back into rows (the client's view of the
/// answer, whichever node or cache produced it).
pub(crate) fn parse_result(body: &[u8]) -> Option<ResultSet> {
    let text = std::str::from_utf8(body).ok()?;
    let doc = Element::parse(text).ok()?;
    ResultSet::from_xml(&doc)
}

/// Whether every key of `result` appears in the oracle's objID set.
pub(crate) fn is_subset(result: &ResultSet, oracle: &[fp_sqlmini::Value]) -> bool {
    let Some(key_col) = result.column_index("objID") else {
        return result.is_empty();
    };
    result
        .rows
        .iter()
        .all(|r| oracle.iter().any(|v| *v == r[key_col]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    /// The acceptance bar for the fleet, end to end: pooled caching
    /// cuts origin traffic as the fleet grows, a mid-trace kill stays
    /// invisible to clients, and every answer stays sound.
    #[test]
    fn fleet_pools_its_cache_and_survives_a_mid_trace_kill() {
        let exp = Experiment::prepare(Scale {
            objects: 10_000,
            queries: 150,
            seed: 23,
        });
        let bench = exp.cluster(&[1, 4]);

        let solo = &bench.rows[0];
        let fleet = &bench.rows[1];
        assert_eq!(solo.nodes, 1);
        assert_eq!(fleet.nodes, 4);
        // With a healthy origin every query is answered at any size.
        assert_eq!(solo.answered, solo.queries);
        assert_eq!(fleet.answered, fleet.queries);
        // Pooled capacity: 4 nodes hold 4x the cache, so the fleet
        // refetches less than the solo proxy.
        assert!(
            fleet.origin_fetches < solo.origin_fetches,
            "fleet {} vs solo {} origin fetches",
            fleet.origin_fetches,
            solo.origin_fetches
        );
        assert!(fleet.hit_rate > solo.hit_rate);
        // The sprayed entries exercise the peer-probe leg for real.
        assert!(fleet.peer_probes > 0, "spray must trigger owner probes");
        assert!(solo.peer_probes == 0, "a solo node has no peers to probe");
        assert!(solo.all_answers_sound && fleet.all_answers_sound);

        // The kill run: availability at least the single-node chaos
        // floor (in practice ~1.0 — the origin is healthy, only a peer
        // died), failover measured, no unsound answer.
        let k = &bench.kill;
        assert_eq!(k.queries, 150);
        assert!(
            k.availability > 0.3,
            "availability {:.2} under the chaos floor",
            k.availability
        );
        assert!(k.all_answers_sound, "a served answer exceeded the oracle");
        // 0 is legitimate: a serving-path probe failure feeds the
        // detector in the same tick as the kill.
        let failover = k.failover_ms.expect("survivors must notice the kill");
        assert!(
            (0.0..=5_000.0).contains(&failover),
            "failover time {failover} virtual ms out of range"
        );
        assert!(
            k.failovers >= 1,
            "the kill must be observed as a membership transition"
        );
    }

    #[test]
    fn fleet_sweep_is_powers_of_two_up_to_max() {
        assert_eq!(fleet_sweep(8), vec![1, 2, 4, 8]);
        assert_eq!(fleet_sweep(4), vec![1, 2, 4]);
        assert_eq!(fleet_sweep(6), vec![1, 2, 4, 6]);
        assert_eq!(fleet_sweep(1), vec![1]);
        assert_eq!(fleet_sweep(0), vec![1]);
    }
}
