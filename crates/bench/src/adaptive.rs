//! Adaptive-vs-static scheme comparison under cost-aware replacement.
//!
//! The runtime's profit model claims it can pick the right caching
//! scheme per template at runtime. This harness puts that claim on
//! fixed axes: it replays two calibrated Radial traces — the standard
//! mix and a Zipf-skewed variant concentrating traffic on a few hot
//! spots — through every static scheme and through the adaptive
//! selector, all under the cost-aware replacement policy and a
//! constrained cache budget. Every run is checked per answer against a
//! no-cache oracle (row counts must match query by query), and the
//! adaptive run is required to match the best static hit rate while
//! matching or beating the *response-optimal* static scheme — the one
//! an operator who knew the workload in advance would deploy — on both
//! mean response and time spent on the origin path.

use crate::Experiment;
use fp_trace::{Rbe, Trace, TraceSpec};
use funcproxy::cache::Replacement;
use funcproxy::metrics::{Outcome, QueryMetrics, TraceReport};
use funcproxy::template::TemplateManager;
use funcproxy::{
    CostModel, CountingOrigin, FunctionProxy, ProxyConfig, ProxyHandle, Scheme, SiteOrigin,
};
use serde::Serialize;
use std::sync::Arc;

/// Cache budget as a fraction of the trace's total result size — tight
/// enough that the replacement policy decides outcomes.
pub const ADAPTIVE_CACHE_FRACTION: f64 = 1.0 / 3.0;

/// Absolute hit-rate slack when holding the adaptive run to the best
/// static scheme (exploration costs a little before the model commits).
pub const ADAPTIVE_HIT_TOLERANCE: f64 = 0.02;

/// Relative slack on response time and origin-path time when holding
/// the adaptive run to the response-optimal static scheme. The
/// selector's own switch hysteresis is 10% — schemes whose costs sit
/// inside that band are deliberately treated as ties — so "matching"
/// means landing within half that band.
///
/// Why the *response-optimal* static and not a per-axis minimum: no
/// single scheme attains the minimum on every axis at once (e.g.
/// containment-only often wins response while full-semantic wins
/// origin traffic), so a per-axis bar is unattainable for statics and
/// adaptive alike. The meaningful baseline is the one static scheme an
/// operator who knew the workload in advance would have deployed — the
/// one with the best mean response — and adaptive must match its
/// response without spending more origin time than it.
pub const ADAPTIVE_ORIGIN_TOLERANCE: f64 = 0.05;

/// One (trace, scheme) run.
#[derive(Debug, Clone, Serialize)]
pub struct AdaptiveRow {
    /// Scheme label (`no-cache` … `containment-only`, or `adaptive`).
    pub scheme: String,
    /// Fraction of queries answered wholly from cache.
    pub hit_rate: f64,
    /// Mean simulated response time, ms.
    pub avg_response_ms: f64,
    /// Summed simulated cost of the queries that paid an origin round
    /// trip (forwards and overlap remainders), ms.
    pub origin_path_ms: f64,
    /// Origin `execute` calls observed by the counting wrapper.
    pub origin_fetches: usize,
    /// Every answer's row count matched the no-cache oracle.
    pub sound: bool,
}

/// The adaptive run's selector counters, straight from the runtime
/// snapshot.
#[derive(Debug, Clone, Serialize)]
pub struct AdaptiveCounters {
    /// Committed-scheme changes across the run.
    pub scheme_switches: usize,
    /// Templates the profit model tracked.
    pub adaptive_templates: usize,
    /// Requests served per scheme, in declaration order.
    pub scheme_serves: Vec<usize>,
    /// Combined remainder round trips the overlap path issued.
    pub remainder_batches: usize,
    /// Remainder queries answered by those combined trips.
    pub batched_remainders: usize,
}

/// One trace's section: all static schemes plus adaptive.
#[derive(Debug, Clone, Serialize)]
pub struct AdaptiveSection {
    /// Trace label (`standard` or `zipf`).
    pub trace: &'static str,
    /// One row per scheme; `adaptive` last.
    pub rows: Vec<AdaptiveRow>,
    /// Selector counters of the adaptive run.
    pub adaptive: AdaptiveCounters,
    /// The static scheme with the best mean response (the deploy-this
    /// baseline the origin/response verdicts compare against).
    pub best_static: String,
    /// Adaptive hit rate ≥ best static hit rate − tolerance (best taken
    /// across *all* static schemes).
    pub adaptive_matches_best_hit_rate: bool,
    /// Adaptive mean response ≤ response-optimal static × (1 + tol).
    pub adaptive_matches_best_response: bool,
    /// Adaptive origin-path time ≤ response-optimal static × (1 + tol).
    pub adaptive_matches_best_origin_ms: bool,
}

/// The full adaptive-vs-static artifact (`BENCH_adaptive.json`).
#[derive(Debug, Clone, Serialize)]
pub struct AdaptiveBench {
    /// Cache budget (bytes) every run used.
    pub capacity_bytes: usize,
    /// One section per trace.
    pub sections: Vec<AdaptiveSection>,
}

impl Experiment {
    /// Runs the adaptive-vs-static comparison over the standard trace
    /// and a Zipf-skewed variant.
    pub fn adaptive(&self) -> AdaptiveBench {
        let capacity = self.capacity_for(ADAPTIVE_CACHE_FRACTION);
        let zipf = TraceSpec {
            seed: 0x51AF,
            queries: self.trace.len(),
            hotspots: 8,
            hotspot_zipf: 1.1,
            ..TraceSpec::default()
        }
        .generate();
        let sections = vec![
            self.adaptive_section("standard", &self.trace, capacity),
            self.adaptive_section("zipf", &zipf, capacity),
        ];
        AdaptiveBench {
            capacity_bytes: capacity,
            sections,
        }
    }

    fn adaptive_section(
        &self,
        label: &'static str,
        trace: &Trace,
        capacity: usize,
    ) -> AdaptiveSection {
        // Ground truth: every query through a cache-less proxy.
        let oracle = self.oracle_rows(trace);

        let mut rows = Vec::new();
        for &scheme in Scheme::all().iter() {
            let (row, _) = self.adaptive_run(trace, Some(scheme), capacity, &oracle);
            rows.push(row);
        }
        let (adaptive_row, snapshot) = self.adaptive_run(trace, None, capacity, &oracle);

        // Hold adaptive to the best static hit rate on any scheme, and
        // to the response and origin time of the *response-optimal*
        // static — the scheme an operator with workload foreknowledge
        // would have deployed (see ADAPTIVE_ORIGIN_TOLERANCE).
        let best_hit = rows.iter().map(|r| r.hit_rate).fold(0.0, f64::max);
        let best_static = rows
            .iter()
            .min_by(|a, b| a.avg_response_ms.total_cmp(&b.avg_response_ms))
            .expect("static rows are non-empty")
            .clone();
        let adaptive_matches_best_hit_rate =
            adaptive_row.hit_rate >= best_hit - ADAPTIVE_HIT_TOLERANCE;
        let adaptive_matches_best_response = adaptive_row.avg_response_ms
            <= best_static.avg_response_ms * (1.0 + ADAPTIVE_ORIGIN_TOLERANCE);
        let adaptive_matches_best_origin_ms = adaptive_row.origin_path_ms
            <= best_static.origin_path_ms * (1.0 + ADAPTIVE_ORIGIN_TOLERANCE);
        rows.push(adaptive_row);

        AdaptiveSection {
            trace: label,
            rows,
            adaptive: AdaptiveCounters {
                scheme_switches: snapshot.scheme_switches,
                adaptive_templates: snapshot.adaptive_templates,
                scheme_serves: snapshot.scheme_serves.to_vec(),
                remainder_batches: snapshot.remainder_batches,
                batched_remainders: snapshot.batched_remainders,
            },
            best_static: best_static.scheme,
            adaptive_matches_best_hit_rate,
            adaptive_matches_best_response,
            adaptive_matches_best_origin_ms,
        }
    }

    /// Per-query oracle row counts (no cache, free cost model).
    fn oracle_rows(&self, trace: &Trace) -> Vec<usize> {
        let mut proxy = FunctionProxy::new(
            TemplateManager::with_sky_defaults(),
            Arc::new(SiteOrigin::new(self.site.clone())),
            ProxyConfig::default()
                .with_scheme(Scheme::NoCache)
                .with_cost(CostModel::free()),
        );
        Rbe::default()
            .replay(&mut proxy, trace)
            .expect("oracle replays")
            .iter()
            .map(|m| m.rows_total)
            .collect()
    }

    /// One replay through the concurrent runtime: a fixed scheme, or
    /// the adaptive selector when `scheme` is `None`. Single-client so
    /// the selector's decisions are deterministic run over run.
    fn adaptive_run(
        &self,
        trace: &Trace,
        scheme: Option<Scheme>,
        capacity: usize,
        oracle: &[usize],
    ) -> (AdaptiveRow, funcproxy::runtime::RuntimeSnapshot) {
        let mut config = ProxyConfig::default()
            .with_capacity(Some(capacity))
            .with_cost(self.cost)
            .with_replacement(Replacement::CostAware);
        config = match scheme {
            Some(s) => config.with_scheme(s),
            None => config.with_adaptive_scheme(),
        };
        let counting = Arc::new(CountingOrigin::new(Arc::new(SiteOrigin::new(
            self.site.clone(),
        ))));
        let handle = ProxyHandle::with_shards(
            TemplateManager::with_sky_defaults(),
            Arc::clone(&counting) as Arc<dyn funcproxy::Origin>,
            config,
            4,
        );
        let metrics = Rbe::default()
            .replay_shared(&handle, trace, 1)
            .expect("trace replays");
        let report = TraceReport::from_metrics(&metrics);
        let snapshot = handle.runtime_stats();

        let sound = metrics
            .iter()
            .zip(oracle)
            .all(|(m, &want)| m.rows_total == want);
        let row = AdaptiveRow {
            scheme: match scheme {
                Some(s) => s.to_string(),
                None => "adaptive".to_string(),
            },
            hit_rate: hit_rate(&metrics),
            avg_response_ms: report.avg_response_ms,
            origin_path_ms: origin_path_ms(&metrics),
            origin_fetches: counting.fetches(),
            sound,
        };
        (row, snapshot)
    }
}

/// Fraction of queries answered wholly from cache.
fn hit_rate(metrics: &[QueryMetrics]) -> f64 {
    let hits = metrics
        .iter()
        .filter(|m| matches!(m.outcome, Outcome::Exact | Outcome::Contained))
        .count();
    hits as f64 / metrics.len().max(1) as f64
}

/// Summed simulated cost of the queries that paid an origin round trip.
fn origin_path_ms(metrics: &[QueryMetrics]) -> f64 {
    metrics
        .iter()
        .filter(|m| matches!(m.outcome, Outcome::Forwarded | Outcome::Overlap))
        .map(|m| m.sim_ms)
        .sum()
}

impl std::fmt::Display for AdaptiveBench {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Adaptive scheme selection vs static schemes (cost-aware replacement, {:.0} KB cache)",
            self.capacity_bytes as f64 / 1024.0
        )?;
        for s in &self.sections {
            writeln!(f, "  trace: {}", s.trace)?;
            writeln!(
                f,
                "    scheme              |  hit% | avg resp ms | origin ms | fetches | sound"
            )?;
            for r in &s.rows {
                writeln!(
                    f,
                    "    {:<19} | {:>5.1} | {:>11.0} | {:>9.0} | {:>7} | {}",
                    r.scheme,
                    r.hit_rate * 100.0,
                    r.avg_response_ms,
                    r.origin_path_ms,
                    r.origin_fetches,
                    r.sound,
                )?;
            }
            writeln!(
                f,
                "    adaptive: {} switches over {} template(s), serves {:?}, \
                 {} combined remainder trip(s) covering {} batched remainder(s)",
                s.adaptive.scheme_switches,
                s.adaptive.adaptive_templates,
                s.adaptive.scheme_serves,
                s.adaptive.remainder_batches,
                s.adaptive.batched_remainders,
            )?;
            writeln!(
                f,
                "    adaptive vs best static ({}): hit rate {}, response {}, origin time {}",
                s.best_static,
                if s.adaptive_matches_best_hit_rate {
                    "ok"
                } else {
                    "BEHIND"
                },
                if s.adaptive_matches_best_response {
                    "ok"
                } else {
                    "BEHIND"
                },
                if s.adaptive_matches_best_origin_ms {
                    "ok"
                } else {
                    "BEHIND"
                },
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    /// The acceptance bar: every run sound against the oracle, and the
    /// adaptive run keeping pace with the best static scheme on both
    /// axes, on both traces.
    #[test]
    fn adaptive_keeps_pace_with_best_static_and_stays_sound() {
        let exp = Experiment::prepare(Scale {
            objects: 20_000,
            queries: 220,
            seed: 17,
        });
        let bench = exp.adaptive();
        assert_eq!(bench.sections.len(), 2);
        for s in &bench.sections {
            assert_eq!(s.rows.len(), Scheme::all().len() + 1);
            for r in &s.rows {
                assert!(r.sound, "{}/{} diverged from the oracle", s.trace, r.scheme);
            }
            let adaptive = s.rows.last().unwrap();
            assert_eq!(adaptive.scheme, "adaptive");
            assert!(
                s.adaptive_matches_best_hit_rate,
                "{}: adaptive hit rate {} behind best static",
                s.trace, adaptive.hit_rate
            );
            assert!(
                s.adaptive_matches_best_response,
                "{}: adaptive response {} behind best static {}",
                s.trace, adaptive.avg_response_ms, s.best_static
            );
            assert!(
                s.adaptive_matches_best_origin_ms,
                "{}: adaptive origin ms {} behind best static {}",
                s.trace, adaptive.origin_path_ms, s.best_static
            );
            assert_eq!(s.adaptive.adaptive_templates, 1);
            // The adaptive run serves real traffic through the model.
            assert!(s.adaptive.scheme_serves.iter().sum::<usize>() > 0);
            // And beats not caching at all by a clear margin.
            let nc = s.rows.iter().find(|r| r.scheme == "no-cache").unwrap();
            assert!(
                adaptive.origin_path_ms < nc.origin_path_ms * 0.9,
                "{}: adaptive {} vs no-cache {}",
                s.trace,
                adaptive.origin_path_ms,
                nc.origin_path_ms
            );
        }
        assert!(!format!("{bench}").is_empty());
    }
}
