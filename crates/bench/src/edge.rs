//! Edge-concurrency benchmark: the nonblocking reactor under real
//! socket load.
//!
//! The throughput harness (`throughput.rs`) measures the *runtime* by
//! calling the shared handle directly from K threads. This experiment
//! measures the *edge*: a live [`EdgeServer`] on loopback TCP with
//! hundreds of concurrent keep-alive HTTP connections replaying the
//! calibrated Radial trace — the configuration a thread-per-connection
//! front end cannot reach without spawning hundreds of threads. The
//! server's thread count is fixed at `1 + workers` no matter the
//! connection count; that invariant is part of the emitted artifact
//! (`server_threads`).
//!
//! Each swept connection count gets a fresh proxy (cold cache), so the
//! miss/hit mix is identical across counts and the qps/p99 curves are
//! comparable.

use crate::throughput::THROUGHPUT_SHARDS;
use crate::Experiment;
use fp_edge::{EdgeConfig, EdgeServer, ProxyEdgeService};
use fp_httpd::{HttpClient, Status};
use fp_skyserver::SkySite;
use fp_trace::Trace;
use funcproxy::origin::CountingOrigin;
use funcproxy::template::TemplateManager;
use funcproxy::{CostModel, ProxyConfig, ProxyHandle, Scheme, SiteOrigin};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker threads behind the reactor in every swept configuration.
pub const EDGE_WORKERS: usize = 8;

/// Pending-request queue bound. Deep enough that a healthy run does not
/// shed; sheds that do occur are admission control working and are
/// reported in the row, not errors.
pub const EDGE_QUEUE_DEPTH: usize = 512;

/// Requests each connection issues, minimum (the trace is repeated as
/// needed so every swept connection count gets a meaningful sample).
const MIN_REQUESTS_PER_CONN: usize = 8;

/// One measured connection-count configuration.
#[derive(Debug, Clone, Serialize)]
pub struct EdgeConcurrencyRow {
    /// Concurrent keep-alive client connections.
    pub conns: usize,
    /// Requests issued across all connections.
    pub total_requests: usize,
    /// Wall-clock time for the whole replay, ms.
    pub elapsed_ms: f64,
    /// Successfully answered queries per second.
    pub qps: f64,
    /// Median client-observed latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile client-observed latency, ms.
    pub p99_ms: f64,
    /// Requests answered `503` by admission control.
    pub shed_503: usize,
    /// Transport errors or unexpected statuses.
    pub errors: usize,
    /// Server threads (reactor + workers) — fixed, never per-connection.
    pub server_threads: usize,
    /// Requests the reactor answered inline (fresh cache hits).
    pub fast_path_hits: usize,
    /// Requests offloaded to the worker pool.
    pub offloaded: usize,
    /// Requests parsed while an earlier one on the same connection was
    /// still in flight.
    pub pipelined: usize,
}

/// The `BENCH_edge_concurrency.json` artifact: qps and tail latency vs
/// concurrent connections over the nonblocking edge.
#[derive(Debug, Clone, Serialize)]
pub struct EdgeConcurrency {
    /// Simulated per-fetch origin delay, ms.
    pub origin_delay_ms: u64,
    /// Worker threads behind the reactor.
    pub workers: usize,
    /// Rows, ordered by connection count.
    pub rows: Vec<EdgeConcurrencyRow>,
}

impl std::fmt::Display for EdgeConcurrency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "Edge concurrency ({} workers behind the reactor, {} ms simulated origin delay)",
            self.workers, self.origin_delay_ms
        )?;
        writeln!(
            f,
            "  conns | requests |     qps | p50 ms | p99 ms | shed | errors | threads | fast path | offloaded | pipelined"
        )?;
        for r in &self.rows {
            writeln!(
                f,
                "  {:>5} | {:>8} | {:>7.1} | {:>6.2} | {:>6.2} | {:>4} | {:>6} | {:>7} | {:>9} | {:>9} | {:>9}",
                r.conns,
                r.total_requests,
                r.qps,
                r.p50_ms,
                r.p99_ms,
                r.shed_503,
                r.errors,
                r.server_threads,
                r.fast_path_hits,
                r.offloaded,
                r.pipelined
            )?;
        }
        Ok(())
    }
}

/// Connection counts for a `--edge-conns N` sweep: powers of two from 64
/// up to `max`, plus `max` itself (`256 → 64, 128, 256`; below 64, just
/// `max`).
pub fn conn_sweep(max: usize) -> Vec<usize> {
    let max = max.max(1);
    let mut counts: Vec<usize> = std::iter::successors(Some(64usize), |n| n.checked_mul(2))
        .take_while(|&n| n < max)
        .collect();
    counts.push(max);
    counts
}

impl Experiment {
    /// Boots a fresh edge server per connection count in `conn_counts`
    /// and replays the trace through that many concurrent keep-alive
    /// HTTP connections, with `origin_delay` of simulated WAN + origin
    /// time per miss.
    pub fn edge_concurrency(
        &self,
        conn_counts: &[usize],
        origin_delay: Duration,
    ) -> EdgeConcurrency {
        EdgeConcurrency {
            origin_delay_ms: origin_delay.as_millis() as u64,
            workers: EDGE_WORKERS,
            rows: conn_counts
                .iter()
                .map(|&conns| run_once(&self.site, &self.trace, conns, origin_delay))
                .collect(),
        }
    }
}

fn run_once(site: &SkySite, trace: &Trace, conns: usize, delay: Duration) -> EdgeConcurrencyRow {
    let counting = Arc::new(CountingOrigin::with_delay(
        Arc::new(SiteOrigin::new(site.clone())),
        delay,
    ));
    let handle = ProxyHandle::with_shards(
        TemplateManager::with_sky_defaults(),
        Arc::clone(&counting) as Arc<dyn funcproxy::Origin>,
        ProxyConfig::default()
            .with_scheme(Scheme::FullSemantic)
            .with_cost(CostModel::free()),
        THROUGHPUT_SHARDS,
    );
    let service = Arc::new(ProxyEdgeService::new(handle.clone()));
    let server = EdgeServer::bind(
        "127.0.0.1:0",
        Arc::clone(&service) as Arc<dyn fp_edge::EdgeService>,
        EdgeConfig::default()
            .with_workers(EDGE_WORKERS)
            .with_queue_depth(EDGE_QUEUE_DEPTH)
            // Headroom over the client count: the sweep measures request
            // concurrency, not the connection cap (tested elsewhere).
            .with_max_connections(conns + 16)
            .with_stats(service.edge_stats()),
    )
    .expect("edge server binds");
    let server_threads = server.thread_count();

    let urls: Vec<String> = trace
        .queries
        .iter()
        .map(|q| format!("/search/radial?{}", q.query_string()))
        .collect();
    // Repeat the trace until every connection has a meaningful share.
    let rounds = (conns * MIN_REQUESTS_PER_CONN).div_ceil(urls.len()).max(1);
    let total = urls.len() * rounds;

    let addr = server.addr();
    let start = Instant::now();
    // One thread per client connection — *client*-side threads; the
    // server side stays at `server_threads` regardless.
    let per_client: Vec<(Vec<f64>, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                let urls = &urls;
                scope.spawn(move || {
                    let client = HttpClient::new(addr);
                    let mut latencies = Vec::new();
                    let (mut shed, mut errors) = (0usize, 0usize);
                    // Round-robin deal of the repeated trace.
                    let mut i = c;
                    while i < total {
                        let t0 = Instant::now();
                        match client.get(&urls[i % urls.len()]) {
                            Ok(r) if r.status == Status::OK => {
                                latencies.push(t0.elapsed().as_secs_f64() * 1e3);
                            }
                            Ok(r) if r.status == Status::SERVICE_UNAVAILABLE => shed += 1,
                            Ok(_) | Err(_) => errors += 1,
                        }
                        i += conns;
                    }
                    (latencies, shed, errors)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = start.elapsed();

    let mut latencies: Vec<f64> = Vec::with_capacity(total);
    let (mut shed, mut errors) = (0usize, 0usize);
    for (lat, s, e) in per_client {
        latencies.extend(lat);
        shed += s;
        errors += e;
    }
    latencies.sort_by(f64::total_cmp);

    let snap = server.stats();
    server.shutdown_graceful(Duration::from_secs(10));

    EdgeConcurrencyRow {
        conns,
        total_requests: total,
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        qps: latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_ms: percentile(&latencies, 0.50),
        p99_ms: percentile(&latencies, 0.99),
        shed_503: shed,
        errors,
        server_threads,
        fast_path_hits: snap.fast_path,
        offloaded: snap.offloaded,
        pipelined: snap.pipelined,
    }
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn sweep_is_powers_of_two_from_64() {
        assert_eq!(conn_sweep(256), vec![64, 128, 256]);
        assert_eq!(conn_sweep(100), vec![64, 100]);
        assert_eq!(conn_sweep(64), vec![64]);
        assert_eq!(conn_sweep(16), vec![16]);
    }

    /// The acceptance bar for the edge: 96 concurrent connections served
    /// by a fixed, single-digit server thread count, zero transport
    /// errors, and the fast path actually engaged.
    #[test]
    fn ninety_six_connections_on_a_handful_of_threads() {
        let exp = Experiment::prepare(Scale {
            objects: 10_000,
            queries: 120,
            seed: 33,
        });
        let report = exp.edge_concurrency(&[96], Duration::from_millis(2));
        let row = &report.rows[0];
        assert_eq!(row.conns, 96);
        assert_eq!(row.server_threads, 1 + EDGE_WORKERS);
        assert_eq!(row.errors, 0, "no transport errors under load");
        assert!(
            row.total_requests >= 96 * MIN_REQUESTS_PER_CONN,
            "each connection gets a meaningful share"
        );
        assert!(row.qps > 0.0);
        assert!(row.p99_ms >= row.p50_ms);
        assert!(
            row.fast_path_hits > 0,
            "repeated trace queries must hit the inline fast path"
        );
        // Every request is accounted for: served, shed, or errored.
        assert!(
            row.fast_path_hits + row.offloaded + row.shed_503 >= row.total_requests - row.errors
        );
    }
}
