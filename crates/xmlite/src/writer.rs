//! Serialization of element trees back to XML text.

use crate::escape::escape_text;
use crate::{Element, XmlNode};

/// Writes `e` with no insignificant whitespace.
pub(crate) fn write_compact(e: &Element, out: &mut String) {
    out.push('<');
    out.push_str(e.name());
    for (k, v) in e.attrs() {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_text(v));
        out.push('"');
    }
    if e.children().is_empty() {
        out.push_str("/>");
        return;
    }
    out.push('>');
    for child in e.children() {
        match child {
            XmlNode::Element(el) => write_compact(el, out),
            XmlNode::Text(t) => out.push_str(&escape_text(t)),
        }
    }
    out.push_str("</");
    out.push_str(e.name());
    out.push('>');
}

/// Writes `e` with two-space indentation. Elements whose children are all
/// text are kept on one line so values stay readable.
pub(crate) fn write_pretty(e: &Element, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    out.push_str(&indent);
    out.push('<');
    out.push_str(e.name());
    for (k, v) in e.attrs() {
        out.push(' ');
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_text(v));
        out.push('"');
    }
    if e.children().is_empty() {
        out.push_str("/>\n");
        return;
    }
    let text_only = e.children().iter().all(|c| matches!(c, XmlNode::Text(_)));
    if text_only {
        out.push('>');
        for child in e.children() {
            if let XmlNode::Text(t) = child {
                out.push_str(&escape_text(t));
            }
        }
        out.push_str("</");
        out.push_str(e.name());
        out.push_str(">\n");
        return;
    }
    out.push_str(">\n");
    for child in e.children() {
        match child {
            XmlNode::Element(el) => write_pretty(el, depth + 1, out),
            XmlNode::Text(t) => {
                let trimmed = t.trim();
                if !trimmed.is_empty() {
                    out.push_str(&"  ".repeat(depth + 1));
                    out.push_str(&escape_text(trimmed));
                    out.push('\n');
                }
            }
        }
    }
    out.push_str(&indent);
    out.push_str("</");
    out.push_str(e.name());
    out.push_str(">\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_roundtrip_with_specials() {
        let e = Element::new("q")
            .with_attr("sql", "SELECT * FROM t WHERE a < 5 AND b = \"x\"")
            .with_text("1 < 2 & 3");
        let xml = e.to_xml();
        let back = Element::parse(&xml).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn pretty_output_shape() {
        let e = Element::new("root")
            .with_child(Element::new("leaf").with_text("v"))
            .with_child(Element::new("empty"));
        let pretty = e.to_xml_pretty();
        assert_eq!(pretty, "<root>\n  <leaf>v</leaf>\n  <empty/>\n</root>\n");
    }

    #[test]
    fn pretty_roundtrips_semantics() {
        let e = Element::new("a")
            .with_attr("x", "1")
            .with_child(Element::new("b").with_text("t1"))
            .with_child(Element::new("c").with_child(Element::new("d")));
        let back = Element::parse(&e.to_xml_pretty()).unwrap();
        assert_eq!(back, e);
    }
}
