//! A hand-written recursive-descent XML parser.

use crate::escape::unescape_text;
use crate::{Element, XmlError, XmlNode};

struct Parser<'a> {
    input: &'a str,
    pos: usize,
}

/// Parses a document: optional declaration/comments, one root element,
/// optional trailing whitespace/comments.
pub(crate) fn parse_document(input: &str) -> Result<Element, XmlError> {
    let mut p = Parser { input, pos: 0 };
    p.skip_prolog()?;
    let root = p.parse_element()?;
    p.skip_misc()?;
    if p.pos < p.input.len() {
        return Err(p.error("unexpected content after root element"));
    }
    Ok(root)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> XmlError {
        let line = self.input[..self.pos]
            .bytes()
            .filter(|b| *b == b'\n')
            .count()
            + 1;
        XmlError {
            offset: self.pos,
            line,
            message: message.into(),
        }
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<u8> {
        self.input.as_bytes().get(self.pos).copied()
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    /// Skips XML declaration, processing instructions, comments, DOCTYPE.
    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<?") {
                self.skip_until("?>")?;
            } else if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else if self.starts_with("<!DOCTYPE") {
                self.skip_until(">")?;
            } else {
                return Ok(());
            }
        }
    }

    /// Skips trailing whitespace and comments after the root element.
    fn skip_misc(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
            } else {
                return Ok(());
            }
        }
    }

    fn skip_until(&mut self, end: &str) -> Result<(), XmlError> {
        match self.rest().find(end) {
            Some(idx) => {
                self.pos += idx + end.len();
                Ok(())
            }
            None => Err(self.error(format!("unterminated construct, expected `{end}`"))),
        }
    }

    fn parse_name(&mut self) -> Result<&'a str, XmlError> {
        let start = self.pos;
        let bytes = self.input.as_bytes();
        while self.pos < bytes.len() {
            let b = bytes[self.pos];
            let ok = b.is_ascii_alphanumeric() || matches!(b, b'_' | b'-' | b'.' | b':');
            if !ok {
                break;
            }
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error("expected a name"));
        }
        Ok(&self.input[start..self.pos])
    }

    fn expect(&mut self, c: u8) -> Result<(), XmlError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", c as char)))
        }
    }

    fn parse_element(&mut self) -> Result<Element, XmlError> {
        self.expect(b'<')?;
        let name = self.parse_name()?.to_string();
        let mut element = Element::new(name.clone());

        // Attributes.
        loop {
            self.skip_ws();
            match self.peek() {
                Some(b'>') => {
                    self.pos += 1;
                    break;
                }
                Some(b'/') => {
                    self.pos += 1;
                    self.expect(b'>')?;
                    return Ok(element); // self-closing
                }
                Some(_) => {
                    let attr_name = self.parse_name()?.to_string();
                    self.skip_ws();
                    self.expect(b'=')?;
                    self.skip_ws();
                    let quote = match self.peek() {
                        Some(q @ (b'"' | b'\'')) => q,
                        _ => return Err(self.error("expected quoted attribute value")),
                    };
                    self.pos += 1;
                    let start = self.pos;
                    let Some(end_rel) = self.rest().find(quote as char) else {
                        return Err(self.error("unterminated attribute value"));
                    };
                    let raw = &self.input[start..start + end_rel];
                    self.pos = start + end_rel + 1;
                    let value = unescape_text(raw).map_err(|off| XmlError {
                        offset: start + off,
                        line: self.input[..start + off]
                            .bytes()
                            .filter(|b| *b == b'\n')
                            .count()
                            + 1,
                        message: "invalid entity in attribute value".into(),
                    })?;
                    element = element.with_attr(attr_name, value);
                }
                None => return Err(self.error("unexpected end of input in tag")),
            }
        }

        // Children until the matching end tag.
        loop {
            if self.starts_with("</") {
                self.pos += 2;
                let end_name = self.parse_name()?;
                if end_name != name {
                    return Err(self.error(format!(
                        "mismatched end tag: expected `</{name}>`, found `</{end_name}>`"
                    )));
                }
                self.skip_ws();
                self.expect(b'>')?;
                return Ok(element);
            }
            if self.starts_with("<!--") {
                self.skip_until("-->")?;
                continue;
            }
            match self.peek() {
                Some(b'<') => {
                    let child = self.parse_element()?;
                    element.push_child(child);
                }
                Some(_) => {
                    let start = self.pos;
                    let end_rel = self.rest().find('<').unwrap_or(self.rest().len());
                    let raw = &self.input[start..start + end_rel];
                    self.pos = start + end_rel;
                    let text = unescape_text(raw).map_err(|off| XmlError {
                        offset: start + off,
                        line: self.input[..start + off]
                            .bytes()
                            .filter(|b| *b == b'\n')
                            .count()
                            + 1,
                        message: "invalid entity in text".into(),
                    })?;
                    if !text.trim().is_empty() {
                        element.children.push(XmlNode::Text(text));
                    }
                }
                None => return Err(self.error(format!("unterminated element `{name}`"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure3_template() {
        let doc = Element::parse(
            r#"<FunctionTemplate>
    <Name>fGetNearByObjEq</Name>
    <Params>
        <P1>$ra</P1>
        <P2>$dec</P2>
        <P3>$radius</P3>
    </Params>
    <Shape>hypersphere</Shape>
    <NumDimensions>3</NumDimensions>
    <CenterCoordinate>
        <C1>cos($ra)*cos($dec)</C1>
        <C2>sin($ra)*cos($dec)</C2>
        <C3>sin($dec)</C3>
    </CenterCoordinate>
    <Radius>$radius</Radius>
</FunctionTemplate>"#,
        )
        .unwrap();
        assert_eq!(doc.name(), "FunctionTemplate");
        assert_eq!(doc.child_text("Shape"), Some("hypersphere"));
        assert_eq!(doc.child_text("NumDimensions"), Some("3"));
        let params = doc.child("Params").unwrap();
        assert_eq!(params.child_elements().count(), 3);
        assert_eq!(
            doc.child("CenterCoordinate").unwrap().child_text("C2"),
            Some("sin($ra)*cos($dec)")
        );
    }

    #[test]
    fn parses_declaration_comments_doctype() {
        let doc = Element::parse(
            "<?xml version=\"1.0\"?>\n<!DOCTYPE r>\n<!-- hi --><r a=\"1\"/>\n<!-- bye -->",
        )
        .unwrap();
        assert_eq!(doc.name(), "r");
        assert_eq!(doc.attr("a"), Some("1"));
    }

    #[test]
    fn attributes_with_both_quotes_and_entities() {
        let doc = Element::parse("<r a='x' b=\"a&amp;b &lt;c&gt;\"/>").unwrap();
        assert_eq!(doc.attr("a"), Some("x"));
        assert_eq!(doc.attr("b"), Some("a&b <c>"));
    }

    #[test]
    fn comments_inside_elements_are_skipped() {
        let doc = Element::parse("<r><!-- note --><a>1</a></r>").unwrap();
        assert_eq!(doc.child_text("a"), Some("1"));
    }

    #[test]
    fn error_reports_line() {
        let err = Element::parse("<r>\n<a>\n</b>\n</r>").unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("mismatched end tag"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Element::parse("").is_err());
        assert!(Element::parse("just text").is_err());
        assert!(Element::parse("<a>").is_err());
        assert!(Element::parse("<a></a><b></b>").is_err());
        assert!(Element::parse("<a x=5></a>").is_err());
        assert!(Element::parse("<a x=\"5></a>").is_err());
    }

    #[test]
    fn text_entities_unescape() {
        let doc = Element::parse("<t>1 &lt; 2 &amp;&amp; 3 &gt; 2</t>").unwrap();
        assert_eq!(doc.text(), "1 < 2 && 3 > 2");
    }
}
