//! A minimal XML parser and writer.
//!
//! The paper's function templates are XML files (its Figure 3 shows the
//! template of `fGetNearbyObjEq`), and the proxy of the paper stores query
//! results as XML documents. This crate implements exactly the XML subset
//! those artifacts need — elements, attributes, text with entity escaping,
//! comments, processing instructions/declarations (skipped) — with
//! positioned parse errors and a round-tripping writer. It has no
//! dependencies and makes no attempt at DTDs, namespaces, or CDATA.
//!
//! ```
//! use fp_xmlite::Element;
//!
//! let doc = Element::parse("<FunctionTemplate>\
//!     <Name>fGetNearByObjEq</Name>\
//!     <Shape>hypersphere</Shape>\
//! </FunctionTemplate>").unwrap();
//! assert_eq!(doc.name(), "FunctionTemplate");
//! assert_eq!(doc.child_text("Name"), Some("fGetNearByObjEq"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod escape;
mod parser;
mod writer;

pub use escape::{escape_text, unescape_text};

/// A node in an XML element tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A child element.
    Element(Element),
    /// A text run (already unescaped).
    Text(String),
}

/// An XML element: name, attributes in document order, and children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    name: String,
    attrs: Vec<(String, String)>,
    children: Vec<XmlNode>,
}

impl Element {
    /// Creates an empty element.
    pub fn new(name: impl Into<String>) -> Self {
        Element {
            name: name.into(),
            attrs: Vec::new(),
            children: Vec::new(),
        }
    }

    /// Parses a document and returns its root element.
    ///
    /// # Errors
    /// Returns a positioned [`XmlError`] on malformed input.
    pub fn parse(input: &str) -> Result<Element, XmlError> {
        parser::parse_document(input)
    }

    /// Element name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Attributes in document order.
    pub fn attrs(&self) -> &[(String, String)] {
        &self.attrs
    }

    /// Value of attribute `name`, if present.
    pub fn attr(&self, name: &str) -> Option<&str> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// Sets (or replaces) an attribute; returns `self` for chaining.
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Self {
        let name = name.into();
        let value = value.into();
        if let Some(slot) = self.attrs.iter_mut().find(|(k, _)| *k == name) {
            slot.1 = value;
        } else {
            self.attrs.push((name, value));
        }
        self
    }

    /// Appends a child element; returns `self` for chaining.
    pub fn with_child(mut self, child: Element) -> Self {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Appends a text node; returns `self` for chaining.
    pub fn with_text(mut self, text: impl Into<String>) -> Self {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// Appends a child element in place.
    pub fn push_child(&mut self, child: Element) {
        self.children.push(XmlNode::Element(child));
    }

    /// All child nodes.
    pub fn children(&self) -> &[XmlNode] {
        &self.children
    }

    /// Child elements only.
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|n| match n {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// First child element named `name`.
    pub fn child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// All child elements named `name`.
    pub fn children_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Element> + 'a {
        self.child_elements().filter(move |e| e.name == name)
    }

    /// Concatenated text content of this element (direct text children,
    /// trimmed).
    pub fn text(&self) -> String {
        let mut out = String::new();
        for n in &self.children {
            if let XmlNode::Text(t) = n {
                out.push_str(t);
            }
        }
        out.trim().to_string()
    }

    /// Trimmed text of the first child element named `name`.
    ///
    /// Returns `None` when there is no such child. The returned slice
    /// borrows from the child's single text node when possible.
    pub fn child_text(&self, name: &str) -> Option<&str> {
        let child = self.child(name)?;
        // Fast path: exactly one text child.
        match child.children.as_slice() {
            [XmlNode::Text(t)] => Some(t.trim()),
            [] => Some(""),
            _ => None,
        }
    }

    /// Serializes the element as a compact document (no pretty printing).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        writer::write_compact(self, &mut out);
        out
    }

    /// Serializes the element with two-space indentation.
    pub fn to_xml_pretty(&self) -> String {
        let mut out = String::new();
        writer::write_pretty(self, 0, &mut out);
        out
    }
}

/// A positioned XML parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the error in the input.
    pub offset: usize,
    /// 1-based line number.
    pub line: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl std::fmt::Display for XmlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "XML error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_api_roundtrips() {
        let e = Element::new("Params")
            .with_attr("count", "3")
            .with_child(Element::new("P1").with_text("$ra"))
            .with_child(Element::new("P2").with_text("$dec"));
        assert_eq!(e.attr("count"), Some("3"));
        assert_eq!(e.child_text("P1"), Some("$ra"));
        let parsed = Element::parse(&e.to_xml()).unwrap();
        assert_eq!(parsed, e);
        let pretty = Element::parse(&e.to_xml_pretty()).unwrap();
        assert_eq!(pretty.child_text("P2"), Some("$dec"));
    }

    #[test]
    fn with_attr_replaces() {
        let e = Element::new("a").with_attr("k", "1").with_attr("k", "2");
        assert_eq!(e.attrs().len(), 1);
        assert_eq!(e.attr("k"), Some("2"));
    }

    #[test]
    fn child_lookup() {
        let doc =
            Element::parse("<r><a>1</a><b>2</b><a>3</a><mixed>x<i/>y</mixed><empty/></r>").unwrap();
        assert_eq!(doc.child_text("a"), Some("1"));
        assert_eq!(doc.children_named("a").count(), 2);
        assert_eq!(doc.child("c"), None);
        // Mixed content has no single text
        assert_eq!(doc.child_text("mixed"), None);
        assert_eq!(doc.child_text("empty"), Some(""));
    }

    #[test]
    fn text_concatenates_and_trims() {
        let doc = Element::parse("<t>  hello <b>bold</b> world </t>").unwrap();
        assert_eq!(doc.text(), "hello  world");
    }
}
