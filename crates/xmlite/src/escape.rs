//! XML entity escaping and unescaping.

/// Escapes `text` for use as element text or attribute value.
pub fn escape_text(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Unescapes the five predefined entities plus decimal/hex character
/// references. Unknown entities are reported via `Err` with the byte offset
/// of the offending `&`.
pub fn unescape_text(text: &str) -> Result<String, usize> {
    let mut out = String::with_capacity(text.len());
    let bytes = text.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] != b'&' {
            // Advance one UTF-8 scalar.
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&text[i..i + ch_len]);
            i += ch_len;
            continue;
        }
        let Some(end_rel) = text[i..].find(';') else {
            return Err(i);
        };
        let entity = &text[i + 1..i + end_rel];
        match entity {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ => {
                let code = if let Some(hex) = entity
                    .strip_prefix("#x")
                    .or_else(|| entity.strip_prefix("#X"))
                {
                    u32::from_str_radix(hex, 16).map_err(|_| i)?
                } else if let Some(dec) = entity.strip_prefix('#') {
                    dec.parse::<u32>().map_err(|_| i)?
                } else {
                    return Err(i);
                };
                out.push(char::from_u32(code).ok_or(i)?);
            }
        }
        i += end_rel + 1;
    }
    Ok(out)
}

/// Byte length of the UTF-8 scalar starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_all_specials() {
        assert_eq!(escape_text("a<b>&\"'"), "a&lt;b&gt;&amp;&quot;&apos;");
    }

    #[test]
    fn unescape_roundtrip() {
        for s in ["", "plain", "a<b>&\"'", "mixed < text & more", "UTF-8 é ✓"] {
            assert_eq!(unescape_text(&escape_text(s)).unwrap(), s);
        }
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape_text("&#65;&#x42;&#x63;").unwrap(), "ABc");
    }

    #[test]
    fn bad_entities_error_with_offset() {
        assert_eq!(unescape_text("ab&bogus;"), Err(2));
        assert_eq!(unescape_text("&unterminated"), Err(0));
        assert_eq!(unescape_text("&#xZZ;"), Err(0));
        assert_eq!(unescape_text("&#1114112;"), Err(0)); // beyond char::MAX
    }
}
