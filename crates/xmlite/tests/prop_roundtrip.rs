//! Property tests: arbitrary element trees survive serialize → parse for
//! both the compact and pretty writers (up to insignificant whitespace,
//! which the test generator avoids emitting in text).

use fp_xmlite::{escape_text, unescape_text, Element};
use proptest::prelude::*;

fn arb_name() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_.-]{0,10}"
}

/// Text without leading/trailing whitespace and at least one non-space
/// character, so compact and pretty writers preserve it identically.
fn arb_text() -> impl Strategy<Value = String> {
    "[!-~ ]{1,30}"
        .prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty after trim", |s| !s.is_empty())
}

fn arb_element() -> impl Strategy<Value = Element> {
    let leaf = (arb_name(), prop::option::of(arb_text())).prop_map(|(n, t)| {
        let e = Element::new(n);
        match t {
            Some(t) => e.with_text(t),
            None => e,
        }
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            arb_name(),
            prop::collection::vec((arb_name(), arb_text()), 0..3),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                for (k, v) in attrs {
                    e = e.with_attr(k, v);
                }
                for c in children {
                    e = e.with_child(c);
                }
                e
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn compact_roundtrip(e in arb_element()) {
        let xml = e.to_xml();
        let back = Element::parse(&xml).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn pretty_roundtrip(e in arb_element()) {
        let xml = e.to_xml_pretty();
        let back = Element::parse(&xml).unwrap();
        prop_assert_eq!(back, e);
    }

    #[test]
    fn escape_unescape_roundtrip(s in "[ -~]{0,60}") {
        prop_assert_eq!(unescape_text(&escape_text(&s)).unwrap(), s);
    }
}
