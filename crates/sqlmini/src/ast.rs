//! The typed AST for the function-embedded query class.

use serde::{Deserialize, Serialize};

/// A literal constant in SQL text.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// Integer constant.
    Int(i64),
    /// Floating-point constant.
    Float(f64),
    /// String constant.
    Str(String),
    /// Boolean constant.
    Bool(bool),
    /// `NULL`.
    Null,
}

impl Literal {
    /// Numeric view of the literal, when it has one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Literal::Int(i) => Some(*i as f64),
            Literal::Float(f) => Some(*f),
            _ => None,
        }
    }
}

/// Binary operators, in SQL spelling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum BinOp {
    And,
    Or,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Like,
}

impl BinOp {
    /// SQL spelling of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Eq => "=",
            BinOp::Neq => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Like => "LIKE",
        }
    }

    /// Precedence for printing with minimal parentheses
    /// (higher binds tighter).
    pub fn precedence(self) -> u8 {
        match self {
            BinOp::Or => 1,
            BinOp::And => 2,
            BinOp::Eq
            | BinOp::Neq
            | BinOp::Lt
            | BinOp::Le
            | BinOp::Gt
            | BinOp::Ge
            | BinOp::Like => 3,
            BinOp::Add | BinOp::Sub => 4,
            BinOp::Mul | BinOp::Div | BinOp::Mod => 5,
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum UnOp {
    Neg,
    Not,
}

/// A scalar expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal constant.
    Literal(Literal),
    /// A `$name` template parameter.
    Param(String),
    /// A possibly-qualified column reference (`qualifier.name` or `name`).
    Column {
        /// Table alias or name qualifier, when present.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// A scalar function call such as `cos($ra)`.
    Call {
        /// Function name.
        name: String,
        /// Argument expressions.
        args: Vec<Expr>,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        expr: Box<Expr>,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// Whether the test is negated (`NOT BETWEEN`).
        negated: bool,
    },
    /// `expr IN (e1, e2, …)`.
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
        /// Whether the test is negated (`NOT IN`).
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// Whether the test is negated (`IS NOT NULL`).
        negated: bool,
    },
}

impl Expr {
    /// Convenience constructor for a column reference.
    pub fn col(qualifier: Option<&str>, name: &str) -> Expr {
        Expr::Column {
            qualifier: qualifier.map(str::to_string),
            name: name.to_string(),
        }
    }

    /// Convenience constructor for a binary expression.
    pub fn binary(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Walks the expression tree, invoking `f` on every node (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Expr)) {
        f(self);
        match self {
            Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => {}
            Expr::Call { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            Expr::Binary { left, right, .. } => {
                left.walk(f);
                right.walk(f);
            }
            Expr::Unary { expr, .. } => expr.walk(f),
            Expr::Between {
                expr, low, high, ..
            } => {
                expr.walk(f);
                low.walk(f);
                high.walk(f);
            }
            Expr::InList { expr, list, .. } => {
                expr.walk(f);
                for e in list {
                    e.walk(f);
                }
            }
            Expr::IsNull { expr, .. } => expr.walk(f),
        }
    }

    /// Collects the names of all `$params` in the expression.
    pub fn params(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.walk(&mut |e| {
            if let Expr::Param(p) = e {
                out.push(p.as_str());
            }
        });
        out
    }
}

/// One item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional `AS` alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// Output column alias, when given.
        alias: Option<String>,
    },
}

/// A `FROM`-clause source: either a base table or a table-valued function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TableSource {
    /// A base table with an optional alias.
    Table {
        /// Table name.
        name: String,
        /// Alias, when given.
        alias: Option<String>,
    },
    /// A table-valued function call with an optional alias — the defining
    /// feature of the query class.
    Function {
        /// Function name, e.g. `fGetNearbyObjEq`.
        name: String,
        /// Argument expressions (literals or `$params` in templates).
        args: Vec<Expr>,
        /// Alias, when given.
        alias: Option<String>,
    },
}

impl TableSource {
    /// The alias if present, otherwise the table/function name.
    pub fn binding_name(&self) -> &str {
        match self {
            TableSource::Table { name, alias } | TableSource::Function { name, alias, .. } => {
                alias.as_deref().unwrap_or(name)
            }
        }
    }
}

/// An `[INNER] JOIN source ON condition`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Join {
    /// The joined source.
    pub source: TableSource,
    /// The `ON` condition.
    pub on: Expr,
}

/// A parsed query of the supported class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// `TOP n` limit, when present.
    pub top: Option<u64>,
    /// The `SELECT` list.
    pub select: Vec<SelectItem>,
    /// The primary `FROM` source.
    pub from: TableSource,
    /// Zero or more joins.
    pub joins: Vec<Join>,
    /// The `WHERE` condition, when present.
    pub where_clause: Option<Expr>,
    /// `ORDER BY column [ASC|DESC]`, when present
    /// (`true` = ascending).
    pub order_by: Option<(String, bool)>,
}

impl Query {
    /// The embedded table-valued function call, when the primary source is
    /// one: `(name, args, alias)`.
    pub fn embedded_function(&self) -> Option<(&str, &[Expr], Option<&str>)> {
        match &self.from {
            TableSource::Function { name, args, alias } => {
                Some((name.as_str(), args.as_slice(), alias.as_deref()))
            }
            TableSource::Table { .. } => None,
        }
    }

    /// All `$param` names anywhere in the query, in first-appearance order
    /// (duplicates removed).
    pub fn params(&self) -> Vec<String> {
        let mut seen = Vec::new();
        let mut add = |p: &str| {
            if !seen.iter().any(|s: &String| s == p) {
                seen.push(p.to_string());
            }
        };
        let visit_expr = |e: &Expr, add: &mut dyn FnMut(&str)| {
            e.walk(&mut |n| {
                if let Expr::Param(p) = n {
                    add(p);
                }
            });
        };
        for item in &self.select {
            if let SelectItem::Expr { expr, .. } = item {
                visit_expr(expr, &mut add);
            }
        }
        if let TableSource::Function { args, .. } = &self.from {
            for a in args {
                visit_expr(a, &mut add);
            }
        }
        for j in &self.joins {
            if let TableSource::Function { args, .. } = &j.source {
                for a in args {
                    visit_expr(a, &mut add);
                }
            }
            visit_expr(&j.on, &mut add);
        }
        if let Some(w) = &self.where_clause {
            visit_expr(w, &mut add);
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_dedup_in_order() {
        let q = Query {
            top: None,
            select: vec![SelectItem::Wildcard],
            from: TableSource::Function {
                name: "f".into(),
                args: vec![Expr::Param("ra".into()), Expr::Param("dec".into())],
                alias: None,
            },
            joins: vec![],
            where_clause: Some(Expr::binary(
                BinOp::Lt,
                Expr::col(None, "r"),
                Expr::Param("ra".into()),
            )),
            order_by: None,
        };
        assert_eq!(q.params(), vec!["ra".to_string(), "dec".to_string()]);
    }

    #[test]
    fn embedded_function_accessor() {
        let q = Query {
            top: Some(5),
            select: vec![SelectItem::Wildcard],
            from: TableSource::Table {
                name: "t".into(),
                alias: None,
            },
            joins: vec![],
            where_clause: None,
            order_by: None,
        };
        assert!(q.embedded_function().is_none());
    }

    #[test]
    fn binding_name_prefers_alias() {
        let t = TableSource::Table {
            name: "PhotoPrimary".into(),
            alias: Some("p".into()),
        };
        assert_eq!(t.binding_name(), "p");
        let f = TableSource::Function {
            name: "f".into(),
            args: vec![],
            alias: None,
        };
        assert_eq!(f.binding_name(), "f");
    }

    #[test]
    fn walk_visits_every_node() {
        let e = Expr::Between {
            expr: Box::new(Expr::col(Some("p"), "r")),
            low: Box::new(Expr::Literal(Literal::Int(0))),
            high: Box::new(Expr::Param("hi".into())),
            negated: false,
        };
        let mut count = 0;
        e.walk(&mut |_| count += 1);
        assert_eq!(count, 4);
        assert_eq!(e.params(), vec!["hi"]);
    }
}
