//! The SQL tokenizer.

use crate::token::{Keyword, Token, TokenKind};
use crate::SqlError;

/// Tokenizes `input`, appending a final [`TokenKind::Eof`].
///
/// # Errors
/// Returns a positioned error on unterminated strings, malformed numbers,
/// or unexpected characters.
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;

    while i < bytes.len() {
        let start = i;
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                i += 1;
            }
            b'-' if bytes.get(i + 1) == Some(&b'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => push1(&mut tokens, &mut i, start, TokenKind::LParen),
            b')' => push1(&mut tokens, &mut i, start, TokenKind::RParen),
            b',' => push1(&mut tokens, &mut i, start, TokenKind::Comma),
            b'*' => push1(&mut tokens, &mut i, start, TokenKind::Star),
            b'+' => push1(&mut tokens, &mut i, start, TokenKind::Plus),
            b'-' => push1(&mut tokens, &mut i, start, TokenKind::Minus),
            b'/' => push1(&mut tokens, &mut i, start, TokenKind::Slash),
            b'%' => push1(&mut tokens, &mut i, start, TokenKind::Percent),
            b'=' => push1(&mut tokens, &mut i, start, TokenKind::Eq),
            b'.' if !matches!(bytes.get(i + 1), Some(d) if d.is_ascii_digit()) => {
                push1(&mut tokens, &mut i, start, TokenKind::Dot)
            }
            b'<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Le,
                    });
                } else if bytes.get(i + 1) == Some(&b'>') {
                    i += 2;
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Neq,
                    });
                } else {
                    push1(&mut tokens, &mut i, start, TokenKind::Lt);
                }
            }
            b'>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Ge,
                    });
                } else {
                    push1(&mut tokens, &mut i, start, TokenKind::Gt);
                }
            }
            b'!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    i += 2;
                    tokens.push(Token {
                        offset: start,
                        kind: TokenKind::Neq,
                    });
                } else {
                    return Err(SqlError::new(start, "unexpected `!`"));
                }
            }
            b'\'' => {
                // String literal with '' escaping.
                let mut value = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            value.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(_) => {
                            let ch_end = next_char_boundary(input, i);
                            value.push_str(&input[i..ch_end]);
                            i = ch_end;
                        }
                        None => return Err(SqlError::new(start, "unterminated string literal")),
                    }
                }
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Str(value),
                });
            }
            b'[' => {
                // Bracket-quoted identifier (SQL Server style, used by
                // SkyServer docs).
                let Some(close) = input[i..].find(']') else {
                    return Err(SqlError::new(start, "unterminated `[identifier]`"));
                };
                let name = input[i + 1..i + close].to_string();
                if name.is_empty() {
                    return Err(SqlError::new(start, "empty `[]` identifier"));
                }
                i += close + 1;
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Ident(name),
                });
            }
            b'$' => {
                i += 1;
                let word_start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                if i == word_start {
                    return Err(SqlError::new(start, "`$` must be followed by a name"));
                }
                tokens.push(Token {
                    offset: start,
                    kind: TokenKind::Param(input[word_start..i].to_string()),
                });
            }
            b'0'..=b'9' | b'.' => {
                let mut end = i;
                let mut is_float = false;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                if end < bytes.len() && bytes[end] == b'.' {
                    is_float = true;
                    end += 1;
                    while end < bytes.len() && bytes[end].is_ascii_digit() {
                        end += 1;
                    }
                }
                if end < bytes.len() && (bytes[end] == b'e' || bytes[end] == b'E') {
                    let mut exp = end + 1;
                    if exp < bytes.len() && (bytes[exp] == b'+' || bytes[exp] == b'-') {
                        exp += 1;
                    }
                    let digits_start = exp;
                    while exp < bytes.len() && bytes[exp].is_ascii_digit() {
                        exp += 1;
                    }
                    if exp > digits_start {
                        is_float = true;
                        end = exp;
                    }
                }
                let text = &input[i..end];
                let kind = if is_float {
                    TokenKind::Float(
                        text.parse::<f64>()
                            .map_err(|_| SqlError::new(start, "malformed number"))?,
                    )
                } else {
                    TokenKind::Int(
                        text.parse::<i64>()
                            .map_err(|_| SqlError::new(start, "integer out of range"))?,
                    )
                };
                i = end;
                tokens.push(Token {
                    offset: start,
                    kind,
                });
            }
            c if c.is_ascii_alphabetic() || c == b'_' => {
                let mut end = i;
                while end < bytes.len()
                    && (bytes[end].is_ascii_alphanumeric() || bytes[end] == b'_')
                {
                    end += 1;
                }
                let word = &input[i..end];
                i = end;
                let kind = match Keyword::lookup(word) {
                    Some(kw) => TokenKind::Keyword(kw),
                    None => TokenKind::Ident(word.to_string()),
                };
                tokens.push(Token {
                    offset: start,
                    kind,
                });
            }
            other => {
                return Err(SqlError::new(
                    start,
                    format!("unexpected character `{}`", other as char),
                ));
            }
        }
    }

    tokens.push(Token {
        offset: input.len(),
        kind: TokenKind::Eof,
    });
    Ok(tokens)
}

fn push1(tokens: &mut Vec<Token>, i: &mut usize, offset: usize, kind: TokenKind) {
    tokens.push(Token { offset, kind });
    *i += 1;
}

fn next_char_boundary(s: &str, i: usize) -> usize {
    let mut j = i + 1;
    while j < s.len() && !s.is_char_boundary(j) {
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        tokenize(sql).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_the_radial_template() {
        let ks = kinds("SELECT TOP $n * FROM fGetNearbyObjEq($ra, $dec, $radius) n");
        assert_eq!(ks[0], TokenKind::Keyword(Keyword::Select));
        assert_eq!(ks[1], TokenKind::Keyword(Keyword::Top));
        assert_eq!(ks[2], TokenKind::Param("n".into()));
        assert_eq!(ks[3], TokenKind::Star);
        assert_eq!(ks[5], TokenKind::Ident("fGetNearbyObjEq".into()));
        assert!(ks.contains(&TokenKind::Param("radius".into())));
        assert_eq!(*ks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn numbers_int_float_exponent() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("42.5")[0], TokenKind::Float(42.5));
        assert_eq!(kinds(".5")[0], TokenKind::Float(0.5));
        assert_eq!(kinds("1e3")[0], TokenKind::Float(1000.0));
        assert_eq!(kinds("2.5E-2")[0], TokenKind::Float(0.025));
    }

    #[test]
    fn dot_vs_decimal() {
        // p.ra is Ident Dot Ident, not a float
        let ks = kinds("p.ra");
        assert_eq!(
            ks[..3],
            [
                TokenKind::Ident("p".into()),
                TokenKind::Dot,
                TokenKind::Ident("ra".into())
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
        assert!(tokenize("'open").is_err());
    }

    #[test]
    fn comparison_operators() {
        let ks = kinds("a <= b >= c <> d != e < f > g = h");
        let ops: Vec<&TokenKind> = ks
            .iter()
            .filter(|k| {
                matches!(
                    k,
                    TokenKind::Le
                        | TokenKind::Ge
                        | TokenKind::Neq
                        | TokenKind::Lt
                        | TokenKind::Gt
                        | TokenKind::Eq
                )
            })
            .collect();
        assert_eq!(ops.len(), 7);
    }

    #[test]
    fn comments_are_skipped() {
        let ks = kinds("SELECT -- the columns\n a");
        assert_eq!(ks.len(), 3); // SELECT, a, EOF
    }

    #[test]
    fn bracketed_identifiers() {
        assert_eq!(
            kinds("[Photo Primary]")[0],
            TokenKind::Ident("Photo Primary".into())
        );
        assert!(tokenize("[oops").is_err());
    }

    #[test]
    fn offsets_are_recorded() {
        let ts = tokenize("SELECT a").unwrap();
        assert_eq!(ts[0].offset, 0);
        assert_eq!(ts[1].offset, 7);
    }

    #[test]
    fn rejects_junk() {
        assert!(tokenize("SELECT #").is_err());
        assert!(tokenize("$").is_err());
        assert!(tokenize("a ! b").is_err());
    }
}
