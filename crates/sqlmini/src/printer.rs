//! SQL text generation from ASTs.
//!
//! The proxy needs to *emit* SQL, not just read it: remainder queries are
//! new statements synthesized from a cached query's region and the new
//! query's region, then sent to the origin site's free-form SQL endpoint.
//! The printer produces canonical text (uppercase keywords, minimal
//! parentheses driven by operator precedence) so that equal ASTs print
//! identically — the proxy also uses printed text as an exact-match cache
//! key fallback.

use crate::ast::{Expr, Literal, Query, SelectItem, TableSource, UnOp};
use std::fmt::Write as _;

impl Query {
    /// Renders the query as canonical SQL text. The output re-parses to an
    /// equal AST.
    pub fn to_sql(&self) -> String {
        let mut s = String::with_capacity(128);
        s.push_str("SELECT ");
        if let Some(n) = self.top {
            let _ = write!(s, "TOP {n} ");
        }
        for (i, item) in self.select.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match item {
                SelectItem::Wildcard => s.push('*'),
                SelectItem::QualifiedWildcard(q) => {
                    let _ = write!(s, "{q}.*");
                }
                SelectItem::Expr { expr, alias } => {
                    write_expr(&mut s, expr, 0);
                    if let Some(a) = alias {
                        let _ = write!(s, " AS {a}");
                    }
                }
            }
        }
        s.push_str(" FROM ");
        write_source(&mut s, &self.from);
        for j in &self.joins {
            s.push_str(" JOIN ");
            write_source(&mut s, &j.source);
            s.push_str(" ON ");
            write_expr(&mut s, &j.on, 0);
        }
        if let Some(w) = &self.where_clause {
            s.push_str(" WHERE ");
            write_expr(&mut s, w, 0);
        }
        if let Some((col, asc)) = &self.order_by {
            let _ = write!(s, " ORDER BY {col} {}", if *asc { "ASC" } else { "DESC" });
        }
        s
    }
}

impl std::fmt::Display for Query {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_sql())
    }
}

impl Expr {
    /// Renders the expression as SQL text.
    pub fn to_sql(&self) -> String {
        let mut s = String::new();
        write_expr(&mut s, self, 0);
        s
    }
}

impl std::fmt::Display for Expr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_sql())
    }
}

fn write_source(s: &mut String, src: &TableSource) {
    match src {
        TableSource::Table { name, alias } => {
            s.push_str(name);
            if let Some(a) = alias {
                let _ = write!(s, " {a}");
            }
        }
        TableSource::Function { name, args, alias } => {
            s.push_str(name);
            s.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_expr(s, a, 0);
            }
            s.push(')');
            if let Some(a) = alias {
                let _ = write!(s, " {a}");
            }
        }
    }
}

/// Writes `e`, parenthesizing when its top-level operator binds looser than
/// `min_prec` (the precedence context of the caller).
fn write_expr(s: &mut String, e: &Expr, min_prec: u8) {
    match e {
        Expr::Literal(lit) => write_literal(s, lit),
        Expr::Param(p) => {
            let _ = write!(s, "${p}");
        }
        Expr::Column { qualifier, name } => {
            if let Some(q) = qualifier {
                let _ = write!(s, "{q}.");
            }
            s.push_str(name);
        }
        Expr::Call { name, args } => {
            s.push_str(name);
            s.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_expr(s, a, 0);
            }
            s.push(')');
        }
        Expr::Binary { op, left, right } => {
            let prec = op.precedence();
            let need_parens = prec < min_prec;
            if need_parens {
                s.push('(');
            }
            // Comparisons (precedence 3) are non-associative in the
            // grammar: a nested comparison on either side must be
            // parenthesized, so the left context is tightened too.
            let left_prec = if prec == 3 { prec + 1 } else { prec };
            write_expr(s, left, left_prec);
            let _ = write!(s, " {} ", op.as_str());
            // Right operand of a left-associative chain needs one level
            // tighter binding to force parens around same-precedence ops.
            write_expr(s, right, prec + 1);
            if need_parens {
                s.push(')');
            }
        }
        Expr::Unary { op, expr } => match op {
            UnOp::Neg => {
                s.push('-');
                // `--x` would lex as a line comment, and a leading
                // negative literal would fuse the signs; parenthesize
                // anything that starts with `-` itself.
                let starts_negative = matches!(
                    expr.as_ref(),
                    Expr::Unary { op: UnOp::Neg, .. } | Expr::Literal(Literal::Int(i64::MIN..=-1))
                ) || matches!(expr.as_ref(), Expr::Literal(Literal::Float(f)) if *f < 0.0);
                if starts_negative {
                    s.push('(');
                    write_expr(s, expr, 0);
                    s.push(')');
                } else {
                    write_expr(s, expr, u8::MAX);
                }
            }
            UnOp::Not => {
                // NOT sits between AND (2) and the comparisons (3): as an
                // operand of anything tighter it must be parenthesized.
                let need_parens = min_prec > 2;
                if need_parens {
                    s.push('(');
                }
                s.push_str("NOT ");
                write_expr(s, expr, 3);
                if need_parens {
                    s.push(')');
                }
            }
        },
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            // BETWEEN parses at the comparison level and is
            // non-associative there.
            let need_parens = min_prec > 3;
            if need_parens {
                s.push('(');
            }
            write_expr(s, expr, 4);
            if *negated {
                s.push_str(" NOT");
            }
            s.push_str(" BETWEEN ");
            write_expr(s, low, 4);
            s.push_str(" AND ");
            write_expr(s, high, 4);
            if need_parens {
                s.push(')');
            }
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let need_parens = min_prec > 3;
            if need_parens {
                s.push('(');
            }
            write_expr(s, expr, 4);
            if *negated {
                s.push_str(" NOT");
            }
            s.push_str(" IN (");
            for (i, item) in list.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                write_expr(s, item, 0);
            }
            s.push(')');
            if need_parens {
                s.push(')');
            }
        }
        Expr::IsNull { expr, negated } => {
            let need_parens = min_prec > 3;
            if need_parens {
                s.push('(');
            }
            write_expr(s, expr, 4);
            s.push_str(if *negated { " IS NOT NULL" } else { " IS NULL" });
            if need_parens {
                s.push(')');
            }
        }
    }
}

fn write_literal(s: &mut String, lit: &Literal) {
    match lit {
        Literal::Int(i) => {
            let _ = write!(s, "{i}");
        }
        Literal::Float(f) => {
            // Always keep a decimal point so the literal re-lexes as Float.
            if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
                let _ = write!(s, "{f:.1}");
            } else {
                let _ = write!(s, "{f}");
            }
        }
        Literal::Str(v) => {
            s.push('\'');
            for c in v.chars() {
                if c == '\'' {
                    s.push('\'');
                }
                s.push(c);
            }
            s.push('\'');
        }
        Literal::Bool(b) => s.push_str(if *b { "TRUE" } else { "FALSE" }),
        Literal::Null => s.push_str("NULL"),
    }
}

#[cfg(test)]
mod tests {

    use crate::parser::{parse_expr, parse_query};

    fn roundtrip(sql: &str) {
        let q = parse_query(sql).unwrap();
        let printed = q.to_sql();
        let q2 = parse_query(&printed).unwrap_or_else(|e| {
            panic!("reparse of `{printed}` failed: {e}");
        });
        assert_eq!(q, q2, "printed: {printed}");
    }

    #[test]
    fn roundtrips_query_shapes() {
        roundtrip("SELECT * FROM t");
        roundtrip("SELECT TOP 5 a, b AS c, t.* FROM t u WHERE a < 5");
        roundtrip(
            "SELECT TOP 1000 p.objID FROM fGetNearbyObjEq(185.0, 1.5, 30.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID WHERE p.r < 20.0 ORDER BY objID ASC",
        );
        roundtrip("SELECT * FROM f($a, $b) x WHERE c BETWEEN $lo AND $hi AND d NOT IN (1, 2)");
        roundtrip("SELECT * FROM t WHERE NOT (a = 1 OR b = 2) AND c IS NOT NULL");
        roundtrip("SELECT * FROM t WHERE s LIKE 'it''s %'");
        roundtrip("SELECT * FROM t WHERE -a < -5 AND b = -2.5");
    }

    #[test]
    fn parentheses_only_where_needed() {
        let e = parse_expr("(a + b) * c").unwrap();
        assert_eq!(e.to_sql(), "(a + b) * c");
        let e = parse_expr("a + b * c").unwrap();
        assert_eq!(e.to_sql(), "a + b * c");
        let e = parse_expr("a - (b - c)").unwrap();
        assert_eq!(e.to_sql(), "a - (b - c)");
        let e = parse_expr("(a OR b) AND c").unwrap();
        assert_eq!(e.to_sql(), "(a OR b) AND c");
    }

    #[test]
    fn float_literals_keep_their_point() {
        let e = parse_expr("2.0").unwrap();
        assert_eq!(e.to_sql(), "2.0");
        let q1 = parse_expr(&e.to_sql()).unwrap();
        assert_eq!(q1, e);
    }

    #[test]
    fn canonical_text_is_deterministic() {
        let a = parse_query("select   top 3 * from T where x=1 and y=2").unwrap();
        let b = parse_query("SELECT TOP 3 * FROM T WHERE x = 1 AND y = 2").unwrap();
        assert_eq!(a.to_sql(), b.to_sql());
    }
}
