//! Recursive-descent parser for the function-embedded query class.

use crate::ast::{BinOp, Expr, Join, Literal, Query, SelectItem, TableSource, UnOp};
use crate::lexer::tokenize;
use crate::token::{Keyword, Token, TokenKind};
use crate::SqlError;

/// Parses one `SELECT` statement of the supported class.
///
/// # Errors
/// Returns a positioned [`SqlError`] on lexical or syntactic problems,
/// including trailing garbage after the statement.
pub fn parse_query(sql: &str) -> Result<Query, SqlError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.query()?;
    p.expect_eof()?;
    Ok(q)
}

/// Parses a standalone scalar expression (used by template files for the
/// coordinate-mapping formulas like `cos($ra)*cos($dec)`).
///
/// # Errors
/// Returns a positioned [`SqlError`] on malformed input.
pub fn parse_expr(text: &str) -> Result<Expr, SqlError> {
    let tokens = tokenize(text)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn peek2(&self) -> &TokenKind {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    fn bump(&mut self) -> TokenKind {
        let kind = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        kind
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn eat_kw(&mut self, kw: Keyword) -> bool {
        self.eat(&TokenKind::Keyword(kw))
    }

    fn expect_kw(&mut self, kw: Keyword) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::new(
                self.offset(),
                format!("expected `{}`", kw.as_str()),
            ))
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<(), SqlError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(SqlError::new(self.offset(), format!("expected {what}")))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(SqlError::new(self.offset(), "unexpected trailing input"))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, SqlError> {
        match self.peek().clone() {
            TokenKind::Ident(name) => {
                self.bump();
                Ok(name)
            }
            _ => Err(SqlError::new(self.offset(), format!("expected {what}"))),
        }
    }

    fn query(&mut self) -> Result<Query, SqlError> {
        self.expect_kw(Keyword::Select)?;

        let top = if self.eat_kw(Keyword::Top) {
            match self.bump() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                _ => {
                    return Err(SqlError::new(
                        self.offset(),
                        "TOP requires a non-negative integer",
                    ))
                }
            }
        } else {
            None
        };

        let select = self.select_list()?;
        self.expect_kw(Keyword::From)?;
        let from = self.table_source()?;

        let mut joins = Vec::new();
        loop {
            let inner = self.eat_kw(Keyword::Inner);
            if self.eat_kw(Keyword::Join) {
                let source = self.table_source()?;
                self.expect_kw(Keyword::On)?;
                let on = self.expr()?;
                joins.push(Join { source, on });
            } else if inner {
                return Err(SqlError::new(
                    self.offset(),
                    "expected `JOIN` after `INNER`",
                ));
            } else {
                break;
            }
        }

        let where_clause = if self.eat_kw(Keyword::Where) {
            Some(self.expr()?)
        } else {
            None
        };

        let order_by = if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            let col = self.ident("column name after ORDER BY")?;
            let asc = if self.eat_kw(Keyword::Desc) {
                false
            } else {
                self.eat_kw(Keyword::Asc);
                true
            };
            Some((col, asc))
        } else {
            None
        };

        Ok(Query {
            top,
            select,
            from,
            joins,
            where_clause,
            order_by,
        })
    }

    fn select_list(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = Vec::new();
        loop {
            items.push(self.select_item()?);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (TokenKind::Ident(q), TokenKind::Dot) = (self.peek(), self.peek2()) {
            let third = self.tokens.get(self.pos + 2).map(|t| &t.kind);
            if third == Some(&TokenKind::Star) {
                let q = q.clone();
                self.bump();
                self.bump();
                self.bump();
                return Ok(SelectItem::QualifiedWildcard(q));
            }
        }
        let expr = self.expr()?;
        let alias = if self.eat_kw(Keyword::As) {
            Some(self.ident("alias after AS")?)
        } else if let TokenKind::Ident(_) = self.peek() {
            // Bare alias (`SELECT a b`): allowed only directly after a
            // column/call, mirroring common SQL.
            Some(self.ident("alias")?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_source(&mut self) -> Result<TableSource, SqlError> {
        let name = self.ident("table or function name")?;
        if self.eat(&TokenKind::LParen) {
            let mut args = Vec::new();
            if !self.eat(&TokenKind::RParen) {
                loop {
                    args.push(self.expr()?);
                    if self.eat(&TokenKind::RParen) {
                        break;
                    }
                    self.expect(TokenKind::Comma, "`,` or `)` in argument list")?;
                }
            }
            let alias = self.opt_alias()?;
            Ok(TableSource::Function { name, args, alias })
        } else {
            let alias = self.opt_alias()?;
            Ok(TableSource::Table { name, alias })
        }
    }

    fn opt_alias(&mut self) -> Result<Option<String>, SqlError> {
        if self.eat_kw(Keyword::As) {
            return Ok(Some(self.ident("alias after AS")?));
        }
        if let TokenKind::Ident(_) = self.peek() {
            return Ok(Some(self.ident("alias")?));
        }
        Ok(None)
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::binary(BinOp::Or, left, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_kw(Keyword::And) {
            let right = self.not_expr()?;
            left = Expr::binary(BinOp::And, left, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.eat_kw(Keyword::Not) {
            let inner = self.not_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(inner),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SqlError> {
        let left = self.additive()?;

        // Optional NOT before BETWEEN / IN / LIKE.
        let negated = if matches!(self.peek(), TokenKind::Keyword(Keyword::Not))
            && matches!(
                self.peek2(),
                TokenKind::Keyword(Keyword::Between | Keyword::In | Keyword::Like)
            ) {
            self.bump();
            true
        } else {
            false
        };

        if self.eat_kw(Keyword::Between) {
            let low = self.additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::In) {
            self.expect(TokenKind::LParen, "`(` after IN")?;
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if self.eat(&TokenKind::RParen) {
                    break;
                }
                self.expect(TokenKind::Comma, "`,` or `)` in IN list")?;
            }
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }
        if self.eat_kw(Keyword::Like) {
            let pattern = self.additive()?;
            let like = Expr::binary(BinOp::Like, left, pattern);
            return Ok(if negated {
                Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(like),
                }
            } else {
                like
            });
        }
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        let op = match self.peek() {
            TokenKind::Eq => Some(BinOp::Eq),
            TokenKind::Neq => Some(BinOp::Neq),
            TokenKind::Lt => Some(BinOp::Lt),
            TokenKind::Le => Some(BinOp::Le),
            TokenKind::Gt => Some(BinOp::Gt),
            TokenKind::Ge => Some(BinOp::Ge),
            _ => None,
        };
        if let Some(op) = op {
            self.bump();
            let right = self.additive()?;
            return Ok(Expr::binary(op, left, right));
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let right = self.multiplicative()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let right = self.unary()?;
            left = Expr::binary(op, left, right);
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            // Fold negation into numeric literals for cleaner ASTs.
            return Ok(match inner {
                Expr::Literal(Literal::Int(i)) => Expr::Literal(Literal::Int(-i)),
                Expr::Literal(Literal::Float(f)) => Expr::Literal(Literal::Float(-f)),
                other => Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(other),
                },
            });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.bump();
                Ok(Expr::Literal(Literal::Int(i)))
            }
            TokenKind::Float(f) => {
                self.bump();
                Ok(Expr::Literal(Literal::Float(f)))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Literal(Literal::Str(s)))
            }
            TokenKind::Param(p) => {
                self.bump();
                Ok(Expr::Param(p))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.bump();
                Ok(Expr::Literal(Literal::Null))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.bump();
                Ok(Expr::Literal(Literal::Bool(false)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    if !self.eat(&TokenKind::RParen) {
                        loop {
                            args.push(self.expr()?);
                            if self.eat(&TokenKind::RParen) {
                                break;
                            }
                            self.expect(TokenKind::Comma, "`,` or `)` in call")?;
                        }
                    }
                    return Ok(Expr::Call { name, args });
                }
                if self.eat(&TokenKind::Dot) {
                    let col = self.ident("column after `.`")?;
                    return Ok(Expr::Column {
                        qualifier: Some(name),
                        name: col,
                    });
                }
                Ok(Expr::Column {
                    qualifier: None,
                    name,
                })
            }
            other => Err(SqlError::new(
                self.offset(),
                format!("unexpected token {other:?} in expression"),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_radial_query() {
        let q = parse_query(
            "SELECT TOP 1000 p.objID, p.run, p.ra, p.dec, p.cx, p.cy, p.cz \
             FROM fGetNearbyObjEq(185.0, 1.5, 30.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID \
             WHERE p.u BETWEEN 0.0 AND 22.5 AND p.r < 20.0",
        )
        .unwrap();
        assert_eq!(q.top, Some(1000));
        assert_eq!(q.select.len(), 7);
        let (name, args, alias) = q.embedded_function().unwrap();
        assert_eq!(name, "fGetNearbyObjEq");
        assert_eq!(args.len(), 3);
        assert_eq!(alias, Some("n"));
        assert_eq!(q.joins.len(), 1);
        assert!(q.where_clause.is_some());
    }

    #[test]
    fn parses_template_with_params() {
        let q =
            parse_query("SELECT * FROM fGetObjFromRect($min_ra, $max_ra, $min_dec, $max_dec) r")
                .unwrap();
        assert_eq!(q.params(), vec!["min_ra", "max_ra", "min_dec", "max_dec"]);
    }

    #[test]
    fn operator_precedence() {
        let q = parse_query("SELECT * FROM t WHERE a + b * c = d OR e AND f < 1").unwrap();
        let w = q.where_clause.unwrap();
        // Top level must be OR.
        let Expr::Binary {
            op: BinOp::Or,
            left,
            right,
        } = &w
        else {
            panic!("expected OR at top: {w:?}");
        };
        // Left: a + b*c = d
        let Expr::Binary {
            op: BinOp::Eq,
            left: add,
            ..
        } = left.as_ref()
        else {
            panic!("expected = on left");
        };
        let Expr::Binary {
            op: BinOp::Add,
            right: mul,
            ..
        } = add.as_ref()
        else {
            panic!("expected + inside =");
        };
        assert!(matches!(mul.as_ref(), Expr::Binary { op: BinOp::Mul, .. }));
        // Right: e AND f < 1
        assert!(matches!(
            right.as_ref(),
            Expr::Binary { op: BinOp::And, .. }
        ));
    }

    #[test]
    fn negative_literals_fold() {
        let q = parse_query("SELECT * FROM t WHERE a > -5 AND b < -2.5").unwrap();
        let mut found = 0;
        q.where_clause.unwrap().walk(&mut |e| match e {
            Expr::Literal(Literal::Int(-5)) => found += 1,
            Expr::Literal(Literal::Float(f)) if *f == -2.5 => found += 1,
            _ => {}
        });
        assert_eq!(found, 2);
    }

    #[test]
    fn between_in_like_is_null() {
        let q = parse_query(
            "SELECT * FROM t WHERE a BETWEEN 1 AND 2 AND b IN (1, 2, 3) \
             AND c LIKE 'x%' AND d IS NOT NULL AND e NOT BETWEEN 3 AND 4 \
             AND f NOT IN (5) AND g IS NULL",
        )
        .unwrap();
        let mut betweens = 0;
        let mut ins = 0;
        let mut likes = 0;
        let mut nulls = 0;
        q.where_clause.unwrap().walk(&mut |e| match e {
            Expr::Between { negated, .. } => betweens += 1 + usize::from(*negated),
            Expr::InList { negated, .. } => ins += 1 + usize::from(*negated),
            Expr::Binary {
                op: BinOp::Like, ..
            } => likes += 1,
            Expr::IsNull { .. } => nulls += 1,
            _ => {}
        });
        assert_eq!(betweens, 3); // one plain + one negated (counted twice)
        assert_eq!(ins, 3);
        assert_eq!(likes, 1);
        assert_eq!(nulls, 2);
    }

    #[test]
    fn multiple_joins_and_aliases() {
        let q = parse_query(
            "SELECT a.*, b.x y FROM t AS a JOIN u b ON a.id = b.id \
             INNER JOIN v ON b.id = v.id ORDER BY x DESC",
        )
        .unwrap();
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.order_by, Some(("x".into(), false)));
        assert!(matches!(&q.select[0], SelectItem::QualifiedWildcard(a) if a == "a"));
        assert!(matches!(&q.select[1], SelectItem::Expr { alias: Some(al), .. } if al == "y"));
    }

    #[test]
    fn rejects_malformed_queries() {
        for bad in [
            "",
            "SELECT",
            "SELECT *",
            "SELECT * FROM",
            "SELECT * FROM f( WHERE",
            "SELECT * FROM t WHERE",
            "SELECT * FROM t extra garbage (",
            "SELECT TOP x * FROM t",
            "SELECT * FROM t INNER t2 ON a = b",
            "SELECT * FROM t JOIN u",
            "SELECT * FROM t ORDER BY",
        ] {
            assert!(parse_query(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn parse_expr_standalone() {
        let e = parse_expr("cos($ra)*cos($dec)").unwrap();
        assert!(matches!(e, Expr::Binary { op: BinOp::Mul, .. }));
        assert_eq!(e.params(), vec!["ra", "dec"]);
        assert!(parse_expr("cos(").is_err());
        assert!(parse_expr("1 2").is_err());
    }

    #[test]
    fn nested_not() {
        let q = parse_query("SELECT * FROM t WHERE NOT NOT a = 1").unwrap();
        let w = q.where_clause.unwrap();
        let Expr::Unary {
            op: UnOp::Not,
            expr,
        } = &w
        else {
            panic!()
        };
        assert!(matches!(expr.as_ref(), Expr::Unary { op: UnOp::Not, .. }));
    }
}
