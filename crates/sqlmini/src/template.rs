//! Parameterized query templates and structural matching.
//!
//! A **function-embedded query template** is a query of the supported class
//! whose constants have been replaced by `$param` placeholders (the paper's
//! Figure 2). Templates are registered with the proxy by the web site; at
//! run time the proxy must answer two questions:
//!
//! 1. *Does this concrete query instantiate a registered template?* —
//!    [`QueryTemplate::match_query`] walks the two ASTs in lockstep; every
//!    `$param` in the template matches exactly one literal in the query and
//!    produces a binding. All occurrences of the same parameter must bind
//!    the same value.
//! 2. *What does the template look like with these parameter values?* —
//!    [`QueryTemplate::instantiate`] substitutes bindings back in, which the
//!    proxy uses to synthesize queries to forward to the origin site.

use crate::ast::{Expr, Join, Literal, Query, SelectItem, TableSource};
use crate::parser::parse_query;
use crate::value::Value;
use crate::SqlError;
use std::collections::BTreeMap;

/// Parameter name → bound value.
pub type Bindings = BTreeMap<String, Value>;

/// A parsed, parameterized query template.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTemplate {
    /// Template identifier (the proxy keys templates by this name).
    pub name: String,
    /// The parameterized query.
    pub query: Query,
    params: Vec<String>,
}

impl QueryTemplate {
    /// Parses template SQL text.
    ///
    /// # Errors
    /// Returns the underlying parse error on malformed SQL.
    pub fn parse(name: impl Into<String>, sql: &str) -> Result<Self, SqlError> {
        let query = parse_query(sql)?;
        let params = query.params();
        Ok(QueryTemplate {
            name: name.into(),
            query,
            params,
        })
    }

    /// Declared parameters in first-appearance order.
    pub fn params(&self) -> &[String] {
        &self.params
    }

    /// Whether `query` instantiates this template; on success, returns the
    /// recovered bindings.
    ///
    /// Matching is structural: the query must be identical to the template
    /// up to (a) literals standing where the template has `$params`, and
    /// (b) `TOP` values standing where the template has no constraint — the
    /// paper treats TOP-N as an optional operation of the class, so a
    /// template written without `TOP` still matches queries carrying one
    /// only if the template declares `TOP $param`.
    pub fn match_query(&self, query: &Query) -> Option<Bindings> {
        let mut b = Bindings::new();
        if !match_top(self.query.top, query.top) {
            return None;
        }
        if self.query.select.len() != query.select.len()
            || self.query.joins.len() != query.joins.len()
        {
            return None;
        }
        for (ti, qi) in self.query.select.iter().zip(&query.select) {
            if !match_select_item(ti, qi, &mut b) {
                return None;
            }
        }
        if !match_source(&self.query.from, &query.from, &mut b) {
            return None;
        }
        for (tj, qj) in self.query.joins.iter().zip(&query.joins) {
            if !match_join(tj, qj, &mut b) {
                return None;
            }
        }
        match (&self.query.where_clause, &query.where_clause) {
            (None, None) => {}
            (Some(tw), Some(qw)) => {
                if !match_expr(tw, qw, &mut b) {
                    return None;
                }
            }
            _ => return None,
        }
        if self.query.order_by != query.order_by {
            return None;
        }
        Some(b)
    }

    /// Substitutes `bindings` into the template, producing a concrete query.
    ///
    /// # Errors
    /// Returns an error naming the first parameter that has no binding.
    pub fn instantiate(&self, bindings: &Bindings) -> Result<Query, SqlError> {
        if let Some(missing) = self.params.iter().find(|p| !bindings.contains_key(*p)) {
            return Err(SqlError::new(0, format!("missing binding for ${missing}")));
        }
        let mut q = self.query.clone();
        for item in &mut q.select {
            if let SelectItem::Expr { expr, .. } = item {
                substitute(expr, bindings);
            }
        }
        substitute_source(&mut q.from, bindings);
        for j in &mut q.joins {
            substitute_source(&mut j.source, bindings);
            substitute(&mut j.on, bindings);
        }
        if let Some(w) = &mut q.where_clause {
            substitute(w, bindings);
        }
        Ok(q)
    }
}

fn match_top(t: Option<u64>, q: Option<u64>) -> bool {
    // TOP must agree exactly; parameterized TOP is uncommon on real forms
    // (SkyServer's Radial form has a fixed limit), so templates encode it
    // as a fixed value or omit it.
    t == q
}

fn match_select_item(t: &SelectItem, q: &SelectItem, b: &mut Bindings) -> bool {
    match (t, q) {
        (SelectItem::Wildcard, SelectItem::Wildcard) => true,
        (SelectItem::QualifiedWildcard(a), SelectItem::QualifiedWildcard(c)) => a == c,
        (
            SelectItem::Expr {
                expr: te,
                alias: ta,
            },
            SelectItem::Expr {
                expr: qe,
                alias: qa,
            },
        ) => ta == qa && match_expr(te, qe, b),
        _ => false,
    }
}

fn match_source(t: &TableSource, q: &TableSource, b: &mut Bindings) -> bool {
    match (t, q) {
        (
            TableSource::Table {
                name: tn,
                alias: ta,
            },
            TableSource::Table {
                name: qn,
                alias: qa,
            },
        ) => tn == qn && ta == qa,
        (
            TableSource::Function {
                name: tn,
                args: targs,
                alias: ta,
            },
            TableSource::Function {
                name: qn,
                args: qargs,
                alias: qa,
            },
        ) => {
            tn == qn
                && ta == qa
                && targs.len() == qargs.len()
                && targs
                    .iter()
                    .zip(qargs)
                    .all(|(te, qe)| match_expr(te, qe, b))
        }
        _ => false,
    }
}

fn match_join(t: &Join, q: &Join, b: &mut Bindings) -> bool {
    match_source(&t.source, &q.source, b) && match_expr(&t.on, &q.on, b)
}

/// Structural expression match; template `$params` capture query literals.
fn match_expr(t: &Expr, q: &Expr, b: &mut Bindings) -> bool {
    match (t, q) {
        (Expr::Param(p), Expr::Literal(lit)) => {
            let v = Value::from(lit);
            match b.get(p) {
                Some(prev) => values_equal(prev, &v),
                None => {
                    b.insert(p.clone(), v);
                    true
                }
            }
        }
        (Expr::Param(_), _) => false,
        (Expr::Literal(a), Expr::Literal(c)) => literals_equal(a, c),
        (
            Expr::Column {
                qualifier: tq,
                name: tn,
            },
            Expr::Column {
                qualifier: qq,
                name: qn,
            },
        ) => tq == qq && tn == qn,
        (Expr::Call { name: tn, args: ta }, Expr::Call { name: qn, args: qa }) => {
            tn == qn && ta.len() == qa.len() && ta.iter().zip(qa).all(|(x, y)| match_expr(x, y, b))
        }
        (
            Expr::Binary {
                op: to,
                left: tl,
                right: tr,
            },
            Expr::Binary {
                op: qo,
                left: ql,
                right: qr,
            },
        ) => to == qo && match_expr(tl, ql, b) && match_expr(tr, qr, b),
        (Expr::Unary { op: to, expr: te }, Expr::Unary { op: qo, expr: qe }) => {
            to == qo && match_expr(te, qe, b)
        }
        (
            Expr::Between {
                expr: te,
                low: tl,
                high: th,
                negated: tn,
            },
            Expr::Between {
                expr: qe,
                low: ql,
                high: qh,
                negated: qn,
            },
        ) => tn == qn && match_expr(te, qe, b) && match_expr(tl, ql, b) && match_expr(th, qh, b),
        (
            Expr::InList {
                expr: te,
                list: tl,
                negated: tn,
            },
            Expr::InList {
                expr: qe,
                list: ql,
                negated: qn,
            },
        ) => {
            tn == qn
                && tl.len() == ql.len()
                && match_expr(te, qe, b)
                && tl.iter().zip(ql).all(|(x, y)| match_expr(x, y, b))
        }
        (
            Expr::IsNull {
                expr: te,
                negated: tn,
            },
            Expr::IsNull {
                expr: qe,
                negated: qn,
            },
        ) => tn == qn && match_expr(te, qe, b),
        _ => false,
    }
}

fn literals_equal(a: &Literal, b: &Literal) -> bool {
    match (a, b) {
        // Numeric literals compare by value so `2` matches `2.0`.
        (x, y) if x.as_f64().is_some() && y.as_f64().is_some() => x.as_f64() == y.as_f64(),
        _ => a == b,
    }
}

fn values_equal(a: &Value, b: &Value) -> bool {
    a.total_cmp(b) == std::cmp::Ordering::Equal
}

/// Substitutes bindings into a standalone expression (used by function
/// templates, whose coordinate formulas like `cos($ra)*cos($dec)` live
/// outside any query).
pub fn substitute_expr(e: &Expr, b: &Bindings) -> Expr {
    let mut out = e.clone();
    substitute(&mut out, b);
    out
}

fn substitute(e: &mut Expr, b: &Bindings) {
    match e {
        Expr::Param(p) => {
            if let Some(v) = b.get(p) {
                *e = Expr::Literal(v.to_literal());
            }
        }
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Call { args, .. } => {
            for a in args {
                substitute(a, b);
            }
        }
        Expr::Binary { left, right, .. } => {
            substitute(left, b);
            substitute(right, b);
        }
        Expr::Unary { expr, .. } => substitute(expr, b),
        Expr::Between {
            expr, low, high, ..
        } => {
            substitute(expr, b);
            substitute(low, b);
            substitute(high, b);
        }
        Expr::InList { expr, list, .. } => {
            substitute(expr, b);
            for i in list {
                substitute(i, b);
            }
        }
        Expr::IsNull { expr, .. } => substitute(expr, b),
    }
}

fn substitute_source(s: &mut TableSource, b: &Bindings) {
    if let TableSource::Function { args, .. } = s {
        for a in args {
            substitute(a, b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RADIAL: &str = "SELECT TOP 1000 p.objID, p.ra, p.dec, p.cx, p.cy, p.cz \
         FROM fGetNearbyObjEq($ra, $dec, $radius) n \
         JOIN PhotoPrimary p ON n.objID = p.objID";

    fn radial_template() -> QueryTemplate {
        QueryTemplate::parse("radial", RADIAL).unwrap()
    }

    #[test]
    fn template_declares_params() {
        let t = radial_template();
        assert_eq!(t.params(), ["ra", "dec", "radius"]);
    }

    #[test]
    fn matches_and_extracts_bindings() {
        let t = radial_template();
        let q = parse_query(
            "SELECT TOP 1000 p.objID, p.ra, p.dec, p.cx, p.cy, p.cz \
             FROM fGetNearbyObjEq(185.0, 1.5, 30.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        )
        .unwrap();
        let b = t.match_query(&q).expect("should match");
        assert_eq!(b["ra"], Value::Float(185.0));
        assert_eq!(b["dec"], Value::Float(1.5));
        assert_eq!(b["radius"], Value::Float(30.0));
    }

    #[test]
    fn instantiate_roundtrips_through_match() {
        let t = radial_template();
        let mut b = Bindings::new();
        b.insert("ra".into(), Value::Float(200.25));
        b.insert("dec".into(), Value::Float(-3.5));
        b.insert("radius".into(), Value::Float(12.0));
        let q = t.instantiate(&b).unwrap();
        let recovered = t.match_query(&q).unwrap();
        assert_eq!(recovered, b);
        // And the instantiated SQL parses back to the same query.
        assert_eq!(parse_query(&q.to_sql()).unwrap(), q);
    }

    #[test]
    fn rejects_structural_mismatches() {
        let t = radial_template();
        for sql in [
            // different function
            "SELECT TOP 1000 p.objID, p.ra, p.dec, p.cx, p.cy, p.cz \
             FROM fGetObjFromRect(1.0, 2.0, 3.0) n JOIN PhotoPrimary p ON n.objID = p.objID",
            // different TOP
            "SELECT TOP 10 p.objID, p.ra, p.dec, p.cx, p.cy, p.cz \
             FROM fGetNearbyObjEq(1.0, 2.0, 3.0) n JOIN PhotoPrimary p ON n.objID = p.objID",
            // missing join
            "SELECT TOP 1000 p.objID, p.ra, p.dec, p.cx, p.cy, p.cz \
             FROM fGetNearbyObjEq(1.0, 2.0, 3.0) n",
            // extra predicate the template does not have
            "SELECT TOP 1000 p.objID, p.ra, p.dec, p.cx, p.cy, p.cz \
             FROM fGetNearbyObjEq(1.0, 2.0, 3.0) n JOIN PhotoPrimary p ON n.objID = p.objID \
             WHERE p.r < 20.0",
            // non-literal argument
            "SELECT TOP 1000 p.objID, p.ra, p.dec, p.cx, p.cy, p.cz \
             FROM fGetNearbyObjEq(a, 2.0, 3.0) n JOIN PhotoPrimary p ON n.objID = p.objID",
        ] {
            let q = parse_query(sql).unwrap();
            assert!(t.match_query(&q).is_none(), "should not match: {sql}");
        }
    }

    #[test]
    fn repeated_param_must_bind_consistently() {
        let t = QueryTemplate::parse("sym", "SELECT * FROM f($a, $a) x").unwrap();
        let same = parse_query("SELECT * FROM f(3.0, 3.0) x").unwrap();
        let diff = parse_query("SELECT * FROM f(3.0, 4.0) x").unwrap();
        assert!(t.match_query(&same).is_some());
        assert!(t.match_query(&diff).is_none());
    }

    #[test]
    fn numeric_literals_match_across_int_float() {
        let t = QueryTemplate::parse("n", "SELECT * FROM f($a) x WHERE k = 2").unwrap();
        let q = parse_query("SELECT * FROM f(5) x WHERE k = 2.0").unwrap();
        let b = t.match_query(&q).unwrap();
        assert_eq!(b["a"], Value::Int(5));
    }

    #[test]
    fn instantiate_reports_missing_bindings() {
        let t = radial_template();
        let mut b = Bindings::new();
        b.insert("ra".into(), Value::Float(1.0));
        let err = t.instantiate(&b).unwrap_err();
        assert!(err.message.contains("dec") || err.message.contains("radius"));
    }

    #[test]
    fn where_clause_params_match() {
        let t = QueryTemplate::parse("w", "SELECT * FROM f($a) x WHERE x.r BETWEEN $lo AND $hi")
            .unwrap();
        let q = parse_query("SELECT * FROM f(1.0) x WHERE x.r BETWEEN 0.0 AND 22.5").unwrap();
        let b = t.match_query(&q).unwrap();
        assert_eq!(b["lo"], Value::Float(0.0));
        assert_eq!(b["hi"], Value::Float(22.5));
    }
}
