//! Runtime values: what literals evaluate to and what parameter bindings
//! hold.

use crate::ast::Literal;
use serde::{Deserialize, Serialize};

/// A runtime SQL value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Numeric view (ints widen to floats); `None` for non-numeric values.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view; `None` for anything but `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// String view; `None` for anything but `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The literal that would evaluate to this value.
    pub fn to_literal(&self) -> Literal {
        match self {
            Value::Null => Literal::Null,
            Value::Int(i) => Literal::Int(*i),
            Value::Float(f) => Literal::Float(*f),
            Value::Str(s) => Literal::Str(s.clone()),
            Value::Bool(b) => Literal::Bool(*b),
        }
    }

    /// Parses a value from HTTP form text: tries integer, then float,
    /// falling back to a string. (HTML forms deliver everything as text;
    /// this mirrors how the paper's servlet would coerce form fields.)
    pub fn from_form_text(text: &str) -> Value {
        let t = text.trim();
        if let Ok(i) = t.parse::<i64>() {
            return Value::Int(i);
        }
        if let Ok(f) = t.parse::<f64>() {
            if f.is_finite() {
                return Value::Float(f);
            }
        }
        Value::Str(t.to_string())
    }

    /// SQL ordering/equality comparison with numeric coercion between
    /// `Int` and `Float`. NULL compares equal to NULL and less than
    /// everything else (a total order convenient for sorting; SQL
    /// three-valued logic is applied by the executor, not here).
    pub fn total_cmp(&self, other: &Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Bool(a), Bool(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                // Heterogeneous, non-numeric: order by type tag.
                _ => type_rank(a).cmp(&type_rank(b)),
            },
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 2,
        Value::Str(_) => 3,
    }
}

impl From<Literal> for Value {
    fn from(l: Literal) -> Self {
        match l {
            Literal::Null => Value::Null,
            Literal::Int(i) => Value::Int(i),
            Literal::Float(f) => Value::Float(f),
            Literal::Str(s) => Value::Str(s),
            Literal::Bool(b) => Value::Bool(b),
        }
    }
}

impl From<&Literal> for Value {
    fn from(l: &Literal) -> Self {
        Value::from(l.clone())
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            // Keep a decimal point so the text re-coerces to Float, making
            // Display/`from_form_text` a lossless pair for finite values.
            Value::Float(v) if v.fract() == 0.0 && v.is_finite() && v.abs() < 1e15 => {
                write!(f, "{v:.1}")
            }
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn form_text_coercion() {
        assert_eq!(Value::from_form_text("42"), Value::Int(42));
        assert_eq!(Value::from_form_text(" 1.5 "), Value::Float(1.5));
        assert_eq!(Value::from_form_text("-30"), Value::Int(-30));
        assert_eq!(Value::from_form_text("abc"), Value::Str("abc".into()));
        assert_eq!(Value::from_form_text("inf"), Value::Str("inf".into()));
    }

    #[test]
    fn numeric_coercion_in_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn literal_value_roundtrip() {
        for v in [
            Value::Null,
            Value::Int(7),
            Value::Float(2.5),
            Value::Str("x".into()),
            Value::Bool(true),
        ] {
            assert_eq!(Value::from(v.to_literal()), v);
        }
    }
}
