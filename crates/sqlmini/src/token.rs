//! Token definitions for the SQL lexer.

/// A lexical token with its byte offset in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Byte offset where the token starts.
    pub offset: usize,
    /// The token itself.
    pub kind: TokenKind,
}

/// The kinds of token the SQL subset uses.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword (stored uppercase: `SELECT`, `FROM`, …).
    Keyword(Keyword),
    /// An identifier (case preserved; `[bracketed]` identifiers unwrapped).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// A `$name` template parameter.
    Param(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

/// Recognized SQL keywords.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum Keyword {
    Select,
    Top,
    From,
    Where,
    Join,
    Inner,
    On,
    As,
    And,
    Or,
    Not,
    Between,
    In,
    Like,
    Is,
    Null,
    Order,
    By,
    Asc,
    Desc,
    True,
    False,
}

impl Keyword {
    /// Looks a word up case-insensitively.
    pub fn lookup(word: &str) -> Option<Keyword> {
        let up = word.to_ascii_uppercase();
        Some(match up.as_str() {
            "SELECT" => Keyword::Select,
            "TOP" => Keyword::Top,
            "FROM" => Keyword::From,
            "WHERE" => Keyword::Where,
            "JOIN" => Keyword::Join,
            "INNER" => Keyword::Inner,
            "ON" => Keyword::On,
            "AS" => Keyword::As,
            "AND" => Keyword::And,
            "OR" => Keyword::Or,
            "NOT" => Keyword::Not,
            "BETWEEN" => Keyword::Between,
            "IN" => Keyword::In,
            "LIKE" => Keyword::Like,
            "IS" => Keyword::Is,
            "NULL" => Keyword::Null,
            "ORDER" => Keyword::Order,
            "BY" => Keyword::By,
            "ASC" => Keyword::Asc,
            "DESC" => Keyword::Desc,
            "TRUE" => Keyword::True,
            "FALSE" => Keyword::False,
            _ => return None,
        })
    }

    /// Canonical (uppercase) spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Select => "SELECT",
            Keyword::Top => "TOP",
            Keyword::From => "FROM",
            Keyword::Where => "WHERE",
            Keyword::Join => "JOIN",
            Keyword::Inner => "INNER",
            Keyword::On => "ON",
            Keyword::As => "AS",
            Keyword::And => "AND",
            Keyword::Or => "OR",
            Keyword::Not => "NOT",
            Keyword::Between => "BETWEEN",
            Keyword::In => "IN",
            Keyword::Like => "LIKE",
            Keyword::Is => "IS",
            Keyword::Null => "NULL",
            Keyword::Order => "ORDER",
            Keyword::By => "BY",
            Keyword::Asc => "ASC",
            Keyword::Desc => "DESC",
            Keyword::True => "TRUE",
            Keyword::False => "FALSE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keyword_lookup_is_case_insensitive() {
        assert_eq!(Keyword::lookup("select"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("SeLeCt"), Some(Keyword::Select));
        assert_eq!(Keyword::lookup("PhotoPrimary"), None);
    }

    #[test]
    fn keyword_spelling_roundtrips() {
        for kw in [
            Keyword::Select,
            Keyword::Between,
            Keyword::Desc,
            Keyword::Null,
        ] {
            assert_eq!(Keyword::lookup(kw.as_str()), Some(kw));
        }
    }
}
