//! SQL parsing and templates for **function-embedded queries**.
//!
//! The paper's proxy does not need a full SQL engine — it needs to
//! understand one query *class* (its Figure 2):
//!
//! ```sql
//! SELECT TOP 1000 p.objID, p.run, p.ra, p.dec, p.cx, p.cy, p.cz
//! FROM fGetNearbyObjEq($ra, $dec, $radius) n
//! JOIN PhotoPrimary p ON n.objID = p.objID
//! WHERE p.r < $maxmag
//! ```
//!
//! — a `SELECT` with an optional `TOP N`, a table-valued function call in
//! the `FROM` clause, optional semantics-preserving joins, and optional
//! extra predicates. This crate provides:
//!
//! * a lexer and recursive-descent parser for that class (plus enough
//!   general expression syntax for the `other_predicates` the paper keeps
//!   abstract),
//! * a typed AST ([`Query`], [`Expr`], [`TableSource`]) with a
//!   pretty-printer that emits valid SQL text (needed to *generate*
//!   remainder queries to send to the origin site),
//! * **query templates** ([`template::QueryTemplate`]): queries containing
//!   `$param` placeholders, with structural matching that recovers the
//!   parameter bindings of a concrete query — the mechanism that lets the
//!   proxy recognize "this HTTP request is a Radial-form query with
//!   `ra=185, dec=1.5, radius=30`".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod template;
pub mod token;
pub mod value;

pub use ast::{BinOp, Expr, Join, Literal, Query, SelectItem, TableSource, UnOp};
pub use parser::parse_query;
pub use template::{Bindings, QueryTemplate};
pub use value::Value;

/// A positioned SQL parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Byte offset in the input where the error was detected.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl SqlError {
    pub(crate) fn new(offset: usize, message: impl Into<String>) -> Self {
        SqlError {
            offset,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for SqlError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SQL error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_parse_and_print() {
        let sql = "SELECT TOP 10 p.objID, p.ra FROM fGetNearbyObjEq(185.0, 1.5, 30.0) n \
                   JOIN PhotoPrimary p ON n.objID = p.objID WHERE p.r < 20.0";
        let q = parse_query(sql).unwrap();
        assert_eq!(q.top, Some(10));
        let printed = q.to_sql();
        let q2 = parse_query(&printed).unwrap();
        assert_eq!(q, q2, "printing must round-trip");
    }
}
