//! Property tests: arbitrary ASTs of the supported query class survive
//! print → parse (the printer emits canonical text; the parser must
//! recover an equal AST), and template matching is consistent with
//! instantiation for arbitrary bindings.

use fp_sqlmini::{
    parse_query, BinOp, Bindings, Expr, Join, Literal, Query, QueryTemplate, SelectItem,
    TableSource, UnOp, Value,
};
use proptest::prelude::*;

fn arb_ident() -> impl Strategy<Value = String> {
    // Avoid keywords by prefixing.
    "[a-z][a-zA-Z0-9_]{0,8}".prop_map(|s| format!("c_{s}"))
}

fn arb_literal() -> impl Strategy<Value = Literal> {
    prop_oneof![
        any::<i32>().prop_map(|i| Literal::Int(i64::from(i))),
        (-1.0e6f64..1.0e6).prop_map(Literal::Float),
        "[ -~]{0,12}".prop_map(Literal::Str),
        any::<bool>().prop_map(Literal::Bool),
        Just(Literal::Null),
    ]
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        arb_literal().prop_map(Expr::Literal),
        arb_ident().prop_map(|n| Expr::Column {
            qualifier: None,
            name: n
        }),
        (arb_ident(), arb_ident()).prop_map(|(q, n)| Expr::Column {
            qualifier: Some(q),
            name: n
        }),
        arb_ident().prop_map(Expr::Param),
    ];
    leaf.prop_recursive(4, 40, 4, |inner| {
        prop_oneof![
            (
                prop_oneof![
                    Just(BinOp::And),
                    Just(BinOp::Or),
                    Just(BinOp::Eq),
                    Just(BinOp::Neq),
                    Just(BinOp::Lt),
                    Just(BinOp::Le),
                    Just(BinOp::Gt),
                    Just(BinOp::Ge),
                    Just(BinOp::Add),
                    Just(BinOp::Sub),
                    Just(BinOp::Mul),
                    Just(BinOp::Div),
                    Just(BinOp::Mod),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
            inner.clone().prop_map(|e| Expr::Unary {
                op: UnOp::Not,
                expr: Box::new(e)
            }),
            (inner.clone(), inner.clone(), inner.clone(), any::<bool>()).prop_map(
                |(e, lo, hi, neg)| Expr::Between {
                    expr: Box::new(e),
                    low: Box::new(lo),
                    high: Box::new(hi),
                    negated: neg,
                }
            ),
            (
                inner.clone(),
                prop::collection::vec(inner.clone(), 1..4),
                any::<bool>()
            )
                .prop_map(|(e, list, neg)| Expr::InList {
                    expr: Box::new(e),
                    list,
                    negated: neg,
                }),
            (inner.clone(), any::<bool>()).prop_map(|(e, neg)| Expr::IsNull {
                expr: Box::new(e),
                negated: neg
            }),
            (arb_ident(), prop::collection::vec(inner, 0..3))
                .prop_map(|(name, args)| Expr::Call { name, args }),
        ]
    })
}

fn arb_source() -> impl Strategy<Value = TableSource> {
    prop_oneof![
        (arb_ident(), prop::option::of(arb_ident()))
            .prop_map(|(name, alias)| TableSource::Table { name, alias }),
        (
            arb_ident(),
            prop::collection::vec(arb_expr(), 0..4),
            prop::option::of(arb_ident())
        )
            .prop_map(|(name, args, alias)| TableSource::Function { name, args, alias }),
    ]
}

fn arb_query() -> impl Strategy<Value = Query> {
    (
        prop::option::of(0u64..10_000),
        prop::collection::vec(
            prop_oneof![
                Just(SelectItem::Wildcard),
                arb_ident().prop_map(SelectItem::QualifiedWildcard),
                (arb_expr(), prop::option::of(arb_ident()))
                    .prop_map(|(expr, alias)| SelectItem::Expr { expr, alias }),
            ],
            1..4,
        ),
        arb_source(),
        prop::collection::vec((arb_source(), arb_expr()), 0..2),
        prop::option::of(arb_expr()),
        prop::option::of((arb_ident(), any::<bool>())),
    )
        .prop_map(|(top, select, from, joins, where_clause, order_by)| Query {
            top,
            select,
            from,
            joins: joins
                .into_iter()
                .map(|(source, on)| Join { source, on })
                .collect(),
            where_clause,
            order_by,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The core printer/parser contract.
    #[test]
    fn print_parse_roundtrip(q in arb_query()) {
        let sql = q.to_sql();
        let back = parse_query(&sql)
            .unwrap_or_else(|e| panic!("printed SQL failed to parse: {e}\nSQL: {sql}"));
        prop_assert_eq!(back, q, "sql: {}", sql);
    }

    /// Canonical printing is a fixpoint: printing the reparse gives the
    /// same text.
    #[test]
    fn printing_is_canonical(q in arb_query()) {
        let sql = q.to_sql();
        let back = parse_query(&sql).expect("roundtrips");
        prop_assert_eq!(back.to_sql(), sql);
    }

    /// instantiate ∘ match = identity on bindings, for templates derived
    /// from arbitrary numeric bindings.
    #[test]
    fn template_match_inverts_instantiate(
        ra in -360.0f64..360.0,
        dec in -90.0f64..90.0,
        radius in 0.01f64..120.0,
    ) {
        let t = QueryTemplate::parse(
            "radial",
            "SELECT p.objID, p.cx FROM fGetNearbyObjEq($ra, $dec, $radius) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        )
        .expect("template parses");
        let mut b = Bindings::new();
        b.insert("ra".into(), Value::Float(ra));
        b.insert("dec".into(), Value::Float(dec));
        b.insert("radius".into(), Value::Float(radius));
        let q = t.instantiate(&b).expect("instantiates");
        let recovered = t.match_query(&q).expect("matches");
        prop_assert_eq!(recovered, b);
        // And the instantiated query round-trips through text.
        let reparsed = parse_query(&q.to_sql()).expect("parses");
        prop_assert_eq!(t.match_query(&reparsed).expect("still matches").len(), 3);
    }
}
