//! A synthetic SkyServer: the **origin web site** the function proxy talks to.
//!
//! The paper evaluates its proxy against the real SDSS SkyServer — terabytes
//! of sky-survey data behind a SQL Server instance exposing table-valued
//! functions such as `fGetNearbyObjEq(ra, dec, radius)` and a free-form SQL
//! search page (which the authors use as the **remainder query facility**).
//! That site cannot be bundled, so this crate rebuilds its relevant
//! behaviour from scratch:
//!
//! * [`Catalog`] — a deterministic, seeded synthetic `PhotoPrimary` catalog
//!   (clustered object positions on a sky window, photometric magnitudes),
//!   stored columnar for scan speed, with an id hash index and a 3-D
//!   spatial R-tree over unit-vector coordinates.
//! * [`tvf`] — the table-valued functions of the Radial/Rectangular search
//!   forms, evaluated against the spatial index.
//! * [`exec`] — a SQL executor for the function-embedded query class
//!   (TVF in `FROM`, hash joins on equality conditions, full expression
//!   evaluation in `WHERE`, projection, `ORDER BY`, `TOP`).
//! * [`SkySite`] — the façade the proxy sees: named-form query execution
//!   plus the free-form SQL endpoint, with per-query execution statistics
//!   (rows scanned/returned, result bytes) that the simulation's cost model
//!   converts into server-side latency.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod columnar;
pub mod exec;
pub mod generate;
pub mod result;
pub mod site;
pub mod tvf;

pub use catalog::Catalog;
pub use columnar::{ColumnarRows, IndexKind, SelectStats};
pub use generate::{CatalogSpec, SkyWindow};
pub use result::{ExecStats, ResultSet};
pub use site::{SiteError, SkySite};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_radial_query() {
        let catalog = Catalog::generate(&CatalogSpec::small_test());
        let site = SkySite::new(catalog);
        let rs = site
            .execute_sql(
                "SELECT p.objID, p.ra, p.dec, p.cx, p.cy, p.cz \
                 FROM fGetNearbyObjEq(185.0, 0.0, 30.0) n \
                 JOIN PhotoPrimary p ON n.objID = p.objID",
            )
            .expect("query runs");
        assert!(
            !rs.result.rows.is_empty(),
            "30' around the hotspot has objects"
        );
        // Every returned object really is within 30 arcmin.
        let ra_i = rs.result.column_index("ra").unwrap();
        let dec_i = rs.result.column_index("dec").unwrap();
        for row in &rs.result.rows {
            let ra = row[ra_i].as_f64().unwrap();
            let dec = row[dec_i].as_f64().unwrap();
            let sep = fp_geometry::celestial::angular_separation(185.0, 0.0, ra, dec);
            assert!(sep <= fp_geometry::celestial::arcmin_to_rad(30.0) + 1e-12);
        }
    }
}
