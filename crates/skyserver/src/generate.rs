//! Deterministic synthetic sky generation.
//!
//! The real evaluation used SDSS imaging data; we substitute a seeded
//! synthetic catalog whose two properties that matter to the proxy are
//! preserved: (a) object positions are **clustered** (galaxies cluster, and
//! web queries concentrate on interesting regions), so query result sizes
//! vary realistically; (b) density is high enough that arcminute-scale
//! radial queries return tens-to-thousands of tuples, like the paper's
//! 300 MB-for-11k-queries trace implies.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The patch of sky the catalog (and the query trace) lives on.
///
/// Default: a 10°×6° window around the SDSS equatorial stripe the paper's
/// Radial-form examples point at (ra 180–190, dec −3…+3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SkyWindow {
    /// Minimum right ascension, degrees.
    pub ra_min: f64,
    /// Maximum right ascension, degrees.
    pub ra_max: f64,
    /// Minimum declination, degrees.
    pub dec_min: f64,
    /// Maximum declination, degrees.
    pub dec_max: f64,
}

impl Default for SkyWindow {
    fn default() -> Self {
        SkyWindow {
            ra_min: 180.0,
            ra_max: 190.0,
            dec_min: -3.0,
            dec_max: 3.0,
        }
    }
}

impl SkyWindow {
    /// Window width in RA degrees.
    pub fn ra_span(&self) -> f64 {
        self.ra_max - self.ra_min
    }

    /// Window height in Dec degrees.
    pub fn dec_span(&self) -> f64 {
        self.dec_max - self.dec_min
    }

    /// Whether the point lies inside the window.
    pub fn contains(&self, ra: f64, dec: f64) -> bool {
        ra >= self.ra_min && ra <= self.ra_max && dec >= self.dec_min && dec <= self.dec_max
    }
}

/// Parameters of the synthetic catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatalogSpec {
    /// RNG seed; identical specs generate identical catalogs.
    pub seed: u64,
    /// Total number of objects.
    pub objects: usize,
    /// Sky window the objects occupy.
    pub window: SkyWindow,
    /// Number of cluster centers ("galaxy clusters" / hot regions).
    pub clusters: usize,
    /// Fraction of objects drawn from clusters (rest uniform background).
    pub cluster_fraction: f64,
    /// Gaussian sigma of a cluster, in degrees.
    pub cluster_sigma_deg: f64,
}

impl Default for CatalogSpec {
    fn default() -> Self {
        CatalogSpec {
            seed: 0x5D55,
            objects: 200_000,
            window: SkyWindow::default(),
            clusters: 24,
            cluster_fraction: 0.6,
            cluster_sigma_deg: 0.25,
        }
    }
}

impl CatalogSpec {
    /// A small catalog for unit tests (fast to generate, still clustered).
    pub fn small_test() -> Self {
        CatalogSpec {
            seed: 42,
            objects: 20_000,
            ..CatalogSpec::default()
        }
    }
}

/// One generated object row, before columnar packing.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GenObject {
    pub obj_id: i64,
    pub ra: f64,
    pub dec: f64,
    /// Magnitudes in the five SDSS bands.
    pub mag: [f64; 5],
    /// Object type code (3 = galaxy, 6 = star, like SDSS `PhotoType`).
    pub obj_type: i64,
    /// Bitmask standing in for SDSS photo flags.
    pub flags: i64,
    /// Spectroscopic follow-up, for the subset of objects that have one.
    pub spec: Option<GenSpec>,
}

/// One spectroscopic observation (the SDSS `SpecObj` row of an object).
#[derive(Debug, Clone, Copy)]
pub(crate) struct GenSpec {
    pub spec_obj_id: i64,
    /// Redshift.
    pub z: f64,
    /// Spectral class (1 = galaxy, 2 = QSO, 3 = star, SDSS-flavored).
    pub class: i64,
}

/// Generates the object list for `spec` (deterministic).
pub(crate) fn generate_objects(spec: &CatalogSpec) -> Vec<GenObject> {
    assert!(spec.objects > 0, "catalog must have at least one object");
    assert!(
        (0.0..=1.0).contains(&spec.cluster_fraction),
        "cluster_fraction must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let w = &spec.window;

    // Cluster centers themselves are uniform over the window.
    let centers: Vec<(f64, f64)> = (0..spec.clusters.max(1))
        .map(|_| {
            (
                rng.gen_range(w.ra_min..w.ra_max),
                rng.gen_range(w.dec_min..w.dec_max),
            )
        })
        .collect();

    let mut out = Vec::with_capacity(spec.objects);
    for i in 0..spec.objects {
        let clustered = rng.gen_bool(spec.cluster_fraction) && !centers.is_empty();
        let (ra, dec) = if clustered {
            let (cra, cdec) = centers[rng.gen_range(0..centers.len())];
            // Box-Muller Gaussian offsets, clamped into the window.
            let (g1, g2) = gauss_pair(&mut rng);
            (
                (cra + g1 * spec.cluster_sigma_deg).clamp(w.ra_min, w.ra_max),
                (cdec + g2 * spec.cluster_sigma_deg).clamp(w.dec_min, w.dec_max),
            )
        } else {
            (
                rng.gen_range(w.ra_min..w.ra_max),
                rng.gen_range(w.dec_min..w.dec_max),
            )
        };

        // Magnitudes: r in [14, 23], colors around plausible offsets.
        let r = rng.gen_range(14.0..23.0);
        let g = r + rng.gen_range(0.0..1.5);
        let u = g + rng.gen_range(0.0..2.0);
        let i_band = r - rng.gen_range(0.0..0.8);
        let z = i_band - rng.gen_range(0.0..0.6);

        let obj_id = 0x0875_0000_0000_0000_u64 as i64 + (i as i64) * 37 + 11;
        // Roughly one object in seven has been observed spectroscopically,
        // like SDSS's photometric/spectroscopic ratio at survey scale.
        let spec = rng.gen_bool(0.15).then(|| GenSpec {
            spec_obj_id: 0x0FAC_0000_0000_0000_u64 as i64 + (i as i64) * 13 + 5,
            z: rng.gen_range(0.0..0.8f64),
            class: *[1, 1, 1, 2, 3]
                .get(rng.gen_range(0..5usize))
                .expect("in range"),
        });
        out.push(GenObject {
            // SDSS-flavored ids: large, unique, non-consecutive.
            obj_id,
            ra,
            dec,
            mag: [u, g, r, i_band, z],
            obj_type: if rng.gen_bool(0.7) { 3 } else { 6 },
            flags: rng.gen::<u16>() as i64,
            spec,
        });
    }
    out
}

/// One pair of independent standard Gaussians via Box-Muller.
fn gauss_pair(rng: &mut StdRng) -> (f64, f64) {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = 2.0 * std::f64::consts::PI * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = CatalogSpec::small_test();
        let a = generate_objects(&spec);
        let b = generate_objects(&spec);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.obj_id, y.obj_id);
            assert_eq!(x.ra, y.ra);
            assert_eq!(x.dec, y.dec);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate_objects(&CatalogSpec {
            seed: 1,
            objects: 100,
            ..Default::default()
        });
        let b = generate_objects(&CatalogSpec {
            seed: 2,
            objects: 100,
            ..Default::default()
        });
        assert!(a.iter().zip(&b).any(|(x, y)| x.ra != y.ra));
    }

    #[test]
    fn objects_stay_in_window() {
        let spec = CatalogSpec::small_test();
        for o in generate_objects(&spec) {
            assert!(spec.window.contains(o.ra, o.dec), "({}, {})", o.ra, o.dec);
        }
    }

    #[test]
    fn ids_are_unique() {
        let objs = generate_objects(&CatalogSpec {
            objects: 5000,
            ..CatalogSpec::small_test()
        });
        let mut ids: Vec<i64> = objs.iter().map(|o| o.obj_id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), objs.len());
    }

    #[test]
    fn clustering_raises_local_density() {
        // With strong clustering, the densest 1°×1° cell should hold far
        // more than the uniform expectation.
        let spec = CatalogSpec {
            seed: 7,
            objects: 20_000,
            clusters: 3,
            cluster_fraction: 0.9,
            cluster_sigma_deg: 0.15,
            ..Default::default()
        };
        let objs = generate_objects(&spec);
        let w = spec.window;
        let (nx, ny) = (w.ra_span() as usize, w.dec_span() as usize);
        let mut cells = vec![0usize; nx * ny];
        for o in &objs {
            let cx = (((o.ra - w.ra_min) / 1.0) as usize).min(nx - 1);
            let cy = (((o.dec - w.dec_min) / 1.0) as usize).min(ny - 1);
            cells[cy * nx + cx] += 1;
        }
        let max = *cells.iter().max().unwrap();
        let uniform = objs.len() / cells.len();
        assert!(max > uniform * 3, "max cell {max} vs uniform {uniform}");
    }

    #[test]
    fn a_plausible_fraction_has_spectra() {
        let objs = generate_objects(&CatalogSpec {
            objects: 10_000,
            ..CatalogSpec::small_test()
        });
        let with_spec = objs.iter().filter(|o| o.spec.is_some()).count();
        let frac = with_spec as f64 / objs.len() as f64;
        assert!((frac - 0.15).abs() < 0.02, "spectroscopic fraction {frac}");
        // Spec ids are unique and redshifts in range.
        let mut ids: Vec<i64> = objs
            .iter()
            .filter_map(|o| o.spec.map(|s| s.spec_obj_id))
            .collect();
        ids.sort_unstable();
        let n = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), n);
        for o in &objs {
            if let Some(sp) = o.spec {
                assert!((0.0..0.8).contains(&sp.z));
                assert!([1, 2, 3].contains(&sp.class));
            }
        }
    }

    #[test]
    fn magnitudes_are_ordered_plausibly() {
        for o in generate_objects(&CatalogSpec {
            objects: 500,
            ..CatalogSpec::small_test()
        }) {
            let [u, g, r, i, z] = o.mag;
            assert!(u >= g && g >= r && r >= i && i >= z, "{:?}", o.mag);
            assert!((14.0..25.5).contains(&r));
        }
    }
}
