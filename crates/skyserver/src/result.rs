//! Query results and execution statistics.

use fp_sqlmini::Value;
use fp_xmlite::Element;

/// A tabular query result: named columns plus rows of values.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultSet {
    /// Output column names, in order.
    pub columns: Vec<String>,
    /// Result rows; every row has `columns.len()` values.
    pub rows: Vec<Vec<Value>>,
}

impl ResultSet {
    /// An empty result with the given columns.
    pub fn empty(columns: Vec<String>) -> Self {
        ResultSet {
            columns,
            rows: Vec::new(),
        }
    }

    /// Index of column `name`, if present.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Serialized size in bytes of the XML document form — the unit the
    /// proxy's cache-size accounting uses (the paper stores results as XML
    /// files and bounds the cache by their total size).
    pub fn xml_bytes(&self) -> usize {
        self.to_xml_string().len()
    }

    /// Serializes the XML document form directly into a string without
    /// building the [`Element`] tree — byte-identical to
    /// `self.to_xml().to_xml()` (pinned by tests) but one pass and one
    /// allocation.
    pub fn to_xml_string(&self) -> String {
        let bytes = crate::columnar::result_to_xml_bytes(self);
        // Only escaped UTF-8 text ever enters the buffer.
        String::from_utf8(bytes).expect("XML serialization is UTF-8")
    }

    /// Converts to the XML document the proxy stores:
    /// `<ResultSet><Columns>…</Columns><Row>…</Row>…</ResultSet>`.
    pub fn to_xml(&self) -> Element {
        let mut cols = Element::new("Columns");
        for c in &self.columns {
            cols.push_child(Element::new("C").with_text(c.clone()));
        }
        let mut root = Element::new("ResultSet").with_child(cols);
        for row in &self.rows {
            let mut r = Element::new("Row");
            for v in row {
                let cell = match v {
                    Value::Null => Element::new("V").with_attr("null", "1"),
                    other => Element::new("V").with_text(other.to_string()),
                };
                r.push_child(cell);
            }
            root.push_child(r);
        }
        root
    }

    /// Parses the XML document form back into a result set.
    ///
    /// Numeric cell text is re-coerced the same way HTML form input is, so
    /// a round-trip preserves ints/floats/strings (`Value::from_form_text`).
    pub fn from_xml(doc: &Element) -> Option<ResultSet> {
        if doc.name() != "ResultSet" {
            return None;
        }
        let columns: Vec<String> = doc
            .child("Columns")?
            .children_named("C")
            .map(|c| c.text())
            .collect();
        let mut rows = Vec::new();
        for row_el in doc.children_named("Row") {
            let mut row = Vec::with_capacity(columns.len());
            for cell in row_el.children_named("V") {
                if cell.attr("null") == Some("1") {
                    row.push(Value::Null);
                } else {
                    row.push(Value::from_form_text(&cell.text()));
                }
            }
            if row.len() != columns.len() {
                return None;
            }
            rows.push(row);
        }
        Some(ResultSet { columns, rows })
    }
}

/// Server-side execution statistics for one query, consumed by the
/// simulation cost model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecStats {
    /// Candidate rows the spatial index / scans touched.
    pub rows_scanned: usize,
    /// Rows in the final result.
    pub rows_returned: usize,
    /// Serialized result size in bytes (XML form).
    pub result_bytes: usize,
}

/// A result together with its execution statistics.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result rows.
    pub result: ResultSet,
    /// Execution statistics.
    pub stats: ExecStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ResultSet {
        ResultSet {
            columns: vec!["objID".into(), "ra".into(), "name".into()],
            rows: vec![
                vec![Value::Int(1), Value::Float(185.5), Value::Str("a b".into())],
                vec![Value::Int(2), Value::Float(186.0), Value::Null],
            ],
        }
    }

    #[test]
    fn xml_roundtrip() {
        let rs = sample();
        let doc = rs.to_xml();
        let back = ResultSet::from_xml(&doc).unwrap();
        assert_eq!(back, rs);
    }

    #[test]
    fn xml_roundtrip_through_text() {
        let rs = sample();
        let text = rs.to_xml().to_xml();
        let doc = Element::parse(&text).unwrap();
        let back = ResultSet::from_xml(&doc).unwrap();
        assert_eq!(back, rs);
    }

    #[test]
    fn direct_writer_matches_tree_writer() {
        let mut rs = sample();
        rs.rows.push(vec![
            Value::Int(4),
            Value::Float(2.0),
            Value::Str("needs <escaping> & \"quotes\"".into()),
        ]);
        rs.rows.push(vec![
            Value::Int(5),
            Value::Float(3.5),
            Value::Str(String::new()),
        ]);
        assert_eq!(rs.to_xml_string(), rs.to_xml().to_xml());
        assert_eq!(rs.xml_bytes(), rs.to_xml().to_xml().len());
        let empty = ResultSet::empty(vec![]);
        assert_eq!(empty.to_xml_string(), empty.to_xml().to_xml());
    }

    #[test]
    fn byte_accounting_is_positive_and_monotone() {
        let mut rs = sample();
        let small = rs.xml_bytes();
        rs.rows.push(vec![
            Value::Int(3),
            Value::Float(1.0),
            Value::Str("x".into()),
        ]);
        assert!(rs.xml_bytes() > small);
        assert!(small > 0);
    }

    #[test]
    fn column_lookup() {
        let rs = sample();
        assert_eq!(rs.column_index("ra"), Some(1));
        assert_eq!(rs.column_index("nope"), None);
        assert_eq!(rs.len(), 2);
        assert!(!rs.is_empty());
        assert!(ResultSet::empty(vec!["a".into()]).is_empty());
    }

    #[test]
    fn from_xml_rejects_malformed() {
        assert!(ResultSet::from_xml(&Element::new("Other")).is_none());
        // Row with the wrong arity.
        let doc = Element::new("ResultSet")
            .with_child(Element::new("Columns").with_child(Element::new("C").with_text("a")))
            .with_child(
                Element::new("Row")
                    .with_child(Element::new("V").with_text("1"))
                    .with_child(Element::new("V").with_text("2")),
            );
        assert!(ResultSet::from_xml(&doc).is_none());
    }
}
