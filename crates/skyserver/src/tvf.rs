//! The table-valued functions of the origin site.
//!
//! Each function returns `(objID, distance-related columns…)` rows computed
//! against the catalog's spatial index, mirroring the SkyServer functions
//! the paper's search forms call.

use crate::catalog::Catalog;
use fp_geometry::celestial::{angle_of_chord, arcmin_to_rad, rad_to_deg, radial_query_sphere};
use fp_geometry::{HalfSpace, HyperRect, HyperSphere, Point, Polytope};
use fp_sqlmini::Value;

/// An error from evaluating a table-valued function.
#[derive(Debug, Clone, PartialEq)]
pub enum TvfError {
    /// The function name is not registered.
    UnknownFunction(String),
    /// Wrong number of arguments.
    Arity {
        /// Function name.
        name: String,
        /// Expected argument count.
        expected: usize,
        /// Received argument count.
        got: usize,
    },
    /// An argument was not numeric or out of domain.
    BadArgument {
        /// Function name.
        name: String,
        /// Explanation.
        reason: String,
    },
}

impl std::fmt::Display for TvfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TvfError::UnknownFunction(n) => write!(f, "unknown table-valued function `{n}`"),
            TvfError::Arity {
                name,
                expected,
                got,
            } => {
                write!(f, "`{name}` expects {expected} arguments, got {got}")
            }
            TvfError::BadArgument { name, reason } => {
                write!(f, "bad argument to `{name}`: {reason}")
            }
        }
    }
}

impl std::error::Error for TvfError {}

/// Output of a TVF evaluation: column names, rows, and how many candidate
/// rows the index produced (for the cost model).
#[derive(Debug, Clone)]
pub struct TvfOutput {
    /// Column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
    /// Candidate rows scanned (≥ rows.len()).
    pub rows_scanned: usize,
}

/// Names of the registered table-valued functions.
pub const TVF_NAMES: [&str; 6] = [
    "fGetNearbyObjEq",
    "fGetNearestObjEq",
    "fGetNearbyObjXYZ",
    "fGetObjFromRect",
    "fGetObjFromRectEq",
    "fGetObjFromTriangle",
];

/// Whether `name` is a registered table-valued function.
pub fn is_tvf(name: &str) -> bool {
    TVF_NAMES.iter().any(|n| n.eq_ignore_ascii_case(name))
}

/// Evaluates the table-valued function `name(args)` against `catalog`.
///
/// # Errors
/// Returns [`TvfError`] for unknown names, arity mismatches, and
/// non-numeric or out-of-domain arguments.
pub fn eval_tvf(catalog: &Catalog, name: &str, args: &[Value]) -> Result<TvfOutput, TvfError> {
    if name.eq_ignore_ascii_case("fGetNearbyObjEq") || name.eq_ignore_ascii_case("fGetNearestObjEq")
    {
        let [ra, dec, radius] = numeric_args::<3>(name, args)?;
        if radius < 0.0 {
            return Err(bad(name, "radius must be non-negative"));
        }
        let ball = radial_query_sphere(ra, dec, radius).map_err(|e| bad(name, &e.to_string()))?;
        let mut out = nearby(catalog, &ball);
        if name.eq_ignore_ascii_case("fGetNearestObjEq") {
            // The real SkyServer variant returns only the closest object.
            out.rows.truncate(1);
        }
        Ok(out)
    } else if name.eq_ignore_ascii_case("fGetNearbyObjXYZ") {
        let [cx, cy, cz, radius] = numeric_args::<4>(name, args)?;
        if radius < 0.0 {
            return Err(bad(name, "radius must be non-negative"));
        }
        let norm = (cx * cx + cy * cy + cz * cz).sqrt();
        if norm < 1e-12 {
            return Err(bad(name, "direction vector must be non-zero"));
        }
        let center = Point::from_slice(&[cx / norm, cy / norm, cz / norm]);
        let chord = fp_geometry::celestial::chord_of_angle(arcmin_to_rad(radius));
        let ball = HyperSphere::new(center, chord).map_err(|e| bad(name, &e.to_string()))?;
        Ok(nearby(catalog, &ball))
    } else if name.eq_ignore_ascii_case("fGetObjFromTriangle") {
        let [ra1, dec1, ra2, dec2, ra3, dec3] = numeric_args::<6>(name, args)?;
        let poly = triangle_polytope(ra1, dec1, ra2, dec2, ra3, dec3)
            .ok_or_else(|| bad(name, "vertices are collinear or not counter-clockwise"))?;
        Ok(from_triangle(catalog, &poly))
    } else if name.eq_ignore_ascii_case("fGetObjFromRect")
        || name.eq_ignore_ascii_case("fGetObjFromRectEq")
    {
        // fGetObjFromRect(min_ra, max_ra, min_dec, max_dec); the *Eq
        // variant uses (ra1, dec1, ra2, dec2) ordering on the real site —
        // both normalized here to a (ra, dec) box.
        let [a, b, c, d] = numeric_args::<4>(name, args)?;
        let (ra_lo, ra_hi, dec_lo, dec_hi) = if name.eq_ignore_ascii_case("fGetObjFromRect") {
            (a.min(b), a.max(b), c.min(d), c.max(d))
        } else {
            (a.min(c), a.max(c), b.min(d), b.max(d))
        };
        Ok(from_rect(catalog, ra_lo, ra_hi, dec_lo, dec_hi))
    } else {
        Err(TvfError::UnknownFunction(name.to_string()))
    }
}

fn bad(name: &str, reason: &str) -> TvfError {
    TvfError::BadArgument {
        name: name.to_string(),
        reason: reason.to_string(),
    }
}

fn numeric_args<const N: usize>(name: &str, args: &[Value]) -> Result<[f64; N], TvfError> {
    if args.len() != N {
        return Err(TvfError::Arity {
            name: name.to_string(),
            expected: N,
            got: args.len(),
        });
    }
    let mut out = [0.0; N];
    for (i, a) in args.iter().enumerate() {
        out[i] = a
            .as_f64()
            .ok_or_else(|| bad(name, "arguments must be numeric"))?;
        if !out[i].is_finite() {
            return Err(bad(name, "arguments must be finite"));
        }
    }
    Ok(out)
}

/// Shared implementation of the radial functions: all objects within the
/// chord ball, with their angular distance in arc minutes.
fn nearby(catalog: &Catalog, ball: &HyperSphere) -> TvfOutput {
    let candidates = catalog.spatial_candidates(&ball.bounding_rect());
    let rows_scanned = candidates.len();
    let mut rows: Vec<Vec<Value>> = candidates
        .into_iter()
        .filter(|row| ball.contains_coords(&catalog.unit_coords(*row)))
        .map(|row| {
            let coords = catalog.unit_coords(row);
            let chord = fp_geometry::point::dist2_slices(ball.center().coords(), &coords).sqrt();
            let arcmin = rad_to_deg(angle_of_chord(chord)) * 60.0;
            vec![Value::Int(catalog.obj_id(row)), Value::Float(arcmin)]
        })
        .collect();
    // The real function returns nearest-first; keep that contract.
    rows.sort_by(|a, b| a[1].total_cmp(&b[1]));
    TvfOutput {
        columns: vec!["objID".into(), "distance".into()],
        rows,
        rows_scanned,
    }
}

/// Conservative 3-D candidate cover of a (ra, dec) box: the spatial index
/// works on unit vectors, so the box is sampled and bounded in 3-D. For
/// the ≤ few-degree boxes the search forms produce, corner sampling plus
/// a small curvature margin is a safe cover.
fn rect_candidates(
    catalog: &Catalog,
    ra_lo: f64,
    ra_hi: f64,
    dec_lo: f64,
    dec_hi: f64,
) -> Vec<usize> {
    let mut lo = [f64::INFINITY; 3];
    let mut hi = [f64::NEG_INFINITY; 3];
    let steps = 8;
    for i in 0..=steps {
        for j in 0..=steps {
            let ra = ra_lo + (ra_hi - ra_lo) * i as f64 / steps as f64;
            let dec = dec_lo + (dec_hi - dec_lo) * j as f64 / steps as f64;
            let v = fp_geometry::celestial::radec_to_unit(ra, dec);
            for d in 0..3 {
                lo[d] = lo[d].min(v[d]);
                hi[d] = hi[d].max(v[d]);
            }
        }
    }
    // Margin for curvature between sample points.
    let margin = 1e-4 + 2e-2 * ((ra_hi - ra_lo).abs() + (dec_hi - dec_lo).abs()).to_radians();
    let window = HyperRect::new(
        lo.iter().map(|v| v - margin).collect(),
        hi.iter().map(|v| v + margin).collect(),
    )
    .expect("finite bounds");
    catalog.spatial_candidates(&window)
}

/// All objects inside a (ra, dec) box.
fn from_rect(catalog: &Catalog, ra_lo: f64, ra_hi: f64, dec_lo: f64, dec_hi: f64) -> TvfOutput {
    let candidates = rect_candidates(catalog, ra_lo, ra_hi, dec_lo, dec_hi);
    let rows_scanned = candidates.len();
    let mut rows: Vec<Vec<Value>> = candidates
        .into_iter()
        .filter(|row| {
            let (ra, dec) = catalog.radec(*row);
            ra >= ra_lo && ra <= ra_hi && dec >= dec_lo && dec <= dec_hi
        })
        .map(|row| vec![Value::Int(catalog.obj_id(row))])
        .collect();
    rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
    TvfOutput {
        columns: vec!["objID".into()],
        rows,
        rows_scanned,
    }
}

/// Builds the closed 2-D triangle polytope over (ra, dec) for
/// counter-clockwise vertices, with the same half-space arithmetic the
/// proxy's function template uses — so proxy and origin agree on every
/// boundary tuple. Returns `None` for degenerate (collinear) or
/// clockwise input; a clockwise triangle has an empty face intersection,
/// which both sides would agree on, but rejecting it loudly is kinder.
pub fn triangle_polytope(
    ra1: f64,
    dec1: f64,
    ra2: f64,
    dec2: f64,
    ra3: f64,
    dec3: f64,
) -> Option<Polytope> {
    // Twice the signed area; positive = counter-clockwise.
    let signed2 = (ra2 - ra1) * (dec3 - dec1) - (ra3 - ra1) * (dec2 - dec1);
    if signed2 <= 0.0 {
        return None;
    }
    let edges = [
        ((ra1, dec1), (ra2, dec2)),
        ((ra2, dec2), (ra3, dec3)),
        ((ra3, dec3), (ra1, dec1)),
    ];
    let mut faces = Vec::with_capacity(3);
    for ((xa, ya), (xb, yb)) in edges {
        // Outward normal of a CCW edge: (dy, -dx); interior satisfies
        // normal · p <= normal · a.
        let normal = vec![yb - ya, -(xb - xa)];
        let offset = (yb - ya) * xa - (xb - xa) * ya;
        faces.push(HalfSpace::new(normal, offset).ok()?);
    }
    let bbox = HyperRect::new(
        vec![ra1.min(ra2).min(ra3), dec1.min(dec2).min(dec3)],
        vec![ra1.max(ra2).max(ra3), dec1.max(dec2).max(dec3)],
    )
    .ok()?;
    Polytope::new(faces, bbox).ok()
}

/// All objects whose (ra, dec) lies inside the triangle.
fn from_triangle(catalog: &Catalog, poly: &Polytope) -> TvfOutput {
    let bbox = poly.bbox();
    let (ra_lo, ra_hi) = (bbox.lo()[0], bbox.hi()[0]);
    let (dec_lo, dec_hi) = (bbox.lo()[1], bbox.hi()[1]);
    // Reuse the rectangle candidate cover for the bbox, then apply the
    // exact polytope test in equatorial coordinates.
    let cover = rect_candidates(catalog, ra_lo, ra_hi, dec_lo, dec_hi);
    let rows_scanned = cover.len();
    let mut rows: Vec<Vec<Value>> = cover
        .into_iter()
        .filter(|row| {
            let (ra, dec) = catalog.radec(*row);
            poly.contains_coords(&[ra, dec])
        })
        .map(|row| vec![Value::Int(catalog.obj_id(row))])
        .collect();
    rows.sort_by(|a, b| a[0].total_cmp(&b[0]));
    TvfOutput {
        columns: vec!["objID".into()],
        rows,
        rows_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::CatalogSpec;

    fn cat() -> Catalog {
        Catalog::generate(&CatalogSpec::small_test())
    }

    #[test]
    fn radial_matches_brute_force() {
        let c = cat();
        let out = eval_tvf(
            &c,
            "fGetNearbyObjEq",
            &[Value::Float(185.0), Value::Float(0.0), Value::Float(25.0)],
        )
        .unwrap();
        let brute: usize = (0..c.len())
            .filter(|row| {
                let (ra, dec) = c.radec(*row);
                fp_geometry::celestial::angular_separation(185.0, 0.0, ra, dec)
                    <= arcmin_to_rad(25.0) + 1e-12
            })
            .count();
        assert_eq!(out.rows.len(), brute);
        assert!(out.rows_scanned >= out.rows.len());
        // Distances are ascending and within the radius.
        let mut prev = -1.0;
        for row in &out.rows {
            let d = row[1].as_f64().unwrap();
            assert!(d >= prev);
            assert!(d <= 25.0 + 1e-9);
            prev = d;
        }
    }

    #[test]
    fn radial_is_case_insensitive_and_checked() {
        let c = cat();
        assert!(eval_tvf(
            &c,
            "fgetnearbyobjeq",
            &[Value::Int(185), Value::Int(0), Value::Int(5)]
        )
        .is_ok());
        assert!(matches!(
            eval_tvf(&c, "fNope", &[]),
            Err(TvfError::UnknownFunction(_))
        ));
        assert!(matches!(
            eval_tvf(&c, "fGetNearbyObjEq", &[Value::Int(1)]),
            Err(TvfError::Arity {
                expected: 3,
                got: 1,
                ..
            })
        ));
        assert!(eval_tvf(
            &c,
            "fGetNearbyObjEq",
            &[Value::Str("x".into()), Value::Int(0), Value::Int(5)]
        )
        .is_err());
        assert!(eval_tvf(
            &c,
            "fGetNearbyObjEq",
            &[Value::Int(0), Value::Int(0), Value::Int(-5)]
        )
        .is_err());
    }

    #[test]
    fn rect_matches_brute_force() {
        let c = cat();
        let (ra_lo, ra_hi, dec_lo, dec_hi) = (184.0, 186.0, -0.5, 0.5);
        let out = eval_tvf(
            &c,
            "fGetObjFromRect",
            &[
                Value::Float(ra_lo),
                Value::Float(ra_hi),
                Value::Float(dec_lo),
                Value::Float(dec_hi),
            ],
        )
        .unwrap();
        let brute: usize = (0..c.len())
            .filter(|row| {
                let (ra, dec) = c.radec(*row);
                ra >= ra_lo && ra <= ra_hi && dec >= dec_lo && dec <= dec_hi
            })
            .count();
        assert_eq!(out.rows.len(), brute);
        assert!(!out.rows.is_empty());
    }

    #[test]
    fn rect_eq_argument_order() {
        let c = cat();
        let a = eval_tvf(
            &c,
            "fGetObjFromRect",
            &[
                Value::Float(184.0),
                Value::Float(185.0),
                Value::Float(0.0),
                Value::Float(1.0),
            ],
        )
        .unwrap();
        let b = eval_tvf(
            &c,
            "fGetObjFromRectEq",
            &[
                Value::Float(184.0),
                Value::Float(0.0),
                Value::Float(185.0),
                Value::Float(1.0),
            ],
        )
        .unwrap();
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn xyz_variant_agrees_with_eq_variant() {
        let c = cat();
        let v = fp_geometry::celestial::radec_to_unit(185.0, 0.5);
        let eq = eval_tvf(
            &c,
            "fGetNearbyObjEq",
            &[Value::Float(185.0), Value::Float(0.5), Value::Float(10.0)],
        )
        .unwrap();
        let xyz = eval_tvf(
            &c,
            "fGetNearbyObjXYZ",
            &[
                Value::Float(v[0]),
                Value::Float(v[1]),
                Value::Float(v[2]),
                Value::Float(10.0),
            ],
        )
        .unwrap();
        assert_eq!(eq.rows.len(), xyz.rows.len());
    }

    #[test]
    fn triangle_matches_brute_force() {
        let c = cat();
        // CCW triangle around the hotspot stripe.
        let (v1, v2, v3) = ((184.0, -0.5), (186.5, -0.5), (185.2, 1.0));
        let out = eval_tvf(
            &c,
            "fGetObjFromTriangle",
            &[
                Value::Float(v1.0),
                Value::Float(v1.1),
                Value::Float(v2.0),
                Value::Float(v2.1),
                Value::Float(v3.0),
                Value::Float(v3.1),
            ],
        )
        .unwrap();
        let poly = triangle_polytope(v1.0, v1.1, v2.0, v2.1, v3.0, v3.1).unwrap();
        let brute = (0..c.len())
            .filter(|row| {
                let (ra, dec) = c.radec(*row);
                poly.contains_coords(&[ra, dec])
            })
            .count();
        assert_eq!(out.rows.len(), brute);
        assert!(!out.rows.is_empty(), "triangle covers the dense stripe");
    }

    #[test]
    fn triangle_rejects_degenerate_and_clockwise() {
        let c = cat();
        // Clockwise winding.
        let cw = eval_tvf(
            &c,
            "fGetObjFromTriangle",
            &[
                Value::Float(184.0),
                Value::Float(-0.5),
                Value::Float(185.2),
                Value::Float(1.0),
                Value::Float(186.5),
                Value::Float(-0.5),
            ],
        );
        assert!(matches!(cw, Err(TvfError::BadArgument { .. })));
        // Collinear vertices.
        let flat = eval_tvf(
            &c,
            "fGetObjFromTriangle",
            &[
                Value::Float(184.0),
                Value::Float(0.0),
                Value::Float(185.0),
                Value::Float(0.0),
                Value::Float(186.0),
                Value::Float(0.0),
            ],
        );
        assert!(matches!(flat, Err(TvfError::BadArgument { .. })));
    }

    #[test]
    fn nearest_returns_the_closest_object_only() {
        let c = cat();
        let all = eval_tvf(
            &c,
            "fGetNearbyObjEq",
            &[Value::Float(185.0), Value::Float(0.0), Value::Float(20.0)],
        )
        .unwrap();
        let nearest = eval_tvf(
            &c,
            "fGetNearestObjEq",
            &[Value::Float(185.0), Value::Float(0.0), Value::Float(20.0)],
        )
        .unwrap();
        assert_eq!(nearest.rows.len(), 1);
        assert_eq!(nearest.rows[0], all.rows[0], "nearest = first of sorted");
    }

    #[test]
    fn zero_radius_returns_nothing_or_exact_hits() {
        let c = cat();
        let out = eval_tvf(
            &c,
            "fGetNearbyObjEq",
            &[Value::Float(185.0), Value::Float(0.0), Value::Float(0.0)],
        )
        .unwrap();
        // Only objects exactly at the center (almost surely none).
        assert!(out.rows.len() <= 1);
    }
}
