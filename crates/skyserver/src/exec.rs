//! A SQL executor for the function-embedded query class.
//!
//! This is what makes the synthetic origin site able to answer both the
//! form queries and the proxy's synthesized **remainder queries**: parse →
//! bind `FROM` sources (base table or TVF) → hash joins → `WHERE` filter →
//! `ORDER BY` → `TOP` → projection.

use crate::catalog::Catalog;
use crate::result::{ExecStats, QueryOutcome, ResultSet};
use crate::tvf::{eval_tvf, is_tvf, TvfError, TvfOutput};
use fp_sqlmini::{BinOp, Expr, Query, SelectItem, TableSource, UnOp, Value};
use std::collections::HashMap;

/// An executor error.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// A table name that is not `PhotoPrimary`.
    UnknownTable(String),
    /// A TVF problem.
    Tvf(TvfError),
    /// A column reference that could not be resolved.
    UnknownColumn(String),
    /// An alias used twice in one query.
    DuplicateAlias(String),
    /// A scalar function that is not implemented.
    UnknownScalar(String),
    /// A type error during expression evaluation.
    Type(String),
    /// A TVF argument that is not a constant (the executor evaluates
    /// `FROM`-clause arguments before any rows exist).
    NonConstantArgument,
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            ExecError::Tvf(e) => write!(f, "{e}"),
            ExecError::UnknownColumn(c) => write!(f, "unknown column `{c}`"),
            ExecError::DuplicateAlias(a) => write!(f, "duplicate alias `{a}`"),
            ExecError::UnknownScalar(s) => write!(f, "unknown function `{s}`"),
            ExecError::Type(m) => write!(f, "type error: {m}"),
            ExecError::NonConstantArgument => {
                write!(f, "table-valued function arguments must be constants")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<TvfError> for ExecError {
    fn from(e: TvfError) -> Self {
        ExecError::Tvf(e)
    }
}

/// A bound `FROM`/`JOIN` relation.
enum Relation<'a> {
    /// The `PhotoPrimary` base table.
    Photo(&'a Catalog),
    /// The `SpecObj` spectroscopic table.
    Spec(&'a Catalog),
    /// A materialized TVF result.
    Tvf(TvfOutput),
}

impl Relation<'_> {
    fn columns(&self) -> Vec<String> {
        match self {
            Relation::Photo(_) => crate::catalog::PHOTO_PRIMARY_COLUMNS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Relation::Spec(_) => crate::catalog::SPEC_OBJ_COLUMNS
                .iter()
                .map(|s| s.to_string())
                .collect(),
            Relation::Tvf(out) => out.columns.clone(),
        }
    }

    fn has_column(&self, name: &str) -> bool {
        match self {
            Relation::Photo(_) => Catalog::has_column(name),
            Relation::Spec(_) => Catalog::spec_has_column(name),
            Relation::Tvf(out) => out.columns.iter().any(|c| c == name),
        }
    }

    fn len(&self) -> usize {
        match self {
            Relation::Photo(c) => c.len(),
            Relation::Spec(c) => c.spec_len(),
            Relation::Tvf(out) => out.rows.len(),
        }
    }

    fn value(&self, row: usize, column: &str) -> Option<Value> {
        match self {
            Relation::Photo(c) => c.value(row, column),
            Relation::Spec(c) => c.spec_value(row, column),
            Relation::Tvf(out) => {
                let i = out.columns.iter().position(|c| c == column)?;
                Some(out.rows[row][i].clone())
            }
        }
    }
}

/// One joined tuple: per-relation row indexes (usize::MAX = unbound).
type JoinedRow = Vec<usize>;

struct Binding<'a> {
    alias: String,
    relation: Relation<'a>,
}

/// Executes `query` against `catalog`.
///
/// # Errors
/// Returns [`ExecError`] on unknown tables/functions/columns and type
/// errors; never panics on well-formed ASTs.
pub fn execute(catalog: &Catalog, query: &Query) -> Result<QueryOutcome, ExecError> {
    let mut stats = ExecStats::default();

    // Bind FROM and JOIN sources.
    let mut bindings: Vec<Binding<'_>> = Vec::with_capacity(1 + query.joins.len());
    bind_source(catalog, &query.from, &mut bindings, &mut stats)?;

    // Seed tuples from the driving relation.
    let mut tuples: Vec<JoinedRow> = (0..bindings[0].relation.len()).map(|r| vec![r]).collect();

    for join in &query.joins {
        bind_source(catalog, &join.source, &mut bindings, &mut stats)?;
        let new_idx = bindings.len() - 1;
        tuples = execute_join(&bindings, tuples, new_idx, &join.on, &mut stats)?;
    }

    // WHERE.
    if let Some(pred) = &query.where_clause {
        stats.rows_scanned += tuples.len();
        let mut kept = Vec::with_capacity(tuples.len());
        for t in tuples {
            if truthy(&eval_expr(pred, &bindings, &t)?) {
                kept.push(t);
            }
        }
        tuples = kept;
    }

    // ORDER BY.
    if let Some((col, asc)) = &query.order_by {
        let sort_expr = Expr::Column {
            qualifier: None,
            name: col.clone(),
        };
        let mut keyed: Vec<(Value, JoinedRow)> = tuples
            .into_iter()
            .map(|t| Ok((eval_expr(&sort_expr, &bindings, &t)?, t)))
            .collect::<Result<_, ExecError>>()?;
        keyed.sort_by(|a, b| {
            let ord = a.0.total_cmp(&b.0);
            if *asc {
                ord
            } else {
                ord.reverse()
            }
        });
        tuples = keyed.into_iter().map(|(_, t)| t).collect();
    }

    // TOP.
    if let Some(n) = query.top {
        tuples.truncate(n as usize);
    }

    // Projection.
    let (columns, projectors) = build_projection(&query.select, &bindings)?;
    let mut rows = Vec::with_capacity(tuples.len());
    for t in &tuples {
        let mut row = Vec::with_capacity(projectors.len());
        for p in &projectors {
            row.push(eval_expr(p, &bindings, t)?);
        }
        rows.push(row);
    }

    let result = ResultSet { columns, rows };
    stats.rows_returned = result.len();
    stats.result_bytes = result.xml_bytes();
    Ok(QueryOutcome { result, stats })
}

fn bind_source<'a>(
    catalog: &'a Catalog,
    source: &TableSource,
    bindings: &mut Vec<Binding<'a>>,
    stats: &mut ExecStats,
) -> Result<(), ExecError> {
    let alias = source.binding_name().to_string();
    if bindings.iter().any(|b| b.alias == alias) {
        return Err(ExecError::DuplicateAlias(alias));
    }
    let relation = match source {
        TableSource::Table { name, .. } => {
            if name.eq_ignore_ascii_case("PhotoPrimary") {
                Relation::Photo(catalog)
            } else if name.eq_ignore_ascii_case("SpecObj") {
                Relation::Spec(catalog)
            } else {
                return Err(ExecError::UnknownTable(name.clone()));
            }
        }
        TableSource::Function { name, args, .. } => {
            if !is_tvf(name) {
                return Err(ExecError::Tvf(TvfError::UnknownFunction(name.clone())));
            }
            let arg_values: Vec<Value> = args
                .iter()
                .map(|a| eval_const(a).ok_or(ExecError::NonConstantArgument))
                .collect::<Result<_, _>>()?;
            let out = eval_tvf(catalog, name, &arg_values)?;
            stats.rows_scanned += out.rows_scanned;
            Relation::Tvf(out)
        }
    };
    bindings.push(Binding { alias, relation });
    Ok(())
}

/// Joins existing tuples with relation `new_idx` under condition `on`,
/// using a hash join for `left.col = new.col` equality conditions and
/// falling back to a nested loop otherwise.
fn execute_join(
    bindings: &[Binding<'_>],
    tuples: Vec<JoinedRow>,
    new_idx: usize,
    on: &Expr,
    stats: &mut ExecStats,
) -> Result<Vec<JoinedRow>, ExecError> {
    let new = &bindings[new_idx];

    // Try the hash-join fast path.
    if let Expr::Binary {
        op: BinOp::Eq,
        left,
        right,
    } = on
    {
        if let (Some((la, lc)), Some((ra, rc))) = (as_column(left), as_column(right)) {
            // Identify which side references the new relation.
            let (probe_side, build_col, probe_col) = if la == new.alias {
                (ra, lc, rc)
            } else if ra == new.alias {
                (la, rc, lc)
            } else {
                ("", "", "")
            };
            if !probe_side.is_empty() {
                // `PhotoPrimary.objID` probes use the catalog's id index
                // directly instead of building a hash table over millions
                // of rows.
                if let Relation::Photo(cat) = &new.relation {
                    if build_col == "objID" {
                        let mut out = Vec::with_capacity(tuples.len());
                        for mut t in tuples {
                            stats.rows_scanned += 1;
                            let v = tuple_value(bindings, &t, probe_side, probe_col)?;
                            if let Some(id) = v.as_i64() {
                                if let Some(row) = cat.row_of_id(id) {
                                    t.push(row);
                                    out.push(t);
                                }
                            }
                        }
                        return Ok(out);
                    }
                }
                // Generic hash join: build on the new relation.
                let mut table: HashMap<String, Vec<usize>> = HashMap::new();
                for row in 0..new.relation.len() {
                    let v = new
                        .relation
                        .value(row, build_col)
                        .ok_or_else(|| ExecError::UnknownColumn(build_col.to_string()))?;
                    table.entry(hash_key(&v)).or_default().push(row);
                }
                let mut out = Vec::new();
                for t in tuples {
                    stats.rows_scanned += 1;
                    let v = tuple_value(bindings, &t, probe_side, probe_col)?;
                    if v.is_null() {
                        continue;
                    }
                    if let Some(rows) = table.get(&hash_key(&v)) {
                        for &row in rows {
                            let mut t2 = t.clone();
                            t2.push(row);
                            out.push(t2);
                        }
                    }
                }
                return Ok(out);
            }
        }
    }

    // Nested loop fallback (small relations only in practice).
    let mut out = Vec::new();
    for t in tuples {
        for row in 0..new.relation.len() {
            stats.rows_scanned += 1;
            let mut t2 = t.clone();
            t2.push(row);
            if truthy(&eval_expr(on, bindings, &t2)?) {
                out.push(t2);
            }
        }
    }
    Ok(out)
}

fn as_column(e: &Expr) -> Option<(&str, &str)> {
    match e {
        Expr::Column {
            qualifier: Some(q),
            name,
        } => Some((q.as_str(), name.as_str())),
        _ => None,
    }
}

/// A hashable key for join values, with Int/Float coercion that never
/// loses integer precision: a whole-valued float maps onto the integer
/// key, instead of integers mapping onto floats (which would collide
/// distinct SDSS-scale ids above 2^53).
fn hash_key(v: &Value) -> String {
    match v {
        Value::Int(i) => format!("i{i}"),
        Value::Float(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
            format!("i{}", *f as i64)
        }
        Value::Float(f) => format!("f{f}"),
        Value::Str(s) => format!("s{s}"),
        Value::Bool(b) => format!("b{b}"),
        Value::Null => "null".to_string(),
    }
}

fn tuple_value(
    bindings: &[Binding<'_>],
    tuple: &JoinedRow,
    alias: &str,
    column: &str,
) -> Result<Value, ExecError> {
    let idx = bindings
        .iter()
        .position(|b| b.alias == alias)
        .ok_or_else(|| ExecError::UnknownColumn(format!("{alias}.{column}")))?;
    if idx >= tuple.len() {
        return Err(ExecError::UnknownColumn(format!("{alias}.{column}")));
    }
    bindings[idx]
        .relation
        .value(tuple[idx], column)
        .ok_or_else(|| ExecError::UnknownColumn(format!("{alias}.{column}")))
}

/// Resolves an unqualified column against all bound relations (first match
/// in binding order wins, mirroring lax SQL dialects).
fn resolve_unqualified(
    bindings: &[Binding<'_>],
    tuple: &JoinedRow,
    column: &str,
) -> Result<Value, ExecError> {
    for (i, b) in bindings.iter().enumerate() {
        if i < tuple.len() && b.relation.has_column(column) {
            if let Some(v) = b.relation.value(tuple[i], column) {
                return Ok(v);
            }
        }
    }
    Err(ExecError::UnknownColumn(column.to_string()))
}

fn build_projection(
    select: &[SelectItem],
    bindings: &[Binding<'_>],
) -> Result<(Vec<String>, Vec<Expr>), ExecError> {
    let mut columns = Vec::new();
    let mut projectors = Vec::new();
    for item in select {
        match item {
            SelectItem::Wildcard => {
                for b in bindings {
                    for c in b.relation.columns() {
                        projectors.push(Expr::Column {
                            qualifier: Some(b.alias.clone()),
                            name: c.clone(),
                        });
                        columns.push(c);
                    }
                }
            }
            SelectItem::QualifiedWildcard(alias) => {
                let b = bindings
                    .iter()
                    .find(|b| &b.alias == alias)
                    .ok_or_else(|| ExecError::UnknownColumn(format!("{alias}.*")))?;
                for c in b.relation.columns() {
                    projectors.push(Expr::Column {
                        qualifier: Some(alias.clone()),
                        name: c.clone(),
                    });
                    columns.push(c);
                }
            }
            SelectItem::Expr { expr, alias } => {
                validate_columns(expr, bindings)?;
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    other => other.to_sql(),
                });
                projectors.push(expr.clone());
                columns.push(name);
            }
        }
    }
    Ok((columns, projectors))
}

/// Checks every column reference in `e` against the bound relations, so
/// projection errors surface even when no tuples survive the filter.
fn validate_columns(e: &Expr, bindings: &[Binding<'_>]) -> Result<(), ExecError> {
    let mut bad: Option<String> = None;
    e.walk(&mut |node| {
        if bad.is_some() {
            return;
        }
        if let Expr::Column { qualifier, name } = node {
            let ok = match qualifier {
                Some(q) => bindings
                    .iter()
                    .any(|b| &b.alias == q && b.relation.has_column(name)),
                None => bindings.iter().any(|b| b.relation.has_column(name)),
            };
            if !ok {
                bad = Some(match qualifier {
                    Some(q) => format!("{q}.{name}"),
                    None => name.clone(),
                });
            }
        }
    });
    match bad {
        Some(c) => Err(ExecError::UnknownColumn(c)),
        None => Ok(()),
    }
}

/// Evaluates a constant expression (no column references); `None` when the
/// expression references rows.
pub fn eval_const(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(l) => Some(Value::from(l)),
        Expr::Unary {
            op: UnOp::Neg,
            expr,
        } => {
            let v = eval_const(expr)?;
            match v {
                Value::Int(i) => Some(Value::Int(-i)),
                Value::Float(f) => Some(Value::Float(-f)),
                _ => None,
            }
        }
        Expr::Binary { op, left, right } => {
            let l = eval_const(left)?;
            let r = eval_const(right)?;
            arith(*op, &l, &r).ok()
        }
        Expr::Call { name, args } => {
            let vals: Option<Vec<Value>> = args.iter().map(eval_const).collect();
            scalar_fn(name, &vals?).ok()
        }
        _ => None,
    }
}

/// Evaluates `e` against one joined tuple.
fn eval_expr(e: &Expr, bindings: &[Binding<'_>], tuple: &JoinedRow) -> Result<Value, ExecError> {
    match e {
        Expr::Literal(l) => Ok(Value::from(l)),
        Expr::Param(p) => Err(ExecError::Type(format!(
            "unbound template parameter ${p} at execution time"
        ))),
        Expr::Column { qualifier, name } => match qualifier {
            Some(q) => tuple_value(bindings, tuple, q, name),
            None => resolve_unqualified(bindings, tuple, name),
        },
        Expr::Call { name, args } => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_expr(a, bindings, tuple))
                .collect::<Result<_, _>>()?;
            scalar_fn(name, &vals)
        }
        Expr::Binary { op, left, right } => {
            match op {
                BinOp::And => {
                    // Short-circuit.
                    let l = eval_expr(left, bindings, tuple)?;
                    if !truthy(&l) {
                        return Ok(Value::Bool(false));
                    }
                    let r = eval_expr(right, bindings, tuple)?;
                    Ok(Value::Bool(truthy(&r)))
                }
                BinOp::Or => {
                    let l = eval_expr(left, bindings, tuple)?;
                    if truthy(&l) {
                        return Ok(Value::Bool(true));
                    }
                    let r = eval_expr(right, bindings, tuple)?;
                    Ok(Value::Bool(truthy(&r)))
                }
                BinOp::Like => {
                    let l = eval_expr(left, bindings, tuple)?;
                    let r = eval_expr(right, bindings, tuple)?;
                    match (l.as_str(), r.as_str()) {
                        (Some(s), Some(p)) => Ok(Value::Bool(like_match(s, p))),
                        _ => Ok(Value::Bool(false)),
                    }
                }
                BinOp::Eq | BinOp::Neq | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    let l = eval_expr(left, bindings, tuple)?;
                    let r = eval_expr(right, bindings, tuple)?;
                    if l.is_null() || r.is_null() {
                        // SQL three-valued logic collapses to false in a
                        // WHERE context.
                        return Ok(Value::Bool(false));
                    }
                    let ord = l.total_cmp(&r);
                    Ok(Value::Bool(match op {
                        BinOp::Eq => ord.is_eq(),
                        BinOp::Neq => ord.is_ne(),
                        BinOp::Lt => ord.is_lt(),
                        BinOp::Le => ord.is_le(),
                        BinOp::Gt => ord.is_gt(),
                        BinOp::Ge => ord.is_ge(),
                        _ => unreachable!(),
                    }))
                }
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
                    let l = eval_expr(left, bindings, tuple)?;
                    let r = eval_expr(right, bindings, tuple)?;
                    arith(*op, &l, &r)
                }
            }
        }
        Expr::Unary { op, expr } => {
            let v = eval_expr(expr, bindings, tuple)?;
            match op {
                UnOp::Neg => match v {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Float(f) => Ok(Value::Float(-f)),
                    Value::Null => Ok(Value::Null),
                    other => Err(ExecError::Type(format!("cannot negate {other:?}"))),
                },
                UnOp::Not => Ok(Value::Bool(!truthy(&v))),
            }
        }
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let v = eval_expr(expr, bindings, tuple)?;
            let lo = eval_expr(low, bindings, tuple)?;
            let hi = eval_expr(high, bindings, tuple)?;
            if v.is_null() || lo.is_null() || hi.is_null() {
                return Ok(Value::Bool(false));
            }
            let inside = v.total_cmp(&lo).is_ge() && v.total_cmp(&hi).is_le();
            Ok(Value::Bool(inside != *negated))
        }
        Expr::InList {
            expr,
            list,
            negated,
        } => {
            let v = eval_expr(expr, bindings, tuple)?;
            if v.is_null() {
                return Ok(Value::Bool(false));
            }
            let mut found = false;
            for item in list {
                let iv = eval_expr(item, bindings, tuple)?;
                if !iv.is_null() && v.total_cmp(&iv).is_eq() {
                    found = true;
                    break;
                }
            }
            Ok(Value::Bool(found != *negated))
        }
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(expr, bindings, tuple)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
    }
}

fn truthy(v: &Value) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Null => false,
        Value::Int(i) => *i != 0,
        Value::Float(f) => *f != 0.0,
        Value::Str(s) => !s.is_empty(),
    }
}

fn arith(op: BinOp, l: &Value, r: &Value) -> Result<Value, ExecError> {
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    // Integer arithmetic stays integral except division.
    if let (Value::Int(a), Value::Int(b)) = (l, r) {
        return Ok(match op {
            BinOp::Add => Value::Int(a.wrapping_add(*b)),
            BinOp::Sub => Value::Int(a.wrapping_sub(*b)),
            BinOp::Mul => Value::Int(a.wrapping_mul(*b)),
            BinOp::Div => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Float(*a as f64 / *b as f64)
                }
            }
            BinOp::Mod => {
                if *b == 0 {
                    Value::Null
                } else {
                    Value::Int(a.wrapping_rem(*b))
                }
            }
            _ => return Err(ExecError::Type(format!("{op:?} is not arithmetic"))),
        });
    }
    let (a, b) = match (l.as_f64(), r.as_f64()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(ExecError::Type(format!(
                "arithmetic on non-numeric values {l:?}, {r:?}"
            )))
        }
    };
    Ok(match op {
        BinOp::Add => Value::Float(a + b),
        BinOp::Sub => Value::Float(a - b),
        BinOp::Mul => Value::Float(a * b),
        BinOp::Div => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a / b)
            }
        }
        BinOp::Mod => {
            if b == 0.0 {
                Value::Null
            } else {
                Value::Float(a % b)
            }
        }
        _ => return Err(ExecError::Type(format!("{op:?} is not arithmetic"))),
    })
}

/// The scalar function library (numeric; enough for the templates'
/// coordinate formulas and `other_predicates`). Trigonometry is in
/// **degrees**, matching how SkyServer templates write `cos(ra)`.
fn scalar_fn(name: &str, args: &[Value]) -> Result<Value, ExecError> {
    let f1 = |args: &[Value]| -> Result<f64, ExecError> {
        if args.len() != 1 {
            return Err(ExecError::Type(format!(
                "{} expects 1 argument",
                args.len()
            )));
        }
        args[0]
            .as_f64()
            .ok_or_else(|| ExecError::Type("expected a number".into()))
    };
    let lower = name.to_ascii_lowercase();
    Ok(match lower.as_str() {
        "cos" => Value::Float(f1(args)?.to_radians().cos()),
        "sin" => Value::Float(f1(args)?.to_radians().sin()),
        "tan" => Value::Float(f1(args)?.to_radians().tan()),
        "sqrt" => Value::Float(f1(args)?.max(0.0).sqrt()),
        "abs" => match args {
            [Value::Int(i)] => Value::Int(i.wrapping_abs()),
            _ => Value::Float(f1(args)?.abs()),
        },
        "floor" => Value::Float(f1(args)?.floor()),
        "ceiling" | "ceil" => Value::Float(f1(args)?.ceil()),
        "log" => Value::Float(f1(args)?.max(f64::MIN_POSITIVE).ln()),
        "log10" => Value::Float(f1(args)?.max(f64::MIN_POSITIVE).log10()),
        "exp" => Value::Float(f1(args)?.exp()),
        "radians" => Value::Float(f1(args)?.to_radians()),
        "degrees" => Value::Float(f1(args)?.to_degrees()),
        "least" | "greatest" => {
            if args.len() != 2 {
                return Err(ExecError::Type(format!("{lower} expects 2 arguments")));
            }
            let a = args[0]
                .as_f64()
                .ok_or_else(|| ExecError::Type("expected a number".into()))?;
            let b = args[1]
                .as_f64()
                .ok_or_else(|| ExecError::Type("expected a number".into()))?;
            Value::Float(if lower == "least" { a.min(b) } else { a.max(b) })
        }
        "power" => {
            if args.len() != 2 {
                return Err(ExecError::Type("power expects 2 arguments".into()));
            }
            let a = args[0]
                .as_f64()
                .ok_or_else(|| ExecError::Type("expected a number".into()))?;
            let b = args[1]
                .as_f64()
                .ok_or_else(|| ExecError::Type("expected a number".into()))?;
            Value::Float(a.powf(b))
        }
        _ => return Err(ExecError::UnknownScalar(name.to_string())),
    })
}

/// SQL `LIKE` with `%` (any run) and `_` (any one char), case-sensitive.
fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => (0..=s.len()).any(|k| rec(&s[k..], &p[1..])),
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let s: Vec<char> = s.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    rec(&s, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::CatalogSpec;
    use fp_sqlmini::parse_query;

    fn cat() -> Catalog {
        Catalog::generate(&CatalogSpec::small_test())
    }

    fn run(c: &Catalog, sql: &str) -> QueryOutcome {
        execute(c, &parse_query(sql).unwrap()).unwrap()
    }

    #[test]
    fn tvf_join_photoprimary() {
        let c = cat();
        let out = run(
            &c,
            "SELECT p.objID, p.ra, p.dec, n.distance \
             FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        );
        assert_eq!(out.result.columns, ["objID", "ra", "dec", "distance"]);
        assert!(!out.result.is_empty());
        // Join must not change cardinality (objID is a key).
        let alone = run(&c, "SELECT * FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n");
        assert_eq!(out.result.len(), alone.result.len());
    }

    #[test]
    fn where_filters_and_top_truncates() {
        let c = cat();
        let all = run(
            &c,
            "SELECT p.r FROM fGetNearbyObjEq(185.0, 0.0, 30.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        );
        let bright = run(
            &c,
            "SELECT p.r FROM fGetNearbyObjEq(185.0, 0.0, 30.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID WHERE p.r < 18.0",
        );
        assert!(bright.result.len() < all.result.len());
        for row in &bright.result.rows {
            assert!(row[0].as_f64().unwrap() < 18.0);
        }
        let top = run(
            &c,
            "SELECT TOP 5 p.r FROM fGetNearbyObjEq(185.0, 0.0, 30.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        );
        assert_eq!(top.result.len(), 5.min(all.result.len()));
    }

    #[test]
    fn order_by_sorts() {
        let c = cat();
        let out = run(
            &c,
            "SELECT p.r FROM fGetNearbyObjEq(185.0, 0.0, 25.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID ORDER BY r DESC",
        );
        let vals: Vec<f64> = out
            .result
            .rows
            .iter()
            .map(|r| r[0].as_f64().unwrap())
            .collect();
        assert!(vals.windows(2).all(|w| w[0] >= w[1]));
    }

    #[test]
    fn wildcard_and_qualified_wildcard() {
        let c = cat();
        let q = run(&c, "SELECT n.* FROM fGetNearbyObjEq(185.0, 0.0, 10.0) n");
        assert_eq!(q.result.columns, ["objID", "distance"]);
        let w = run(
            &c,
            "SELECT * FROM fGetNearbyObjEq(185.0, 0.0, 10.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        );
        assert_eq!(
            w.result.columns.len(),
            2 + crate::catalog::PHOTO_PRIMARY_COLUMNS.len()
        );
    }

    #[test]
    fn expressions_between_in_like_functions() {
        let c = cat();
        let out = run(
            &c,
            "SELECT p.g - p.r AS color FROM fGetNearbyObjEq(185.0, 0.0, 30.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID \
             WHERE p.r BETWEEN 15.0 AND 20.0 AND p.type IN (3, 6) AND abs(p.dec) < 3.0",
        );
        assert_eq!(out.result.columns, ["color"]);
        for row in &out.result.rows {
            let color = row[0].as_f64().unwrap();
            assert!((0.0..=1.5).contains(&color), "g-r in generator range");
        }
    }

    #[test]
    fn two_join_query_through_spec_obj() {
        // The paper's property (3): joins that preserve the function's
        // query semantics. TVF → PhotoPrimary → SpecObj.
        let c = cat();
        let out = run(
            &c,
            "SELECT p.objID, s.z, s.class FROM fGetNearbyObjEq(185.0, 0.0, 60.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID \
             JOIN SpecObj s ON s.objID = p.objID \
             WHERE s.class = 1",
        );
        assert!(!out.result.is_empty(), "wide cone should catch spectra");
        // Brute force: objects in the cone that have a class-1 spectrum.
        let limit = fp_geometry::celestial::arcmin_to_rad(60.0);
        let mut want = 0usize;
        for srow in 0..c.spec_len() {
            if c.spec_value(srow, "class").unwrap() != Value::Int(1) {
                continue;
            }
            let obj_id = c.spec_value(srow, "objID").unwrap().as_i64().unwrap();
            let prow = c.row_of_id(obj_id).unwrap();
            let (ra, dec) = c.radec(prow);
            if fp_geometry::celestial::angular_separation(185.0, 0.0, ra, dec) <= limit + 1e-12 {
                want += 1;
            }
        }
        assert_eq!(out.result.len(), want);
        // Redshifts come from the spec table, not the z magnitude.
        for row in &out.result.rows {
            let z = row[1].as_f64().unwrap();
            assert!((0.0..0.8).contains(&z), "redshift {z}");
        }
    }

    #[test]
    fn spec_obj_scans_standalone() {
        let c = cat();
        let out = run(&c, "SELECT s.specObjID FROM SpecObj s WHERE s.z > 0.5");
        assert!(!out.result.is_empty());
        let all = run(&c, "SELECT s.specObjID FROM SpecObj s");
        assert_eq!(all.result.len(), c.spec_len());
        assert!(out.result.len() < all.result.len());
    }

    #[test]
    fn errors_are_reported() {
        let c = cat();
        let e = execute(&c, &parse_query("SELECT * FROM Missing t").unwrap());
        assert!(matches!(e, Err(ExecError::UnknownTable(_))));
        let e = execute(
            &c,
            &parse_query("SELECT nope FROM PhotoPrimary p WHERE p.r < 0").unwrap(),
        );
        assert!(matches!(e, Err(ExecError::UnknownColumn(_))));
        let e = execute(
            &c,
            &parse_query("SELECT * FROM fGetNearbyObjEq($ra, 0.0, 1.0) n").unwrap(),
        );
        assert!(matches!(e, Err(ExecError::NonConstantArgument)));
        let e = execute(
            &c,
            &parse_query("SELECT * FROM PhotoPrimary p JOIN PhotoPrimary p ON p.r = p.r").unwrap(),
        );
        assert!(matches!(e, Err(ExecError::DuplicateAlias(_))));
    }

    #[test]
    fn const_folding_in_tvf_args() {
        let c = cat();
        let a = run(
            &c,
            "SELECT * FROM fGetNearbyObjEq(184.0 + 1.0, 0.0, 15.0) n",
        );
        let b = run(&c, "SELECT * FROM fGetNearbyObjEq(185.0, 0.0, 15.0) n");
        assert_eq!(a.result.len(), b.result.len());
    }

    #[test]
    fn like_matching() {
        assert!(like_match("PhotoPrimary", "Photo%"));
        assert!(like_match("abc", "a_c"));
        assert!(like_match("abc", "%"));
        assert!(!like_match("abc", "a_"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("a%b", "a%b"));
    }

    #[test]
    fn stats_account_scans() {
        let c = cat();
        let out = run(
            &c,
            "SELECT p.objID FROM fGetNearbyObjEq(185.0, 0.0, 20.0) n \
             JOIN PhotoPrimary p ON n.objID = p.objID",
        );
        assert!(out.stats.rows_scanned >= out.stats.rows_returned);
        assert!(out.stats.result_bytes > 0);
    }

    #[test]
    fn trig_is_in_degrees() {
        let v = scalar_fn("cos", &[Value::Float(0.0)]).unwrap();
        assert_eq!(v.as_f64().unwrap(), 1.0);
        let v = scalar_fn("cos", &[Value::Float(90.0)]).unwrap();
        assert!(v.as_f64().unwrap().abs() < 1e-12);
        let v = scalar_fn("sin", &[Value::Float(90.0)]).unwrap();
        assert!((v.as_f64().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn null_semantics() {
        // NULL comparisons are false; arithmetic with NULL is NULL.
        assert_eq!(
            arith(BinOp::Add, &Value::Null, &Value::Int(1)).unwrap(),
            Value::Null
        );
        assert_eq!(
            arith(BinOp::Div, &Value::Int(1), &Value::Int(0)).unwrap(),
            Value::Null
        );
    }
}
