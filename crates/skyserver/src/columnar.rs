//! Columnar cache-entry representation: structure-of-arrays coordinate
//! columns, a per-entry spatial micro-index, and a pre-serialized row
//! slab for zero-copy response assembly.
//!
//! The proxy answers a contained query by "a spatial region selection
//! query over cached results" (paper §3.2), so the latency of a hit *is*
//! the latency of that selection plus response serialization. The
//! row-major [`ResultSet`] makes both expensive: every query re-parses
//! coordinate cells out of [`Value`]s and every response re-serializes
//! the XML document. [`ColumnarRows`] does that work **once, at insert
//! time**:
//!
//! * the declared coordinate attributes are extracted into one `Vec<f64>`
//!   per dimension (structure of arrays — the selection loop reads plain
//!   floats, no `Value` matching, no per-row allocation);
//! * a small micro-index (see [`IndexKind`]) over those columns prunes
//!   candidate rows
//!   before the exact containment test (entries are at most a few
//!   thousand rows, so the index is zones over a sort order or a uniform
//!   grid, not a tree);
//! * every row's `<Row>…</Row>` XML fragment is serialized into one
//!   contiguous byte slab with per-row `(offset, len)` spans, so a
//!   response is assembled by copying byte ranges between a shared
//!   header and footer — byte-identical to the [`Element`]-tree
//!   serialization, without ever touching `Value`s again.
//!
//! [`Element`]: fp_xmlite::Element

use crate::result::ResultSet;
use fp_geometry::Region;
use fp_sqlmini::Value;
use fp_xmlite::escape_text;

/// Closing tag shared by every assembled document.
pub const FOOTER: &[u8] = b"</ResultSet>";

/// Rows per zone of [`MicroIndex::Zones`]. Small enough that one zone's
/// exact tests are cheap, large enough that the per-zone bounding boxes
/// stay a small fraction of the column data.
const ZONE_ROWS: usize = 64;

/// Below this row count no index beats a straight scan of the SoA
/// columns (measured in `benches/local_eval.rs`; the scan is a handful
/// of nanoseconds per row).
const FLAT_MAX_ROWS: usize = 256;

/// At and above this row count the uniform grid overtakes sorted zones
/// for selective queries (measured crossover, see DESIGN.md §8: zones
/// prune only along the sort dimension, the grid prunes along two).
const GRID_MIN_ROWS: usize = 4096;

/// Statistics of one columnar selection, for metrics and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SelectStats {
    /// Rows in the entry.
    pub rows_total: usize,
    /// Candidate rows the micro-index let through to the exact test.
    pub rows_scanned: usize,
    /// Rows selected.
    pub rows_selected: usize,
}

impl SelectStats {
    /// Rows the micro-index pruned without an exact containment test.
    pub fn rows_pruned(&self) -> usize {
        self.rows_total - self.rows_scanned
    }
}

/// Which micro-index variant a [`ColumnarRows`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// No index: scan every row (tiny entries).
    Flat,
    /// Rows sorted by the first coordinate, fixed-size zones with
    /// per-zone bounding boxes.
    Zones,
    /// Uniform grid over the first two dimensions with per-cell row
    /// lists (first dimension only when the entry is 1-D).
    Grid,
}

/// The per-entry spatial micro-index over the SoA columns.
#[derive(Debug, Clone)]
enum MicroIndex {
    Flat,
    Zones {
        /// Row ids in ascending order of the first coordinate.
        order: Vec<u32>,
        /// Zone bounding boxes, zone-major: `lo[z * dims + d]`.
        lo: Vec<f64>,
        hi: Vec<f64>,
    },
    Grid {
        /// Cells in row-major order (`cy * side + cx`); each holds row
        /// ids. Rows with non-finite grid coordinates go to `overflow`,
        /// which every query scans (the exact test rejects them anyway).
        cells: Vec<Vec<u32>>,
        side: usize,
        min: [f64; 2],
        inv_step: [f64; 2],
        overflow: Vec<u32>,
    },
}

/// The columnar form of one cached result. Immutable once built.
#[derive(Debug, Clone)]
pub struct ColumnarRows {
    /// Result-column index per region dimension (the coordinate set the
    /// columns were extracted for).
    coord_idx: Vec<usize>,
    /// SoA coordinate columns: `cols[d][row]`.
    cols: Vec<Vec<f64>>,
    /// Concatenated `<Row>…</Row>` fragments.
    slab: Vec<u8>,
    /// Per-row `(offset, len)` into `slab`.
    spans: Vec<(u32, u32)>,
    /// `<ResultSet><Columns>…</Columns>` prefix shared by every response
    /// assembled from this entry.
    header: Vec<u8>,
    index: MicroIndex,
}

impl ColumnarRows {
    /// Builds the columnar form of `rs` for the coordinate columns at
    /// `coord_idx` (region dimension order), choosing the micro-index by
    /// the measured size crossover.
    ///
    /// Returns `None` when any coordinate cell is out of range or
    /// non-numeric — exactly the condition under which row-major local
    /// evaluation aborts, so "columnar form exists" and "entry is
    /// locally evaluable" coincide.
    pub fn build(rs: &ResultSet, coord_idx: &[usize]) -> Option<ColumnarRows> {
        let kind = match rs.len() {
            n if n < FLAT_MAX_ROWS => IndexKind::Flat,
            n if n < GRID_MIN_ROWS => IndexKind::Zones,
            _ => IndexKind::Grid,
        };
        Self::build_with_index(rs, coord_idx, kind)
    }

    /// [`Self::build`] with an explicit index choice (benches measure
    /// the crossover; production code uses `build`).
    pub fn build_with_index(
        rs: &ResultSet,
        coord_idx: &[usize],
        kind: IndexKind,
    ) -> Option<ColumnarRows> {
        let dims = coord_idx.len();
        if dims == 0 {
            return None;
        }
        let rows = rs.len();

        // SoA extraction: parse every coordinate cell exactly once.
        let mut cols: Vec<Vec<f64>> = vec![Vec::with_capacity(rows); dims];
        for row in &rs.rows {
            for (d, &ci) in coord_idx.iter().enumerate() {
                cols[d].push(row.get(ci)?.as_f64()?);
            }
        }

        // Row slab: serialize every <Row> fragment once, contiguously.
        let mut slab = Vec::with_capacity(rows * 32);
        let mut spans = Vec::with_capacity(rows);
        for row in &rs.rows {
            let start = slab.len();
            write_row_xml(row, &mut slab);
            spans.push((start as u32, (slab.len() - start) as u32));
        }

        let index = match kind {
            IndexKind::Flat => MicroIndex::Flat,
            IndexKind::Zones => build_zones(&cols, rows),
            IndexKind::Grid => build_grid(&cols, rows),
        };

        Some(ColumnarRows {
            coord_idx: coord_idx.to_vec(),
            cols,
            slab,
            spans,
            header: document_header(&rs.columns),
            index,
        })
    }

    /// The coordinate set this form was built for.
    pub fn coord_idx(&self) -> &[usize] {
        &self.coord_idx
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether the entry has no rows.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Which micro-index variant was built.
    pub fn index_kind(&self) -> IndexKind {
        match self.index {
            MicroIndex::Flat => IndexKind::Flat,
            MicroIndex::Zones { .. } => IndexKind::Zones,
            MicroIndex::Grid { .. } => IndexKind::Grid,
        }
    }

    /// Heap bytes held beyond the row-major result: the coordinate
    /// columns, the slab, the spans, and the index — the amount the
    /// cache's capacity accounting charges on top of the XML size.
    pub fn heap_bytes(&self) -> usize {
        let cols: usize = self.cols.iter().map(|c| c.len() * 8).sum();
        let index = match &self.index {
            MicroIndex::Flat => 0,
            MicroIndex::Zones { order, lo, hi } => order.len() * 4 + (lo.len() + hi.len()) * 8,
            MicroIndex::Grid {
                cells, overflow, ..
            } => cells.iter().map(|c| c.len() * 4 + 24).sum::<usize>() + overflow.len() * 4,
        };
        cols + self.slab.len() + self.spans.len() * 8 + self.header.len() + index
    }

    /// Selects the rows whose coordinate point lies in `region`, pushing
    /// ascending row ids into `out` (cleared first). `scratch` is the
    /// reusable point buffer; any capacity is accepted.
    ///
    /// The result — ids, order, and all — matches row-major
    /// `eval_region_over` on the same entry by construction; the
    /// property test in `tests/columnar_equivalence.rs` pins this.
    pub fn select_region(
        &self,
        region: &Region,
        out: &mut Vec<u32>,
        scratch: &mut Vec<f64>,
    ) -> SelectStats {
        out.clear();
        let dims = self.cols.len();
        scratch.clear();
        scratch.resize(dims, 0.0);
        let bbox = region.bounding_rect();
        let (qlo, qhi) = (bbox.lo(), bbox.hi());
        let mut scanned = 0usize;

        let mut test = |r: u32, out: &mut Vec<u32>, scanned: &mut usize| {
            *scanned += 1;
            for (cell, col) in scratch.iter_mut().zip(&self.cols) {
                *cell = col[r as usize];
            }
            if region.contains_coords(scratch) {
                out.push(r);
            }
        };

        match &self.index {
            MicroIndex::Flat => {
                for r in 0..self.len() as u32 {
                    test(r, out, &mut scanned);
                }
            }
            MicroIndex::Zones { order, lo, hi } => {
                for (z, zone) in order.chunks(ZONE_ROWS).enumerate() {
                    let zlo = &lo[z * dims..(z + 1) * dims];
                    let zhi = &hi[z * dims..(z + 1) * dims];
                    // Zones are sorted by dim 0: once a zone starts past
                    // the query's upper bound, no later zone can match.
                    if zlo[0] > qhi[0] {
                        break;
                    }
                    if boxes_disjoint(zlo, zhi, qlo, qhi) {
                        continue;
                    }
                    for &r in zone {
                        test(r, out, &mut scanned);
                    }
                }
                // Zone order is dim-0 order; callers get row order.
                out.sort_unstable();
            }
            MicroIndex::Grid {
                cells,
                side,
                min,
                inv_step,
                overflow,
            } => {
                let clamp = |v: f64, axis: usize| -> usize {
                    (((v - min[axis]) * inv_step[axis]) as isize).clamp(0, *side as isize - 1)
                        as usize
                };
                let gdims = if dims >= 2 { 2 } else { 1 };
                let (x0, x1) = (clamp(qlo[0], 0), clamp(qhi[0], 0));
                let (y0, y1) = if gdims == 2 {
                    (clamp(qlo[1], 1), clamp(qhi[1], 1))
                } else {
                    (0, 0)
                };
                for cy in y0..=y1 {
                    for cx in x0..=x1 {
                        for &r in &cells[cy * side + cx] {
                            test(r, out, &mut scanned);
                        }
                    }
                }
                for &r in overflow {
                    test(r, out, &mut scanned);
                }
                out.sort_unstable();
            }
        }

        SelectStats {
            rows_total: self.len(),
            rows_scanned: scanned,
            rows_selected: out.len(),
        }
    }

    /// Assembles the complete XML response document for the selected
    /// rows by copying byte ranges: header + each row's slab span +
    /// footer. No `Value` is touched and nothing is re-serialized.
    pub fn assemble_document(&self, rows: &[u32]) -> Vec<u8> {
        self.assemble_document_with(&self.slab, rows)
    }

    /// [`Self::assemble_document`] over an external copy of the row slab
    /// (e.g. an mmap'd byte slice of a demoted entry whose resident
    /// skeleton dropped its own slab). The spans were computed for the
    /// slab this form was built from, so `slab` must be byte-identical
    /// to it.
    pub fn assemble_document_with(&self, slab: &[u8], rows: &[u32]) -> Vec<u8> {
        let body: usize = rows
            .iter()
            .map(|&r| self.spans[r as usize].1 as usize)
            .sum();
        let mut out = Vec::with_capacity(self.header.len() + body + FOOTER.len());
        out.extend_from_slice(&self.header);
        for &r in rows {
            let (off, len) = self.spans[r as usize];
            out.extend_from_slice(&slab[off as usize..(off + len) as usize]);
        }
        out.extend_from_slice(FOOTER);
        out
    }

    /// Assembles the whole entry's document (exact-match hits): one
    /// straight copy of the slab between header and footer.
    pub fn full_document(&self) -> Vec<u8> {
        self.full_document_with(&self.slab)
    }

    /// [`Self::full_document`] over an external copy of the row slab
    /// (see [`Self::assemble_document_with`]).
    pub fn full_document_with(&self, slab: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.header.len() + slab.len() + FOOTER.len());
        out.extend_from_slice(&self.header);
        out.extend_from_slice(slab);
        out.extend_from_slice(FOOTER);
        out
    }

    /// The pre-serialized row slab: every row's `<Row>…</Row>` fragment,
    /// concatenated. This is the byte payload the tiered cache spills to
    /// disk; [`Self::skeleton`] + this slab reconstruct every response.
    pub fn slab(&self) -> &[u8] {
        &self.slab
    }

    /// A copy of this form without the row slab: coordinate columns,
    /// spans, header, and micro-index stay resident (classification and
    /// region selection keep working), while response assembly needs an
    /// external slab ([`Self::assemble_document_with`]). This is the
    /// RAM-resident part of a disk-demoted cache entry.
    pub fn skeleton(&self) -> ColumnarRows {
        ColumnarRows {
            coord_idx: self.coord_idx.clone(),
            cols: self.cols.clone(),
            slab: Vec::new(),
            spans: self.spans.clone(),
            header: self.header.clone(),
            index: self.index.clone(),
        }
    }

    /// Materializes the selected rows as a row-major result (for callers
    /// that need `Value`s — the simulation replay path; the HTTP path
    /// uses [`Self::assemble_document`] instead).
    pub fn materialize(&self, base: &ResultSet, rows: &[u32]) -> ResultSet {
        ResultSet {
            columns: base.columns.clone(),
            rows: rows
                .iter()
                .map(|&r| base.rows[r as usize].clone())
                .collect(),
        }
    }
}

/// Whether two axis-aligned boxes (closed, slice form) do not intersect.
/// NaN bounds (empty zones) compare false everywhere, reporting disjoint.
fn boxes_disjoint(alo: &[f64], ahi: &[f64], blo: &[f64], bhi: &[f64]) -> bool {
    alo.iter()
        .zip(ahi)
        .zip(blo.iter().zip(bhi))
        .any(|((al, ah), (bl, bh))| !(al <= bh && bl <= ah))
}

fn build_zones(cols: &[Vec<f64>], rows: usize) -> MicroIndex {
    let dims = cols.len();
    let mut order: Vec<u32> = (0..rows as u32).collect();
    // NaN sorts last under total_cmp; those rows fail every containment
    // test, so their zone placement is irrelevant.
    order.sort_unstable_by(|&a, &b| cols[0][a as usize].total_cmp(&cols[0][b as usize]));
    let zones = order.len().div_ceil(ZONE_ROWS);
    let mut lo = vec![f64::INFINITY; zones * dims];
    let mut hi = vec![f64::NEG_INFINITY; zones * dims];
    for (z, zone) in order.chunks(ZONE_ROWS).enumerate() {
        for &r in zone {
            for d in 0..dims {
                let v = cols[d][r as usize];
                // f64::min/max drop NaN, keeping the bbox finite.
                lo[z * dims + d] = lo[z * dims + d].min(v);
                hi[z * dims + d] = hi[z * dims + d].max(v);
            }
        }
    }
    MicroIndex::Zones { order, lo, hi }
}

fn build_grid(cols: &[Vec<f64>], rows: usize) -> MicroIndex {
    let gdims = if cols.len() >= 2 { 2 } else { 1 };
    // Aim for ~8 rows per cell on a square grid.
    let target_cells = (rows / 8).max(1);
    let side = if gdims == 2 {
        (target_cells as f64).sqrt().ceil() as usize
    } else {
        target_cells
    }
    .clamp(1, 64);

    let mut min = [f64::INFINITY; 2];
    let mut max = [f64::NEG_INFINITY; 2];
    for axis in 0..gdims {
        for &v in &cols[axis] {
            min[axis] = min[axis].min(v);
            max[axis] = max[axis].max(v);
        }
    }
    let mut inv_step = [0.0f64; 2];
    for axis in 0..gdims {
        let span = max[axis] - min[axis];
        inv_step[axis] = if span.is_finite() && span > 0.0 {
            side as f64 / span
        } else {
            0.0
        };
    }

    let cell_count = if gdims == 2 { side * side } else { side };
    let mut cells: Vec<Vec<u32>> = vec![Vec::new(); cell_count];
    let mut overflow = Vec::new();
    for r in 0..rows as u32 {
        let coord = |axis: usize| cols[axis][r as usize];
        if (0..gdims).any(|axis| !coord(axis).is_finite()) {
            overflow.push(r);
            continue;
        }
        let cell_of = |axis: usize| {
            (((coord(axis) - min[axis]) * inv_step[axis]) as isize).clamp(0, side as isize - 1)
                as usize
        };
        let idx = if gdims == 2 {
            cell_of(1) * side + cell_of(0)
        } else {
            cell_of(0)
        };
        cells[idx].push(r);
    }
    // `side` doubles as the row stride for 2-D lookup; for the 1-D case
    // a single "row" of cells with stride `side` behaves identically.
    MicroIndex::Grid {
        cells,
        side,
        min,
        inv_step,
        overflow,
    }
}

/// Serializes the shared document prefix:
/// `<ResultSet><Columns><C>…</C>…</Columns>`.
fn document_header(columns: &[String]) -> Vec<u8> {
    let mut out = Vec::with_capacity(32 + columns.len() * 12);
    out.extend_from_slice(b"<ResultSet>");
    if columns.is_empty() {
        out.extend_from_slice(b"<Columns/>");
    } else {
        out.extend_from_slice(b"<Columns>");
        for c in columns {
            out.extend_from_slice(b"<C>");
            out.extend_from_slice(escape_text(c).as_bytes());
            out.extend_from_slice(b"</C>");
        }
        out.extend_from_slice(b"</Columns>");
    }
    out
}

/// Serializes one `<Row>…</Row>` fragment, byte-identical to the
/// [`fp_xmlite::Element`] tree built by [`ResultSet::to_xml`] (pinned by
/// tests; note a non-null empty string still yields `<V></V>`, because
/// the tree form carries an empty text node).
pub(crate) fn write_row_xml(row: &[Value], out: &mut Vec<u8>) {
    if row.is_empty() {
        out.extend_from_slice(b"<Row/>");
        return;
    }
    out.extend_from_slice(b"<Row>");
    for v in row {
        match v {
            Value::Null => out.extend_from_slice(b"<V null=\"1\"/>"),
            other => {
                out.extend_from_slice(b"<V>");
                out.extend_from_slice(escape_text(&other.to_string()).as_bytes());
                out.extend_from_slice(b"</V>");
            }
        }
    }
    out.extend_from_slice(b"</Row>");
}

/// Serializes the whole result document directly into bytes —
/// byte-identical to `rs.to_xml().to_xml()` without building the element
/// tree. This is the non-hit serving path and the byte-accounting path.
pub fn result_to_xml_bytes(rs: &ResultSet) -> Vec<u8> {
    let mut out = document_header(&rs.columns);
    for row in &rs.rows {
        write_row_xml(row, &mut out);
    }
    out.extend_from_slice(FOOTER);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::{HyperRect, HyperSphere, Point};

    fn rs(n: usize) -> ResultSet {
        ResultSet {
            columns: vec!["objID".into(), "x".into(), "y".into(), "tag".into()],
            rows: (0..n)
                .map(|i| {
                    let f = i as f64 / n as f64;
                    vec![
                        Value::Int(i as i64),
                        Value::Float(f),
                        Value::Float(1.0 - f),
                        Value::Str(format!("t{i}")),
                    ]
                })
                .collect(),
        }
    }

    fn rect(lo: f64, hi: f64) -> Region {
        Region::Rect(HyperRect::new(vec![lo, lo], vec![hi, hi]).unwrap())
    }

    #[test]
    fn build_extracts_soa_columns() {
        let c = ColumnarRows::build(&rs(10), &[1, 2]).unwrap();
        assert_eq!(c.len(), 10);
        assert_eq!(c.cols.len(), 2);
        assert_eq!(c.cols[0][3], 0.3);
        assert_eq!(c.cols[1][3], 0.7);
        assert_eq!(c.index_kind(), IndexKind::Flat);
    }

    #[test]
    fn build_rejects_non_numeric_coordinates() {
        let mut r = rs(4);
        r.rows[2][1] = Value::Str("oops".into());
        assert!(ColumnarRows::build(&r, &[1, 2]).is_none());
        // Non-coordinate strings are fine.
        assert!(ColumnarRows::build(&rs(4), &[1, 2]).is_some());
        // Out-of-range column index.
        assert!(ColumnarRows::build(&rs(4), &[1, 9]).is_none());
        // Empty coordinate set is not a columnar entry.
        assert!(ColumnarRows::build(&rs(4), &[]).is_none());
    }

    #[test]
    fn all_index_kinds_select_identically() {
        let base = rs(1000);
        let regions = [
            rect(0.2, 0.4),
            rect(-1.0, 2.0),
            rect(0.9, 0.95),
            Region::Sphere(HyperSphere::new(Point::from_slice(&[0.5, 0.5]), 0.1).unwrap()),
        ];
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        for region in &regions {
            let mut reference: Option<Vec<u32>> = None;
            for kind in [IndexKind::Flat, IndexKind::Zones, IndexKind::Grid] {
                let c = ColumnarRows::build_with_index(&base, &[1, 2], kind).unwrap();
                assert_eq!(c.index_kind(), kind);
                let stats = c.select_region(region, &mut out, &mut scratch);
                assert_eq!(stats.rows_selected, out.len());
                assert_eq!(stats.rows_total, 1000);
                assert!(stats.rows_scanned <= stats.rows_total);
                match &reference {
                    Some(want) => assert_eq!(&out, want, "kind {kind:?} differs on {region}"),
                    None => reference = Some(out.clone()),
                }
            }
        }
    }

    #[test]
    fn zones_and_grid_prune() {
        let base = rs(2000);
        let region = rect(0.1, 0.15);
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        for kind in [IndexKind::Zones, IndexKind::Grid] {
            let c = ColumnarRows::build_with_index(&base, &[1, 2], kind).unwrap();
            let stats = c.select_region(&region, &mut out, &mut scratch);
            assert!(
                stats.rows_scanned < stats.rows_total / 2,
                "{kind:?} scanned {} of {}",
                stats.rows_scanned,
                stats.rows_total
            );
            assert!(stats.rows_pruned() > 0);
        }
    }

    #[test]
    fn nan_rows_are_never_selected() {
        let mut base = rs(600);
        base.rows[5][1] = Value::Float(f64::NAN);
        base.rows[300][2] = Value::Float(f64::NAN);
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        for kind in [IndexKind::Flat, IndexKind::Zones, IndexKind::Grid] {
            let c = ColumnarRows::build_with_index(&base, &[1, 2], kind).unwrap();
            c.select_region(&rect(-10.0, 10.0), &mut out, &mut scratch);
            assert!(!out.contains(&5));
            assert!(!out.contains(&300));
            assert_eq!(out.len(), 598);
        }
    }

    #[test]
    fn assembled_documents_match_tree_serialization() {
        let base = ResultSet {
            columns: vec!["objID".into(), "x".into(), "note".into()],
            rows: vec![
                vec![
                    Value::Int(1),
                    Value::Float(0.5),
                    Value::Str("a<b&\"".into()),
                ],
                vec![Value::Int(2), Value::Float(1.5), Value::Null],
                vec![Value::Int(3), Value::Float(2.5), Value::Str(String::new())],
            ],
        };
        let c = ColumnarRows::build(&base, &[1]).unwrap();

        // Full document == Element-tree serialization of the whole set.
        assert_eq!(
            String::from_utf8(c.full_document()).unwrap(),
            base.to_xml().to_xml()
        );
        assert_eq!(result_to_xml_bytes(&base), c.full_document());

        // A selection == Element-tree serialization of the filtered set.
        let picked = [0u32, 2];
        let filtered = c.materialize(&base, &picked);
        assert_eq!(
            String::from_utf8(c.assemble_document(&picked)).unwrap(),
            filtered.to_xml().to_xml()
        );
    }

    #[test]
    fn empty_results_serialize_identically() {
        let empty = ResultSet::empty(vec!["a".into()]);
        assert_eq!(
            String::from_utf8(result_to_xml_bytes(&empty)).unwrap(),
            empty.to_xml().to_xml()
        );
        let no_columns = ResultSet::empty(vec![]);
        assert_eq!(
            String::from_utf8(result_to_xml_bytes(&no_columns)).unwrap(),
            no_columns.to_xml().to_xml()
        );
    }

    #[test]
    fn skeleton_assembles_with_external_slab() {
        let base = rs(50);
        let c = ColumnarRows::build(&base, &[1, 2]).unwrap();
        let slab = c.slab().to_vec();
        let sk = c.skeleton();
        assert!(sk.slab().is_empty());
        assert_eq!(sk.full_document_with(&slab), c.full_document());
        let picked = [0u32, 7, 33];
        assert_eq!(
            sk.assemble_document_with(&slab, &picked),
            c.assemble_document(&picked)
        );
        // The skeleton still selects (columns + index are resident) and
        // charges less heap than the full form.
        let (mut out, mut scratch) = (Vec::new(), Vec::new());
        sk.select_region(&rect(0.4, 0.6), &mut out, &mut scratch);
        assert!(!out.is_empty());
        assert!(sk.heap_bytes() < c.heap_bytes());
    }

    #[test]
    fn heap_bytes_accounts_slab_and_columns() {
        let c = ColumnarRows::build(&rs(100), &[1, 2]).unwrap();
        assert!(c.heap_bytes() > c.slab.len());
        assert!(c.heap_bytes() >= 100 * 2 * 8);
    }
}
