//! The origin-site façade the proxy talks to.

use crate::catalog::Catalog;
use crate::exec::{execute, ExecError};
use crate::result::QueryOutcome;
use fp_sqlmini::{parse_query, Query, SqlError};
use parking_lot::Mutex;
use std::sync::Arc;

/// Errors the site reports to clients.
#[derive(Debug, Clone, PartialEq)]
pub enum SiteError {
    /// The SQL text did not parse.
    Parse(SqlError),
    /// The query failed to execute.
    Exec(ExecError),
}

impl std::fmt::Display for SiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SiteError::Parse(e) => write!(f, "{e}"),
            SiteError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SiteError {}

/// Cumulative load statistics of the origin site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SiteLoad {
    /// Queries executed.
    pub queries: usize,
    /// Total rows returned.
    pub rows_returned: usize,
    /// Total result bytes shipped.
    pub bytes_shipped: usize,
    /// Total candidate rows scanned.
    pub rows_scanned: usize,
}

/// The synthetic SkyServer web site.
///
/// Exposes exactly what the paper relied on:
/// * form queries (any SQL of the supported class, as produced by the
///   registered query templates), and
/// * the free-form SQL search page — which doubles as the **remainder
///   query facility**, since the proxy's remainder queries are plain SQL.
///
/// The site is cheap to clone ([`Arc`] inside) and thread-safe; the load
/// counter is the only mutable state.
#[derive(Clone)]
pub struct SkySite {
    catalog: Arc<Catalog>,
    load: Arc<Mutex<SiteLoad>>,
}

impl SkySite {
    /// Wraps a catalog as a servable site.
    pub fn new(catalog: Catalog) -> Self {
        SkySite {
            catalog: Arc::new(catalog),
            load: Arc::new(Mutex::new(SiteLoad::default())),
        }
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Executes SQL text (the free-form "SQL search" endpoint).
    ///
    /// # Errors
    /// Returns [`SiteError`] on parse or execution failure.
    pub fn execute_sql(&self, sql: &str) -> Result<QueryOutcome, SiteError> {
        let query = parse_query(sql).map_err(SiteError::Parse)?;
        self.execute_query(&query)
    }

    /// Executes an already-parsed query.
    ///
    /// # Errors
    /// Returns [`SiteError::Exec`] on execution failure.
    pub fn execute_query(&self, query: &Query) -> Result<QueryOutcome, SiteError> {
        let outcome = execute(&self.catalog, query).map_err(SiteError::Exec)?;
        let mut load = self.load.lock();
        load.queries += 1;
        load.rows_returned += outcome.stats.rows_returned;
        load.bytes_shipped += outcome.stats.result_bytes;
        load.rows_scanned += outcome.stats.rows_scanned;
        Ok(outcome)
    }

    /// Cumulative load since construction (or the last reset).
    pub fn load(&self) -> SiteLoad {
        *self.load.lock()
    }

    /// Clears the load counters (used between experiment runs).
    pub fn reset_load(&self) {
        *self.load.lock() = SiteLoad::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::CatalogSpec;

    fn site() -> SkySite {
        SkySite::new(Catalog::generate(&CatalogSpec::small_test()))
    }

    #[test]
    fn sql_endpoint_executes_and_counts() {
        let s = site();
        let out = s
            .execute_sql("SELECT TOP 3 p.objID FROM fGetNearbyObjEq(185.0, 0.0, 30.0) n JOIN PhotoPrimary p ON n.objID = p.objID")
            .unwrap();
        assert!(out.result.len() <= 3);
        let load = s.load();
        assert_eq!(load.queries, 1);
        assert_eq!(load.rows_returned, out.result.len());
        s.reset_load();
        assert_eq!(s.load(), SiteLoad::default());
    }

    #[test]
    fn parse_errors_are_surfaced() {
        let s = site();
        assert!(matches!(
            s.execute_sql("SELEC oops"),
            Err(SiteError::Parse(_))
        ));
        assert!(matches!(
            s.execute_sql("SELECT * FROM NotATable t"),
            Err(SiteError::Exec(_))
        ));
        // Failed queries do not count toward load.
        assert_eq!(s.load().queries, 0);
    }

    #[test]
    fn clones_share_state() {
        let s = site();
        let s2 = s.clone();
        s.execute_sql("SELECT TOP 1 * FROM fGetNearbyObjEq(185.0, 0.0, 10.0) n")
            .unwrap();
        assert_eq!(s2.load().queries, 1);
    }
}
