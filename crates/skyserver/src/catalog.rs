//! The columnar `PhotoPrimary` catalog with id and spatial indexes.

use crate::generate::{generate_objects, CatalogSpec};
use fp_geometry::celestial::radec_to_unit;
use fp_geometry::HyperRect;
use fp_rtree::RTree;
use fp_sqlmini::Value;
use std::collections::HashMap;

/// Column names of the `PhotoPrimary` table, in storage order.
///
/// A small but representative subset of the real SkyServer schema: identity,
/// position in both equatorial (`ra`, `dec`) and Cartesian (`cx`, `cy`,
/// `cz`) form — the latter being the *result attribute availability* the
/// paper's property (4) requires — the five SDSS magnitudes, and two
/// catalog attributes used by `other_predicates`.
pub const PHOTO_PRIMARY_COLUMNS: [&str; 12] = [
    "objID", "ra", "dec", "cx", "cy", "cz", "u", "g", "r", "i", "z", "type",
];

/// Column names of the `SpecObj` table (spectroscopic follow-up of a
/// subset of `PhotoPrimary`), in storage order. `z` here is redshift —
/// the qualifier disambiguates it from the photometric `z` band, just as
/// on the real SkyServer.
pub const SPEC_OBJ_COLUMNS: [&str; 4] = ["specObjID", "objID", "z", "class"];

/// The synthetic `PhotoPrimary` catalog.
///
/// Stored column-wise: scans touch only the columns a query needs, which is
/// what makes a few hundred thousand objects cheap enough to query in unit
/// tests.
#[derive(Debug, Clone)]
pub struct Catalog {
    obj_id: Vec<i64>,
    ra: Vec<f64>,
    dec: Vec<f64>,
    cx: Vec<f64>,
    cy: Vec<f64>,
    cz: Vec<f64>,
    mag: [Vec<f64>; 5],
    obj_type: Vec<i64>,
    flags: Vec<i64>,
    /// The spectroscopic table, columnar.
    spec_id: Vec<i64>,
    spec_obj_id: Vec<i64>,
    spec_z: Vec<f64>,
    spec_class: Vec<i64>,
    /// objID → row index.
    id_index: HashMap<i64, usize>,
    /// 3-D R-tree over unit-vector positions (degenerate boxes).
    spatial: RTree<usize>,
    spec: CatalogSpec,
}

impl Catalog {
    /// Generates a catalog from `spec` (deterministic in the seed).
    pub fn generate(spec: &CatalogSpec) -> Catalog {
        let objs = generate_objects(spec);
        let n = objs.len();
        let mut cat = Catalog {
            obj_id: Vec::with_capacity(n),
            ra: Vec::with_capacity(n),
            dec: Vec::with_capacity(n),
            cx: Vec::with_capacity(n),
            cy: Vec::with_capacity(n),
            cz: Vec::with_capacity(n),
            mag: std::array::from_fn(|_| Vec::with_capacity(n)),
            obj_type: Vec::with_capacity(n),
            flags: Vec::with_capacity(n),
            spec_id: Vec::new(),
            spec_obj_id: Vec::new(),
            spec_z: Vec::new(),
            spec_class: Vec::new(),
            id_index: HashMap::with_capacity(n),
            spatial: RTree::with_capacity_params(3, 16),
            spec: spec.clone(),
        };

        let mut spatial_entries = Vec::with_capacity(n);
        for (row, o) in objs.into_iter().enumerate() {
            let [ux, uy, uz] = radec_to_unit(o.ra, o.dec);
            cat.obj_id.push(o.obj_id);
            cat.ra.push(o.ra);
            cat.dec.push(o.dec);
            cat.cx.push(ux);
            cat.cy.push(uy);
            cat.cz.push(uz);
            for b in 0..5 {
                cat.mag[b].push(o.mag[b]);
            }
            cat.obj_type.push(o.obj_type);
            cat.flags.push(o.flags);
            if let Some(sp) = o.spec {
                cat.spec_id.push(sp.spec_obj_id);
                cat.spec_obj_id.push(o.obj_id);
                cat.spec_z.push(sp.z);
                cat.spec_class.push(sp.class);
            }
            cat.id_index.insert(o.obj_id, row);
            let point =
                HyperRect::new(vec![ux, uy, uz], vec![ux, uy, uz]).expect("unit vector is finite");
            spatial_entries.push((point, row));
        }
        cat.spatial.bulk_load(spatial_entries);
        cat
    }

    /// The spec this catalog was generated from.
    pub fn spec(&self) -> &CatalogSpec {
        &self.spec
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.obj_id.len()
    }

    /// Whether the catalog is empty (never true for generated catalogs).
    pub fn is_empty(&self) -> bool {
        self.obj_id.is_empty()
    }

    /// Row index of an object id.
    pub fn row_of_id(&self, obj_id: i64) -> Option<usize> {
        self.id_index.get(&obj_id).copied()
    }

    /// Row indexes whose unit-vector position falls inside `window`
    /// (callers apply exact region tests on top). Also reports how many
    /// index entries were touched, for the cost model.
    pub fn spatial_candidates(&self, window: &HyperRect) -> Vec<usize> {
        self.spatial
            .search_intersecting(window)
            .into_iter()
            .map(|(_, row)| *row)
            .collect()
    }

    /// Unit-vector coordinates of row `row`.
    #[inline]
    pub fn unit_coords(&self, row: usize) -> [f64; 3] {
        [self.cx[row], self.cy[row], self.cz[row]]
    }

    /// Equatorial coordinates (degrees) of row `row`.
    #[inline]
    pub fn radec(&self, row: usize) -> (f64, f64) {
        (self.ra[row], self.dec[row])
    }

    /// Object id of row `row`.
    #[inline]
    pub fn obj_id(&self, row: usize) -> i64 {
        self.obj_id[row]
    }

    /// Value of `column` at `row`, or `None` for unknown columns.
    pub fn value(&self, row: usize, column: &str) -> Option<Value> {
        Some(match column {
            "objID" => Value::Int(self.obj_id[row]),
            "ra" => Value::Float(self.ra[row]),
            "dec" => Value::Float(self.dec[row]),
            "cx" => Value::Float(self.cx[row]),
            "cy" => Value::Float(self.cy[row]),
            "cz" => Value::Float(self.cz[row]),
            "u" => Value::Float(self.mag[0][row]),
            "g" => Value::Float(self.mag[1][row]),
            "r" => Value::Float(self.mag[2][row]),
            "i" => Value::Float(self.mag[3][row]),
            "z" => Value::Float(self.mag[4][row]),
            "type" => Value::Int(self.obj_type[row]),
            "flags" => Value::Int(self.flags[row]),
            _ => return None,
        })
    }

    /// Whether `column` exists on `PhotoPrimary`.
    pub fn has_column(column: &str) -> bool {
        PHOTO_PRIMARY_COLUMNS.contains(&column) || column == "flags"
    }

    /// Number of `SpecObj` rows.
    pub fn spec_len(&self) -> usize {
        self.spec_id.len()
    }

    /// Value of `column` at `SpecObj` row `row`, or `None` for unknown
    /// columns.
    pub fn spec_value(&self, row: usize, column: &str) -> Option<Value> {
        Some(match column {
            "specObjID" => Value::Int(self.spec_id[row]),
            "objID" => Value::Int(self.spec_obj_id[row]),
            "z" => Value::Float(self.spec_z[row]),
            "class" => Value::Int(self.spec_class[row]),
            _ => return None,
        })
    }

    /// Whether `column` exists on `SpecObj`.
    pub fn spec_has_column(column: &str) -> bool {
        SPEC_OBJ_COLUMNS.contains(&column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::celestial::{arcmin_to_rad, chord_of_angle, radial_query_sphere};

    fn small() -> Catalog {
        Catalog::generate(&CatalogSpec::small_test())
    }

    #[test]
    fn id_index_agrees_with_columns() {
        let c = small();
        for row in [0usize, 7, c.len() - 1] {
            let id = c.obj_id(row);
            assert_eq!(c.row_of_id(id), Some(row));
            assert_eq!(c.value(row, "objID"), Some(Value::Int(id)));
        }
        assert_eq!(c.row_of_id(-1), None);
    }

    #[test]
    fn unit_vectors_are_unit_length() {
        let c = small();
        for row in (0..c.len()).step_by(997) {
            let [x, y, z] = c.unit_coords(row);
            let norm = (x * x + y * y + z * z).sqrt();
            assert!((norm - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn spatial_cover_includes_the_membership_fringe() {
        let c = small();
        // Aim a query due south of a real object and size the radius so
        // the object lands in the ε fringe of ball membership: strictly
        // outside the exact radius, accepted by the ε-tolerant
        // contains. The index cover must still produce the object as a
        // candidate, or the origin silently loses a boundary row that
        // locally-evaluated cache hits keep — the two answer paths
        // would disagree on the same query.
        let row = 42;
        let (ra, dec) = c.radec(row);
        let center = radec_to_unit(ra, dec - 0.02);
        let obj = c.unit_coords(row);
        let d2 = fp_geometry::point::dist2_slices(&center, &obj);
        let r = (d2 - 0.999 * fp_geometry::EPS).sqrt();
        let ball = fp_geometry::HyperSphere::new(
            fp_geometry::Point::new(center.to_vec()).expect("finite center"),
            r,
        )
        .expect("valid fringe ball");
        assert!(d2 > r * r, "object sits strictly outside the exact radius");
        assert!(ball.contains_coords(&obj), "membership accepts the fringe");
        assert!(
            c.spatial_candidates(&ball.bounding_rect()).contains(&row),
            "index cover must include every point membership accepts"
        );
    }

    #[test]
    fn spatial_index_matches_full_scan() {
        let c = small();
        let ball = radial_query_sphere(185.0, 0.5, 20.0).unwrap();
        let window = ball.bounding_rect();
        let mut from_index: Vec<usize> = c
            .spatial_candidates(&window)
            .into_iter()
            .filter(|row| ball.contains_coords(&c.unit_coords(*row)))
            .collect();
        let chord = chord_of_angle(arcmin_to_rad(20.0));
        let mut from_scan: Vec<usize> = (0..c.len())
            .filter(|row| {
                let sep = fp_geometry::celestial::angular_separation(
                    185.0,
                    0.5,
                    c.radec(*row).0,
                    c.radec(*row).1,
                );
                chord_of_angle(sep) <= chord + 1e-12
            })
            .collect();
        from_index.sort_unstable();
        from_scan.sort_unstable();
        assert_eq!(from_index, from_scan);
        assert!(!from_index.is_empty(), "test region should be non-empty");
    }

    #[test]
    fn spec_obj_table_is_consistent() {
        let c = small();
        assert!(c.spec_len() > 0);
        assert!(c.spec_len() < c.len() / 3, "spectra are a subset");
        for row in (0..c.spec_len()).step_by(97) {
            // Every SpecObj row points at a real PhotoPrimary object.
            let obj_id = c.spec_value(row, "objID").unwrap().as_i64().unwrap();
            assert!(c.row_of_id(obj_id).is_some());
            let z = c.spec_value(row, "z").unwrap().as_f64().unwrap();
            assert!((0.0..0.8).contains(&z));
        }
        assert!(Catalog::spec_has_column("class"));
        assert!(!Catalog::spec_has_column("ra"));
        assert_eq!(c.spec_value(0, "nope"), None);
    }

    #[test]
    fn unknown_column_is_none() {
        let c = small();
        assert_eq!(c.value(0, "htmID"), None);
        assert!(Catalog::has_column("ra"));
        assert!(!Catalog::has_column("htmID"));
    }
}
