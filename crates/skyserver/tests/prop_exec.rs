//! Property tests for the SQL executor: query results must agree with a
//! brute-force evaluation straight off the catalog columns, for arbitrary
//! radial parameters, magnitude predicates, and TOP limits.

use fp_geometry::celestial::{angular_separation, arcmin_to_rad};
use fp_skyserver::{Catalog, CatalogSpec};
use fp_sqlmini::parse_query;
use proptest::prelude::*;
use std::sync::OnceLock;

fn catalog() -> &'static Catalog {
    static CAT: OnceLock<Catalog> = OnceLock::new();
    CAT.get_or_init(|| {
        Catalog::generate(&CatalogSpec {
            seed: 3,
            objects: 8_000,
            ..CatalogSpec::default()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn radial_with_predicates_matches_brute_force(
        ra in 181.0f64..189.0,
        dec in -2.5f64..2.5,
        radius in 1.0f64..40.0,
        maxmag in 15.0f64..23.0,
        use_between in any::<bool>(),
    ) {
        let c = catalog();
        let predicate = if use_between {
            format!("p.r BETWEEN 14.0 AND {maxmag}")
        } else {
            format!("p.r < {maxmag}")
        };
        let sql = format!(
            "SELECT p.objID FROM fGetNearbyObjEq({ra}, {dec}, {radius}) n \
             JOIN PhotoPrimary p ON n.objID = p.objID WHERE {predicate}"
        );
        let out = fp_skyserver::exec::execute(c, &parse_query(&sql).unwrap()).unwrap();
        let mut got: Vec<i64> = out
            .result
            .rows
            .iter()
            .map(|r| r[0].as_i64().unwrap())
            .collect();
        got.sort_unstable();

        let limit = arcmin_to_rad(radius);
        let mut want: Vec<i64> = (0..c.len())
            .filter(|row| {
                let (ora, odec) = c.radec(*row);
                let mag = c.value(*row, "r").unwrap().as_f64().unwrap();
                let in_region = angular_separation(ra, dec, ora, odec) <= limit + 1e-12;
                let passes = if use_between {
                    (14.0..=maxmag).contains(&mag)
                } else {
                    mag < maxmag
                };
                in_region && passes
            })
            .map(|row| c.obj_id(row))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn top_truncates_without_reordering(
        ra in 182.0f64..188.0,
        dec in -2.0f64..2.0,
        radius in 5.0f64..40.0,
        n in 1u64..50,
    ) {
        let c = catalog();
        let full_sql = format!(
            "SELECT n.objID, n.distance FROM fGetNearbyObjEq({ra}, {dec}, {radius}) n"
        );
        let top_sql = format!(
            "SELECT TOP {n} n.objID, n.distance FROM fGetNearbyObjEq({ra}, {dec}, {radius}) n"
        );
        let full = fp_skyserver::exec::execute(c, &parse_query(&full_sql).unwrap()).unwrap();
        let top = fp_skyserver::exec::execute(c, &parse_query(&top_sql).unwrap()).unwrap();
        let expect = full.result.rows.iter().take(n as usize).cloned().collect::<Vec<_>>();
        prop_assert_eq!(&top.result.rows, &expect);
    }

    #[test]
    fn order_by_magnitude_is_sorted(
        ra in 182.0f64..188.0,
        dec in -2.0f64..2.0,
        radius in 5.0f64..30.0,
        asc in any::<bool>(),
    ) {
        let c = catalog();
        let dir = if asc { "ASC" } else { "DESC" };
        let sql = format!(
            "SELECT p.r FROM fGetNearbyObjEq({ra}, {dec}, {radius}) n \
             JOIN PhotoPrimary p ON n.objID = p.objID ORDER BY r {dir}"
        );
        let out = fp_skyserver::exec::execute(c, &parse_query(&sql).unwrap()).unwrap();
        let mags: Vec<f64> = out.result.rows.iter().map(|r| r[0].as_f64().unwrap()).collect();
        let sorted = mags
            .windows(2)
            .all(|w| if asc { w[0] <= w[1] } else { w[0] >= w[1] });
        prop_assert!(sorted, "mags not sorted {dir}: {mags:?}");
    }
}
