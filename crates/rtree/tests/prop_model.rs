//! Model-based property tests: the R-tree must agree with a naive
//! linear-scan implementation under arbitrary interleavings of inserts,
//! removals, and window searches.

use fp_geometry::HyperRect;
use fp_rtree::RTree;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { lo: [f64; 2], ext: [f64; 2] },
    RemoveNth(usize),
    Search { lo: [f64; 2], ext: [f64; 2] },
}

fn arb_op() -> impl Strategy<Value = Op> {
    let coord = -50.0f64..50.0;
    let extent = 0.1f64..20.0;
    prop_oneof![
        4 => ([coord.clone(), coord.clone()], [extent.clone(), extent.clone()])
            .prop_map(|(lo, ext)| Op::Insert { lo, ext }),
        2 => (0usize..64).prop_map(Op::RemoveNth),
        3 => ([coord.clone(), coord.clone()], [extent.clone(), extent.clone()])
            .prop_map(|(lo, ext)| Op::Search { lo, ext }),
    ]
}

fn rect(lo: [f64; 2], ext: [f64; 2]) -> HyperRect {
    HyperRect::new(lo.to_vec(), vec![lo[0] + ext[0], lo[1] + ext[1]]).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn agrees_with_linear_scan(ops in prop::collection::vec(arb_op(), 1..200)) {
        let mut tree: RTree<u64> = RTree::with_capacity_params(2, 4);
        let mut model: Vec<(HyperRect, u64)> = Vec::new();
        let mut next_id = 0u64;

        for op in ops {
            match op {
                Op::Insert { lo, ext } => {
                    let r = rect(lo, ext);
                    tree.insert(r.clone(), next_id);
                    model.push((r, next_id));
                    next_id += 1;
                }
                Op::RemoveNth(n) => {
                    if model.is_empty() {
                        continue;
                    }
                    let idx = n % model.len();
                    let (r, id) = model.swap_remove(idx);
                    let removed = tree.remove_one(&r, |v| *v == id);
                    prop_assert_eq!(removed, Some(id));
                }
                Op::Search { lo, ext } => {
                    let w = rect(lo, ext);
                    let mut got: Vec<u64> =
                        tree.search_intersecting(&w).iter().map(|(_, v)| **v).collect();
                    let mut want: Vec<u64> = model
                        .iter()
                        .filter(|(r, _)| r.intersects_rect(&w))
                        .map(|(_, v)| *v)
                        .collect();
                    got.sort_unstable();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }

        // Final full-content agreement.
        let mut got: Vec<u64> = tree.iter().map(|(_, v)| *v).collect();
        let mut want: Vec<u64> = model.iter().map(|(_, v)| *v).collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_agrees_with_linear_scan(
        entries in prop::collection::vec(
            ([-50.0f64..50.0, -50.0f64..50.0], [0.1f64..20.0, 0.1f64..20.0]),
            0..150
        ),
        window in ([-60.0f64..60.0, -60.0f64..60.0], [1.0f64..40.0, 1.0f64..40.0]),
    ) {
        let items: Vec<(HyperRect, u64)> = entries
            .iter()
            .enumerate()
            .map(|(i, (lo, ext))| (rect(*lo, *ext), i as u64))
            .collect();
        let mut tree: RTree<u64> = RTree::with_capacity_params(2, 6);
        tree.bulk_load(items.clone());
        prop_assert_eq!(tree.len(), items.len());

        let w = rect(window.0, window.1);
        let mut got: Vec<u64> = tree.search_intersecting(&w).iter().map(|(_, v)| **v).collect();
        let mut want: Vec<u64> = items
            .iter()
            .filter(|(r, _)| r.intersects_rect(&w))
            .map(|(_, v)| *v)
            .collect();
        got.sort_unstable();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }
}
