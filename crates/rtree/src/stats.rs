//! Structural statistics of a tree, used by tests, ablation benches, and
//! the experiment harness to report cache-description maintenance costs.

use crate::node::Node;
use crate::RTree;

/// Shape summary of an [`RTree`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeStats {
    /// Levels in the tree; 0 for an empty tree, 1 for a single leaf root.
    pub height: usize,
    /// Total node count (inner + leaf).
    pub nodes: usize,
    /// Leaf node count.
    pub leaves: usize,
    /// Data entry count.
    pub entries: usize,
    /// Mean leaf fill ratio relative to the configured maximum fan-out.
    pub avg_leaf_fill: f64,
}

pub(crate) fn compute<T>(tree: &RTree<T>) -> TreeStats {
    let mut stats = TreeStats {
        height: 0,
        nodes: 0,
        leaves: 0,
        entries: 0,
        avg_leaf_fill: 0.0,
    };
    let Some(root) = tree.root() else {
        return stats;
    };
    let mut leaf_fill_sum = 0usize;
    walk(root, 1, &mut stats, &mut leaf_fill_sum);
    if stats.leaves > 0 {
        stats.avg_leaf_fill =
            leaf_fill_sum as f64 / (stats.leaves * tree.max_entries_internal()) as f64;
    }
    stats
}

fn walk<T>(node: &Node<T>, depth: usize, stats: &mut TreeStats, leaf_fill_sum: &mut usize) {
    stats.nodes += 1;
    stats.height = stats.height.max(depth);
    match node {
        Node::Leaf { entries, .. } => {
            stats.leaves += 1;
            stats.entries += entries.len();
            *leaf_fill_sum += entries.len();
        }
        Node::Inner { children, .. } => {
            for c in children {
                walk(c, depth + 1, stats, leaf_fill_sum);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::HyperRect;

    #[test]
    fn stats_of_populated_tree() {
        let mut t = RTree::new(2);
        for i in 0..200u32 {
            let x = f64::from(i % 20);
            let y = f64::from(i / 20);
            t.insert(
                HyperRect::new(vec![x, y], vec![x + 0.5, y + 0.5]).unwrap(),
                i,
            );
        }
        let s = t.stats();
        assert_eq!(s.entries, 200);
        assert!(s.height >= 2);
        assert!(s.leaves >= 200 / crate::DEFAULT_MAX_ENTRIES);
        assert!(s.avg_leaf_fill > 0.2 && s.avg_leaf_fill <= 1.0);
    }
}
