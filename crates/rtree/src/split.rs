//! Guttman's quadratic node-split algorithm.

use fp_geometry::HyperRect;

/// Minimum fill for a node of capacity `max` (Guttman's m = M/2).
pub(crate) fn min_for(max: usize) -> usize {
    (max / 2).max(2)
}

/// Splits an overflowing item list into two groups of at least `min` items
/// each, minimizing total dead space, using the quadratic PickSeeds /
/// PickNext heuristics.
///
/// `mbr_of` projects an item to its bounding rectangle. The first returned
/// group stays in the original node; the second becomes the new sibling.
pub(crate) fn quadratic_split<E, F>(items: Vec<E>, mbr_of: F, min: usize) -> (Vec<E>, Vec<E>)
where
    F: Fn(&E) -> &HyperRect,
{
    debug_assert!(items.len() >= 2 * min, "split needs enough items");

    // PickSeeds: the pair wasting the most area if grouped together.
    let (seed_a, seed_b) = pick_seeds(&items, &mbr_of);

    let mut remaining: Vec<E> = items.into_iter().collect();
    // Remove the higher index first so the lower stays valid.
    let (hi, lo) = if seed_a > seed_b {
        (seed_a, seed_b)
    } else {
        (seed_b, seed_a)
    };
    let item_hi = remaining.swap_remove(hi);
    let item_lo = remaining.swap_remove(lo);

    let mut group_a = vec![item_lo];
    let mut group_b = vec![item_hi];
    let mut mbr_a = mbr_of(&group_a[0]).clone();
    let mut mbr_b = mbr_of(&group_b[0]).clone();

    while let Some(next) = pick_next(&remaining, &mbr_a, &mbr_b, &mbr_of) {
        let item = remaining.swap_remove(next);

        // Force-assign when one group must absorb all leftovers to reach
        // the minimum fill (counting the item just popped).
        let left = remaining.len() + 1;
        if group_a.len() + left <= min {
            mbr_a = mbr_a.union(mbr_of(&item)).expect("same dims");
            group_a.push(item);
            continue;
        }
        if group_b.len() + left <= min {
            mbr_b = mbr_b.union(mbr_of(&item)).expect("same dims");
            group_b.push(item);
            continue;
        }

        // Otherwise: least enlargement, ties by area, then by count.
        let enl_a = mbr_a.enlargement(mbr_of(&item));
        let enl_b = mbr_b.enlargement(mbr_of(&item));
        let to_a = enl_a < enl_b
            || (enl_a == enl_b && mbr_a.volume() < mbr_b.volume())
            || (enl_a == enl_b
                && mbr_a.volume() == mbr_b.volume()
                && group_a.len() <= group_b.len());
        if to_a {
            mbr_a = mbr_a.union(mbr_of(&item)).expect("same dims");
            group_a.push(item);
        } else {
            mbr_b = mbr_b.union(mbr_of(&item)).expect("same dims");
            group_b.push(item);
        }
    }

    (group_a, group_b)
}

/// PickSeeds: indices of the two items with maximal dead space
/// `vol(union) - vol(a) - vol(b)`.
fn pick_seeds<E, F: Fn(&E) -> &HyperRect>(items: &[E], mbr_of: &F) -> (usize, usize) {
    let mut best = (0, 1);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let (a, b) = (mbr_of(&items[i]), mbr_of(&items[j]));
            let waste = a.union(b).expect("same dims").volume() - a.volume() - b.volume();
            if waste > worst_waste {
                worst_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

/// PickNext: the remaining item with the largest preference for one group
/// (max |enlargement_a − enlargement_b|). Returns `None` when empty.
fn pick_next<E, F: Fn(&E) -> &HyperRect>(
    remaining: &[E],
    mbr_a: &HyperRect,
    mbr_b: &HyperRect,
    mbr_of: &F,
) -> Option<usize> {
    if remaining.is_empty() {
        return None;
    }
    let mut best = 0;
    let mut best_diff = f64::NEG_INFINITY;
    for (i, item) in remaining.iter().enumerate() {
        let r = mbr_of(item);
        let diff = (mbr_a.enlargement(r) - mbr_b.enlargement(r)).abs();
        if diff > best_diff {
            best_diff = diff;
            best = i;
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two clearly separated clusters of 5 rects each must be split
        // cluster-by-cluster.
        let mut items = Vec::new();
        for i in 0..5 {
            let x = i as f64 * 0.1;
            items.push((r([x, 0.0], [x + 0.05, 0.05]), i));
        }
        for i in 0..5 {
            let x = 100.0 + i as f64 * 0.1;
            items.push((r([x, 100.0], [x + 0.05, 100.05]), 5 + i));
        }
        let (a, b) = quadratic_split(items, |e| &e.0, 2);
        assert_eq!(a.len() + b.len(), 10);
        let a_low = a.iter().all(|(_, v)| *v < 5) || a.iter().all(|(_, v)| *v >= 5);
        let b_low = b.iter().all(|(_, v)| *v < 5) || b.iter().all(|(_, v)| *v >= 5);
        assert!(a_low && b_low, "clusters were mixed: {a:?} {b:?}");
    }

    #[test]
    fn split_respects_min_fill() {
        // Nine rects in a line; min fill 4 forces 4/5 or 5/4.
        let items: Vec<(HyperRect, usize)> = (0..9)
            .map(|i| {
                let x = i as f64;
                (r([x, 0.0], [x + 0.5, 1.0]), i)
            })
            .collect();
        let (a, b) = quadratic_split(items, |e| &e.0, 4);
        assert!(a.len() >= 4, "group a too small: {}", a.len());
        assert!(b.len() >= 4, "group b too small: {}", b.len());
        assert_eq!(a.len() + b.len(), 9);
    }

    #[test]
    fn pick_seeds_finds_extremes() {
        let items = vec![
            r([0.0, 0.0], [1.0, 1.0]),
            r([0.5, 0.5], [1.5, 1.5]),
            r([50.0, 50.0], [51.0, 51.0]),
        ];
        let (i, j) = pick_seeds(&items, &|e: &HyperRect| e);
        let pair = [i.min(j), i.max(j)];
        // The far rect must be one seed; the other is one of the near pair.
        assert_eq!(pair[1], 2);
    }
}
