//! An in-memory R-tree over d-dimensional rectangles.
//!
//! The function proxy maintains a **cache description**: the set of regions
//! of all currently cached queries. The paper evaluates two implementations
//! — a flat array scanned linearly ("ACNR") and an R-tree ("ACR") — and
//! finds that at realistic description sizes the R-tree does *not* help
//! (Figure 5 discussion). To reproduce that comparison honestly this crate
//! provides a real R-tree (Guttman's original design with quadratic node
//! splits, plus STR bulk loading), not a toy.
//!
//! The tree maps [`HyperRect`] keys to arbitrary payloads `T`; the proxy
//! stores cache-entry ids and uses bounding boxes of query regions as keys.
//!
//! ```
//! use fp_rtree::RTree;
//! use fp_geometry::HyperRect;
//!
//! let mut t: RTree<u32> = RTree::new(2);
//! let r = |lo: [f64; 2], hi: [f64; 2]| HyperRect::new(lo.to_vec(), hi.to_vec()).unwrap();
//! t.insert(r([0.0, 0.0], [1.0, 1.0]), 1);
//! t.insert(r([5.0, 5.0], [6.0, 6.0]), 2);
//! let hits = t.search_intersecting(&r([0.5, 0.5], [0.7, 0.7]));
//! assert_eq!(hits.len(), 1);
//! assert_eq!(*hits[0].1, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod node;
mod split;
mod stats;

pub use stats::TreeStats;

use fp_geometry::HyperRect;
use node::Node;

/// Default maximum number of entries per node.
pub const DEFAULT_MAX_ENTRIES: usize = 8;

/// An R-tree mapping rectangles to payloads.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    dims: usize,
    max_entries: usize,
    min_entries: usize,
    root: Option<Node<T>>,
    len: usize,
}

impl<T> RTree<T> {
    /// Creates an empty tree for `dims`-dimensional keys with the default
    /// node capacity.
    ///
    /// # Panics
    /// Panics when `dims` is zero.
    pub fn new(dims: usize) -> Self {
        Self::with_capacity_params(dims, DEFAULT_MAX_ENTRIES)
    }

    /// Creates an empty tree with an explicit maximum node fan-out
    /// (minimum fill is `max / 2`, at least 2).
    ///
    /// # Panics
    /// Panics when `dims` is zero or `max_entries < 4`.
    pub fn with_capacity_params(dims: usize, max_entries: usize) -> Self {
        assert!(dims > 0, "dims must be positive");
        assert!(max_entries >= 4, "max_entries must be at least 4");
        RTree {
            dims,
            max_entries,
            min_entries: (max_entries / 2).max(2),
            root: None,
            len: 0,
        }
    }

    /// Dimensionality of the keys.
    pub fn dims(&self) -> usize {
        self.dims
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.root = None;
        self.len = 0;
    }

    /// Inserts a rectangle/payload pair. Duplicate rectangles are allowed.
    ///
    /// # Panics
    /// Panics when the rectangle's dimensionality differs from the tree's.
    pub fn insert(&mut self, rect: HyperRect, value: T) {
        assert_eq!(rect.dims(), self.dims, "key dimensionality mismatch");
        let max = self.max_entries;
        match self.root.take() {
            None => {
                self.root = Some(Node::leaf_with(rect, value));
            }
            Some(mut root) => {
                if let Some(sibling) = root.insert(rect, value, max) {
                    // Root split: grow the tree by one level.
                    self.root = Some(Node::parent_of(root, sibling));
                } else {
                    self.root = Some(root);
                }
            }
        }
        self.len += 1;
    }

    /// Removes the first entry whose rectangle equals `rect` (within
    /// tolerance) and whose payload satisfies `pred`. Returns the payload
    /// when an entry was removed.
    pub fn remove_one<F: FnMut(&T) -> bool>(&mut self, rect: &HyperRect, mut pred: F) -> Option<T> {
        assert_eq!(rect.dims(), self.dims, "key dimensionality mismatch");
        let mut root = self.root.take()?;
        let mut orphans = Vec::new();
        let removed = root.remove_one(rect, &mut pred, self.min_entries, &mut orphans);
        if removed.is_some() {
            self.len -= 1;
        }
        // Shrink the root: an inner root with a single child is replaced by
        // that child; an empty root is dropped.
        self.root = root.into_shrunk_root();
        // Reinsert entries from condensed (underflowing) nodes.
        for (r, v) in orphans {
            self.len -= 1; // insert() will count it again
            self.insert(r, v);
        }
        removed
    }

    /// All entries whose rectangle intersects `window`, as
    /// `(rect, payload)` pairs.
    pub fn search_intersecting(&self, window: &HyperRect) -> Vec<(&HyperRect, &T)> {
        assert_eq!(window.dims(), self.dims, "window dimensionality mismatch");
        let mut out = Vec::new();
        if let Some(root) = &self.root {
            root.search_intersecting(window, &mut out);
        }
        out
    }

    /// Visits every entry whose rectangle intersects `window`; the visitor
    /// returns `false` to stop early. Returns `true` when the walk ran to
    /// completion.
    pub fn visit_intersecting<F: FnMut(&HyperRect, &T) -> bool>(
        &self,
        window: &HyperRect,
        mut visit: F,
    ) -> bool {
        assert_eq!(window.dims(), self.dims, "window dimensionality mismatch");
        match &self.root {
            Some(root) => root.visit_intersecting(window, &mut visit),
            None => true,
        }
    }

    /// All entries whose rectangle contains the point `coords`.
    pub fn search_point(&self, coords: &[f64]) -> Vec<(&HyperRect, &T)> {
        assert_eq!(coords.len(), self.dims, "point dimensionality mismatch");
        let window = HyperRect::new(coords.to_vec(), coords.to_vec()).expect("degenerate box");
        let mut out = self.search_intersecting(&window);
        out.retain(|(r, _)| r.contains_coords(coords));
        out
    }

    /// Iterates all `(rect, payload)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&HyperRect, &T)> {
        let mut out = Vec::with_capacity(self.len);
        if let Some(root) = &self.root {
            root.collect_all(&mut out);
        }
        out.into_iter()
    }

    /// Structural statistics (height, node count, fill).
    pub fn stats(&self) -> TreeStats {
        stats::compute(self)
    }

    pub(crate) fn root(&self) -> Option<&Node<T>> {
        self.root.as_ref()
    }

    pub(crate) fn max_entries_internal(&self) -> usize {
        self.max_entries
    }

    /// Bulk-loads the tree from entries using Sort-Tile-Recursive packing.
    /// Any existing contents are replaced.
    ///
    /// # Panics
    /// Panics when any rectangle's dimensionality differs from the tree's.
    pub fn bulk_load(&mut self, entries: Vec<(HyperRect, T)>) {
        for (r, _) in &entries {
            assert_eq!(r.dims(), self.dims, "key dimensionality mismatch");
        }
        self.len = entries.len();
        self.root = bulk::str_pack(entries, self.max_entries);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: [f64; 2], hi: [f64; 2]) -> HyperRect {
        HyperRect::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn empty_tree_behaves() {
        let t: RTree<u32> = RTree::new(2);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.search_intersecting(&r([0.0, 0.0], [1.0, 1.0])).is_empty());
        assert_eq!(t.stats().height, 0);
    }

    #[test]
    fn insert_and_search_small() {
        let mut t = RTree::new(2);
        t.insert(r([0.0, 0.0], [1.0, 1.0]), "a");
        t.insert(r([2.0, 2.0], [3.0, 3.0]), "b");
        t.insert(r([0.5, 0.5], [2.5, 2.5]), "c");
        assert_eq!(t.len(), 3);

        let hits = t.search_intersecting(&r([0.9, 0.9], [1.1, 1.1]));
        let mut names: Vec<&str> = hits.iter().map(|(_, v)| **v).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["a", "c"]);
    }

    #[test]
    fn grows_beyond_one_node_and_stays_correct() {
        let mut t = RTree::new(2);
        let n = 500;
        for i in 0..n {
            let x = (i % 25) as f64;
            let y = (i / 25) as f64;
            t.insert(r([x, y], [x + 0.5, y + 0.5]), i);
        }
        assert_eq!(t.len(), n);
        assert!(t.stats().height >= 2, "tree should have split");

        // Every inserted entry must be findable by its own rectangle.
        for i in 0..n {
            let x = (i % 25) as f64;
            let y = (i / 25) as f64;
            let hits = t.search_intersecting(&r([x + 0.1, y + 0.1], [x + 0.2, y + 0.2]));
            assert!(hits.iter().any(|(_, v)| **v == i), "entry {i} not found");
        }
    }

    #[test]
    fn remove_one_removes_exactly_one() {
        let mut t = RTree::new(2);
        for i in 0..100u32 {
            let x = f64::from(i);
            t.insert(r([x, 0.0], [x + 1.0, 1.0]), i);
        }
        assert_eq!(
            t.remove_one(&r([10.0, 0.0], [11.0, 1.0]), |v| *v == 10),
            Some(10)
        );
        assert_eq!(t.len(), 99);
        // A second removal of the same key finds nothing.
        assert_eq!(
            t.remove_one(&r([10.0, 0.0], [11.0, 1.0]), |v| *v == 10),
            None
        );
        // All other entries survive.
        for i in (0..100u32).filter(|i| *i != 10) {
            let x = f64::from(i);
            let hits = t.search_point(&[x + 0.5, 0.5]);
            assert!(hits.iter().any(|(_, v)| **v == i), "entry {i} lost");
        }
    }

    #[test]
    fn remove_down_to_empty_and_reuse() {
        let mut t = RTree::new(1);
        let key = |i: u32| HyperRect::new(vec![f64::from(i)], vec![f64::from(i) + 0.5]).unwrap();
        for i in 0..64u32 {
            t.insert(key(i), i);
        }
        for i in 0..64u32 {
            assert_eq!(t.remove_one(&key(i), |v| *v == i), Some(i), "removing {i}");
        }
        assert!(t.is_empty());
        t.insert(key(3), 3);
        assert_eq!(t.len(), 1);
        assert_eq!(t.search_point(&[3.25]).len(), 1);
    }

    #[test]
    fn visit_can_stop_early() {
        let mut t = RTree::new(2);
        for i in 0..50 {
            t.insert(r([0.0, 0.0], [10.0, 10.0]), i);
        }
        let mut seen = 0;
        let completed = t.visit_intersecting(&r([1.0, 1.0], [2.0, 2.0]), |_, _| {
            seen += 1;
            seen < 5
        });
        assert!(!completed);
        assert_eq!(seen, 5);
    }

    #[test]
    fn iter_yields_everything() {
        let mut t = RTree::new(2);
        for i in 0..37u32 {
            let x = f64::from(i);
            t.insert(r([x, x], [x + 1.0, x + 1.0]), i);
        }
        let mut all: Vec<u32> = t.iter().map(|(_, v)| *v).collect();
        all.sort_unstable();
        assert_eq!(all, (0..37).collect::<Vec<_>>());
    }

    #[test]
    fn bulk_load_matches_incremental_search() {
        let entries: Vec<(HyperRect, u32)> = (0..300u32)
            .map(|i| {
                let x = f64::from(i % 20);
                let y = f64::from(i / 20);
                (r([x, y], [x + 0.9, y + 0.9]), i)
            })
            .collect();

        let mut bulk = RTree::new(2);
        bulk.bulk_load(entries.clone());
        let mut incr = RTree::new(2);
        for (k, v) in entries {
            incr.insert(k, v);
        }

        assert_eq!(bulk.len(), incr.len());
        for window in [
            r([0.0, 0.0], [5.0, 5.0]),
            r([10.0, 10.0], [15.0, 14.0]),
            r([-5.0, -5.0], [-1.0, -1.0]),
            r([0.0, 0.0], [25.0, 25.0]),
        ] {
            let mut a: Vec<u32> = bulk
                .search_intersecting(&window)
                .iter()
                .map(|(_, v)| **v)
                .collect();
            let mut b: Vec<u32> = incr
                .search_intersecting(&window)
                .iter()
                .map(|(_, v)| **v)
                .collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "window {window}");
        }
    }

    #[test]
    #[should_panic(expected = "dimensionality mismatch")]
    fn dimension_mismatch_panics() {
        let mut t: RTree<u32> = RTree::new(2);
        t.insert(HyperRect::new(vec![0.0], vec![1.0]).unwrap(), 1);
    }
}
