//! The recursive node structure and the insert/delete/search algorithms.

use crate::split::{min_for, quadratic_split};
use fp_geometry::HyperRect;

/// An R-tree node. Every node caches the minimum bounding rectangle (MBR)
/// of its contents.
#[derive(Debug, Clone)]
pub(crate) enum Node<T> {
    /// A leaf holding data entries.
    Leaf {
        /// MBR of all entries.
        mbr: HyperRect,
        /// The `(key, payload)` entries.
        entries: Vec<(HyperRect, T)>,
    },
    /// An internal node holding child nodes.
    Inner {
        /// MBR of all children.
        mbr: HyperRect,
        /// Child subtrees.
        children: Vec<Node<T>>,
    },
}

impl<T> Node<T> {
    /// A new single-entry leaf.
    pub(crate) fn leaf_with(rect: HyperRect, value: T) -> Self {
        Node::Leaf {
            mbr: rect.clone(),
            entries: vec![(rect, value)],
        }
    }

    /// A new inner node over exactly two children (used for root growth).
    pub(crate) fn parent_of(a: Node<T>, b: Node<T>) -> Self {
        let mbr = a
            .mbr()
            .union(b.mbr())
            .expect("children share dimensionality");
        Node::Inner {
            mbr,
            children: vec![a, b],
        }
    }

    /// The node's cached MBR.
    pub(crate) fn mbr(&self) -> &HyperRect {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => mbr,
        }
    }

    /// Number of entries (leaf) or children (inner) directly in this node.
    pub(crate) fn fanout(&self) -> usize {
        match self {
            Node::Leaf { entries, .. } => entries.len(),
            Node::Inner { children, .. } => children.len(),
        }
    }

    /// Recomputes the cached MBR from direct contents.
    /// Must not be called on an empty node.
    fn refresh_mbr(&mut self) {
        match self {
            Node::Leaf { mbr, entries } => {
                let mut it = entries.iter();
                let first = it.next().expect("refresh_mbr on empty leaf").0.clone();
                *mbr = it.fold(first, |acc, (r, _)| {
                    acc.union(r).expect("entries share dimensionality")
                });
            }
            Node::Inner { mbr, children } => {
                let mut it = children.iter();
                let first = it.next().expect("refresh_mbr on empty inner").mbr().clone();
                *mbr = it.fold(first, |acc, c| {
                    acc.union(c.mbr()).expect("children share dimensionality")
                });
            }
        }
    }

    /// Inserts into the subtree. Returns a split-off sibling when this node
    /// overflowed, in which case the caller must attach the sibling.
    pub(crate) fn insert(&mut self, rect: HyperRect, value: T, max: usize) -> Option<Node<T>> {
        match self {
            Node::Leaf { mbr, entries } => {
                *mbr = mbr.union(&rect).expect("key dims checked at API boundary");
                entries.push((rect, value));
                if entries.len() <= max {
                    return None;
                }
                let (keep, give) = quadratic_split(std::mem::take(entries), |e| &e.0, min_for(max));
                *entries = keep;
                self.refresh_mbr();
                let mut sibling = Node::Leaf {
                    mbr: give[0].0.clone(),
                    entries: give,
                };
                sibling.refresh_mbr();
                Some(sibling)
            }
            Node::Inner { mbr, children } => {
                *mbr = mbr.union(&rect).expect("key dims checked at API boundary");
                let idx = choose_subtree(children, &rect);
                if let Some(new_child) = children[idx].insert(rect, value, max) {
                    children.push(new_child);
                    if children.len() > max {
                        let (keep, give) =
                            quadratic_split(std::mem::take(children), Node::mbr, min_for(max));
                        *children = keep;
                        self.refresh_mbr();
                        let mut sibling = Node::Inner {
                            mbr: give[0].mbr().clone(),
                            children: give,
                        };
                        sibling.refresh_mbr();
                        return Some(sibling);
                    }
                }
                None
            }
        }
    }

    /// Removes the first matching entry from the subtree; underflowing
    /// descendants are dissolved and their data entries pushed to `orphans`
    /// for reinsertion by the tree.
    ///
    /// Returns the removed payload, or `None` when no entry matched.
    pub(crate) fn remove_one<F: FnMut(&T) -> bool>(
        &mut self,
        rect: &HyperRect,
        pred: &mut F,
        min: usize,
        orphans: &mut Vec<(HyperRect, T)>,
    ) -> Option<T> {
        match self {
            Node::Leaf { entries, .. } => {
                let pos = entries
                    .iter()
                    .position(|(r, v)| r.approx_eq(rect) && pred(v))?;
                let (_, value) = entries.swap_remove(pos);
                if !entries.is_empty() {
                    self.refresh_mbr();
                }
                Some(value)
            }
            Node::Inner { children, .. } => {
                let mut removed = None;
                for i in 0..children.len() {
                    if !children[i].mbr().contains_rect(rect) {
                        continue;
                    }
                    if let Some(v) = children[i].remove_one(rect, pred, min, orphans) {
                        removed = Some(v);
                        // Condense: dissolve an underflowing or empty child.
                        if children[i].fanout() < min {
                            let child = children.swap_remove(i);
                            child.collect_all_owned(orphans);
                        }
                        break;
                    }
                }
                if removed.is_some() && !children.is_empty() {
                    self.refresh_mbr();
                }
                removed
            }
        }
    }

    /// Turns a possibly-degenerate root into a well-formed one:
    /// empty → `None`, single-child inner chains collapse.
    pub(crate) fn into_shrunk_root(self) -> Option<Node<T>> {
        let mut node = self;
        loop {
            match node {
                Node::Leaf { ref entries, .. } => {
                    return if entries.is_empty() { None } else { Some(node) };
                }
                Node::Inner { mut children, .. } => match children.len() {
                    0 => return None,
                    1 => node = children.pop().expect("len checked"),
                    _ => {
                        return Some(Node::Inner {
                            mbr: {
                                let mut it = children.iter();
                                let first = it.next().expect("non-empty").mbr().clone();
                                it.fold(first, |acc, c| acc.union(c.mbr()).expect("same dims"))
                            },
                            children,
                        })
                    }
                },
            }
        }
    }

    /// Collects entries intersecting `window` into `out`.
    pub(crate) fn search_intersecting<'a>(
        &'a self,
        window: &HyperRect,
        out: &mut Vec<(&'a HyperRect, &'a T)>,
    ) {
        match self {
            Node::Leaf { entries, .. } => {
                for (r, v) in entries {
                    if r.intersects_rect(window) {
                        out.push((r, v));
                    }
                }
            }
            Node::Inner { children, .. } => {
                for c in children {
                    if c.mbr().intersects_rect(window) {
                        c.search_intersecting(window, out);
                    }
                }
            }
        }
    }

    /// Visits entries intersecting `window`; `false` from the visitor stops
    /// the walk. Returns whether the walk completed.
    pub(crate) fn visit_intersecting<F: FnMut(&HyperRect, &T) -> bool>(
        &self,
        window: &HyperRect,
        visit: &mut F,
    ) -> bool {
        match self {
            Node::Leaf { entries, .. } => {
                for (r, v) in entries {
                    if r.intersects_rect(window) && !visit(r, v) {
                        return false;
                    }
                }
                true
            }
            Node::Inner { children, .. } => {
                for c in children {
                    if c.mbr().intersects_rect(window) && !c.visit_intersecting(window, visit) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Collects references to every entry in the subtree.
    pub(crate) fn collect_all<'a>(&'a self, out: &mut Vec<(&'a HyperRect, &'a T)>) {
        match self {
            Node::Leaf { entries, .. } => out.extend(entries.iter().map(|(r, v)| (r, v))),
            Node::Inner { children, .. } => {
                for c in children {
                    c.collect_all(out);
                }
            }
        }
    }

    /// Consumes the subtree, moving every data entry into `out`.
    pub(crate) fn collect_all_owned(self, out: &mut Vec<(HyperRect, T)>) {
        match self {
            Node::Leaf { entries, .. } => out.extend(entries),
            Node::Inner { children, .. } => {
                for c in children {
                    c.collect_all_owned(out);
                }
            }
        }
    }

    /// Builds an inner node over pre-built children (bulk loading).
    pub(crate) fn inner_over(children: Vec<Node<T>>) -> Self {
        debug_assert!(!children.is_empty());
        let mut it = children.iter();
        let first = it.next().expect("non-empty").mbr().clone();
        let mbr = it.fold(first, |acc, c| acc.union(c.mbr()).expect("same dims"));
        Node::Inner { mbr, children }
    }

    /// Builds a leaf over entries (bulk loading).
    pub(crate) fn leaf_over(entries: Vec<(HyperRect, T)>) -> Self {
        debug_assert!(!entries.is_empty());
        let mut it = entries.iter();
        let first = it.next().expect("non-empty").0.clone();
        let mbr = it.fold(first, |acc, (r, _)| acc.union(r).expect("same dims"));
        Node::Leaf { mbr, entries }
    }
}

/// Guttman's ChooseLeaf criterion: least MBR enlargement, ties broken by
/// smallest volume, then by lowest fan-out.
fn choose_subtree<T>(children: &[Node<T>], rect: &HyperRect) -> usize {
    let mut best = 0;
    let mut best_enl = f64::INFINITY;
    let mut best_vol = f64::INFINITY;
    for (i, c) in children.iter().enumerate() {
        let enl = c.mbr().enlargement(rect);
        let vol = c.mbr().volume();
        let better = enl < best_enl
            || (enl == best_enl && vol < best_vol)
            || (enl == best_enl && vol == best_vol && c.fanout() < children[best].fanout());
        if better {
            best = i;
            best_enl = enl;
            best_vol = vol;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r1(lo: f64, hi: f64) -> HyperRect {
        HyperRect::new(vec![lo], vec![hi]).unwrap()
    }

    #[test]
    fn choose_subtree_prefers_zero_enlargement() {
        let a = Node::leaf_with(r1(0.0, 10.0), 0u8);
        let b = Node::leaf_with(r1(20.0, 21.0), 1u8);
        let children = vec![a, b];
        // fits inside a: zero enlargement
        assert_eq!(choose_subtree(&children, &r1(2.0, 3.0)), 0);
        // next to b: tiny enlargement of b vs large of a
        assert_eq!(choose_subtree(&children, &r1(21.0, 22.0)), 1);
    }

    #[test]
    fn shrunk_root_collapses_chains() {
        let leaf = Node::leaf_with(r1(0.0, 1.0), 7u8);
        let chain = Node::Inner {
            mbr: r1(0.0, 1.0),
            children: vec![Node::Inner {
                mbr: r1(0.0, 1.0),
                children: vec![leaf],
            }],
        };
        let shrunk = chain.into_shrunk_root().expect("non-empty");
        assert!(matches!(shrunk, Node::Leaf { .. }));
    }

    #[test]
    fn shrunk_root_drops_empty() {
        let empty: Node<u8> = Node::Leaf {
            mbr: r1(0.0, 1.0),
            entries: vec![],
        };
        assert!(empty.into_shrunk_root().is_none());
    }
}
