//! Sort-Tile-Recursive (STR) bulk loading.

use crate::node::Node;
use fp_geometry::HyperRect;

/// Packs `entries` into a tree using STR and returns the root
/// (`None` for an empty input).
pub(crate) fn str_pack<T>(entries: Vec<(HyperRect, T)>, max: usize) -> Option<Node<T>> {
    if entries.is_empty() {
        return None;
    }
    let dims = entries[0].0.dims();

    // Level 0: tile data entries into leaves.
    let chunks = tile(entries, dims, 0, max, |(r, _)| r);
    let mut level: Vec<Node<T>> = chunks.into_iter().map(Node::leaf_over).collect();

    // Upper levels: tile nodes into parents until a single root remains.
    while level.len() > 1 {
        let chunks = tile(level, dims, 0, max, Node::mbr);
        level = chunks.into_iter().map(Node::inner_over).collect();
    }
    level.pop()
}

/// Recursively tiles `items` into groups of at most `cap`, sorting by the
/// MBR center of dimension `dim` and slicing into vertical slabs, then
/// recursing on the next dimension within each slab.
fn tile<E, F>(mut items: Vec<E>, dims: usize, dim: usize, cap: usize, mbr_of: F) -> Vec<Vec<E>>
where
    F: Fn(&E) -> &HyperRect + Copy,
{
    if items.len() <= cap {
        return vec![items];
    }
    let center = |e: &E| {
        let r = mbr_of(e);
        0.5 * (r.lo()[dim] + r.hi()[dim])
    };
    items.sort_by(|a, b| center(a).total_cmp(&center(b)));

    if dim + 1 == dims {
        // Last dimension: final slicing into capacity-sized runs.
        return chunk(items, cap);
    }

    // Number of leaf-level pages this subset needs, and the slab count for
    // the remaining dimensions: S = ceil(P^(1/(dims - dim))).
    let pages = items.len().div_ceil(cap);
    let exp = 1.0 / (dims - dim) as f64;
    let slabs = (pages as f64).powf(exp).ceil() as usize;
    let slab_size = items.len().div_ceil(slabs.max(1));

    let mut out = Vec::new();
    for slab in chunk(items, slab_size.max(1)) {
        out.extend(tile(slab, dims, dim + 1, cap, mbr_of));
    }
    out
}

/// Splits a vector into consecutive chunks of `size` (last may be smaller).
fn chunk<E>(items: Vec<E>, size: usize) -> Vec<Vec<E>> {
    debug_assert!(size > 0);
    let mut out = Vec::with_capacity(items.len().div_ceil(size));
    let mut cur = Vec::with_capacity(size);
    for item in items {
        cur.push(item);
        if cur.len() == size {
            out.push(std::mem::replace(&mut cur, Vec::with_capacity(size)));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunking_is_exact() {
        let v: Vec<u32> = (0..10).collect();
        let c = chunk(v, 3);
        assert_eq!(c.len(), 4);
        assert_eq!(c[0], vec![0, 1, 2]);
        assert_eq!(c[3], vec![9]);
    }

    #[test]
    fn str_pack_handles_empty_and_single() {
        assert!(str_pack::<u32>(vec![], 8).is_none());
        let r = HyperRect::new(vec![0.0], vec![1.0]).unwrap();
        let root = str_pack(vec![(r.clone(), 1u32)], 8).unwrap();
        assert_eq!(root.fanout(), 1);
    }

    #[test]
    fn str_pack_fills_leaves_well() {
        let entries: Vec<(HyperRect, usize)> = (0..256)
            .map(|i| {
                let x = (i % 16) as f64;
                let y = (i / 16) as f64;
                (
                    HyperRect::new(vec![x, y], vec![x + 0.5, y + 0.5]).unwrap(),
                    i,
                )
            })
            .collect();
        let root = str_pack(entries, 8).unwrap();
        let mut all = Vec::new();
        root.collect_all(&mut all);
        assert_eq!(all.len(), 256);
    }
}
