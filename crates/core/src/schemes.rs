//! The caching schemes of the paper's evaluation.

use serde::{Deserialize, Serialize};

/// Which caching scheme the proxy runs.
///
/// The paper's Section 4.2 evaluates: a tunneling proxy (NC), passive
/// caching (PC), and three active variants — full semantic caching
/// ("First"), active caching handling exact match + containment + region
/// containment ("Second"), and pure containment-based caching ("Third").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// NC: forward everything, cache nothing.
    NoCache,
    /// PC: exact-match caching on the request text only.
    Passive,
    /// "First": full semantic caching — all five relationship cases,
    /// including general overlap via probe + remainder queries.
    FullSemantic,
    /// "Second": exact match, containment, and region containment; general
    /// overlap is forwarded.
    RegionContainment,
    /// "Third": exact match and containment only.
    ContainmentOnly,
}

impl Scheme {
    /// Whether the scheme caches at all.
    pub fn caches(self) -> bool {
        !matches!(self, Scheme::NoCache)
    }

    /// Whether the scheme performs template-based (active) caching.
    pub fn is_active(self) -> bool {
        matches!(
            self,
            Scheme::FullSemantic | Scheme::RegionContainment | Scheme::ContainmentOnly
        )
    }

    /// Whether region containment triggers merge + compaction.
    pub fn handles_region_containment(self) -> bool {
        matches!(self, Scheme::FullSemantic | Scheme::RegionContainment)
    }

    /// Whether general overlap is answered with probe + remainder.
    pub fn handles_overlap(self) -> bool {
        matches!(self, Scheme::FullSemantic)
    }

    /// The paper's label for the scheme.
    pub fn paper_label(self) -> &'static str {
        match self {
            Scheme::NoCache => "NC",
            Scheme::Passive => "PC",
            Scheme::FullSemantic => "First (full semantic caching)",
            Scheme::RegionContainment => "Second (exact + containment + region containment)",
            Scheme::ContainmentOnly => "Third (containment-based)",
        }
    }

    /// A stable dense index for per-scheme counters, in declaration
    /// order (`no-cache` = 0 … `containment-only` = 4).
    pub fn index(self) -> usize {
        match self {
            Scheme::NoCache => 0,
            Scheme::Passive => 1,
            Scheme::FullSemantic => 2,
            Scheme::RegionContainment => 3,
            Scheme::ContainmentOnly => 4,
        }
    }

    /// All five schemes, in the paper's presentation order.
    pub fn all() -> [Scheme; 5] {
        [
            Scheme::NoCache,
            Scheme::Passive,
            Scheme::FullSemantic,
            Scheme::RegionContainment,
            Scheme::ContainmentOnly,
        ]
    }
}

impl std::fmt::Display for Scheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Scheme::NoCache => "no-cache",
            Scheme::Passive => "passive",
            Scheme::FullSemantic => "full-semantic",
            Scheme::RegionContainment => "region-containment",
            Scheme::ContainmentOnly => "containment-only",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_matrix_matches_the_paper() {
        use Scheme::*;
        assert!(!NoCache.caches());
        assert!(Passive.caches() && !Passive.is_active());
        for s in [FullSemantic, RegionContainment, ContainmentOnly] {
            assert!(s.caches() && s.is_active());
        }
        assert!(FullSemantic.handles_overlap());
        assert!(!RegionContainment.handles_overlap());
        assert!(!ContainmentOnly.handles_overlap());
        assert!(FullSemantic.handles_region_containment());
        assert!(RegionContainment.handles_region_containment());
        assert!(!ContainmentOnly.handles_region_containment());
    }

    #[test]
    fn labels() {
        assert_eq!(Scheme::NoCache.paper_label(), "NC");
        assert_eq!(Scheme::FullSemantic.to_string(), "full-semantic");
        assert_eq!(Scheme::all().len(), 5);
    }
}
