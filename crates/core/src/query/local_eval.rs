//! Local evaluation of subsumed queries over cached tuples.
//!
//! "In essence, the evaluation of a subsumed query becomes that of a
//! spatial region selection query over cached results" (paper §3.2): the
//! proxy selects the cached tuples whose point — read from the declared
//! coordinate attributes — falls inside the new query's region. No other
//! predicate needs re-evaluation, because queries are only related within
//! one residual group (identical template, identical non-spatial
//! parameters).

use fp_geometry::Region;
use fp_skyserver::ResultSet;

/// Selects the rows of `result` whose coordinate-attribute point lies in
/// `region`. `coord_idx` maps region dimensions to result columns.
///
/// Returns `None` when some coordinate cell is non-numeric (a malformed
/// cached document — callers fall back to the origin site).
pub fn eval_region_over(
    result: &ResultSet,
    coord_idx: &[usize],
    region: &Region,
) -> Option<ResultSet> {
    debug_assert_eq!(coord_idx.len(), region.dims());
    let mut out = ResultSet::empty(result.columns.clone());
    let mut point = vec![0.0; coord_idx.len()];
    for row in &result.rows {
        for (d, &ci) in coord_idx.iter().enumerate() {
            point[d] = row.get(ci)?.as_f64()?;
        }
        if region.contains_coords(&point) {
            out.rows.push(row.clone());
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::{HyperRect, HyperSphere, Point};
    use fp_sqlmini::Value;

    fn result() -> ResultSet {
        ResultSet {
            columns: vec!["objID".into(), "x".into(), "y".into()],
            rows: vec![
                vec![Value::Int(1), Value::Float(0.1), Value::Float(0.1)],
                vec![Value::Int(2), Value::Float(0.9), Value::Float(0.9)],
                vec![Value::Int(3), Value::Float(2.0), Value::Float(2.0)],
                vec![Value::Int(4), Value::Int(0), Value::Int(0)],
            ],
        }
    }

    #[test]
    fn selects_points_inside_rect() {
        let region = Region::Rect(HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap());
        let out = eval_region_over(&result(), &[1, 2], &region).unwrap();
        let ids: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![1, 2, 4]);
        assert_eq!(out.columns, result().columns);
    }

    #[test]
    fn selects_points_inside_sphere() {
        let region = Region::Sphere(HyperSphere::new(Point::from_slice(&[0.0, 0.0]), 0.5).unwrap());
        let out = eval_region_over(&result(), &[1, 2], &region).unwrap();
        let ids: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![1, 4]);
    }

    #[test]
    fn non_numeric_coordinates_abort() {
        let mut r = result();
        r.rows[0][1] = Value::Str("oops".into());
        let region = Region::Rect(HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap());
        assert!(eval_region_over(&r, &[1, 2], &region).is_none());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let r = ResultSet::empty(vec!["objID".into(), "x".into(), "y".into()]);
        let region = Region::Rect(HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap());
        let out = eval_region_over(&r, &[1, 2], &region).unwrap();
        assert!(out.is_empty());
    }
}
