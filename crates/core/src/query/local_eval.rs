//! Local evaluation of subsumed queries over cached tuples.
//!
//! "In essence, the evaluation of a subsumed query becomes that of a
//! spatial region selection query over cached results" (paper §3.2): the
//! proxy selects the cached tuples whose point — read from the declared
//! coordinate attributes — falls inside the new query's region. No other
//! predicate needs re-evaluation, because queries are only related within
//! one residual group (identical template, identical non-spatial
//! parameters).
//!
//! Two evaluation paths exist. The **columnar** path reads `f64`
//! coordinates straight out of an entry's [`ColumnarRows`] form (built
//! once at insert), pruning candidates through its spatial micro-index.
//! The **row-major** path walks `Vec<Vec<Value>>` tuples and re-parses
//! every coordinate cell; it remains as the fallback for entries without
//! a columnar form (no declared coordinates, or a malformed cached
//! document) and as the reference the property tests compare against.

use fp_geometry::Region;
use fp_skyserver::{ColumnarRows, ResultSet, SelectStats};

/// Reusable buffers for repeated local evaluations: the coordinate point
/// and the selected-row-id list survive across calls, so steady-state
/// evaluation allocates only the output rows.
#[derive(Debug, Default)]
pub struct EvalScratch {
    point: Vec<f64>,
    selected: Vec<u32>,
}

impl EvalScratch {
    /// The raw (point, selected) buffers, for serve paths that drive
    /// [`ColumnarRows::select_region`] directly (byte-level assembly).
    pub(crate) fn parts_mut(&mut self) -> (&mut Vec<f64>, &mut Vec<u32>) {
        (&mut self.point, &mut self.selected)
    }
}

/// Outcome of evaluating a region over one cached entry.
#[derive(Debug)]
pub struct EntryEval {
    /// The selected rows (same columns, same relative order as the
    /// cached result).
    pub result: ResultSet,
    /// Scan/prune/select counts for metrics.
    pub stats: SelectStats,
    /// Whether the columnar hot path served this evaluation (`false` =
    /// row-major fallback).
    pub columnar: bool,
}

/// Selects the rows of `result` whose coordinate-attribute point lies in
/// `region`. `coord_idx` maps region dimensions to result columns.
///
/// Returns `None` when some coordinate cell is non-numeric (a malformed
/// cached document — callers fall back to the origin site).
pub fn eval_region_over(
    result: &ResultSet,
    coord_idx: &[usize],
    region: &Region,
) -> Option<ResultSet> {
    let mut scratch = EvalScratch::default();
    eval_region_scratch(result, coord_idx, region, &mut scratch)
}

/// [`eval_region_over`] with caller-owned scratch buffers — the variant
/// the serve paths use so per-hit evaluation does not reallocate the
/// coordinate point.
pub fn eval_region_scratch(
    result: &ResultSet,
    coord_idx: &[usize],
    region: &Region,
    scratch: &mut EvalScratch,
) -> Option<ResultSet> {
    debug_assert_eq!(coord_idx.len(), region.dims());
    let mut out = ResultSet::empty(result.columns.clone());
    let point = &mut scratch.point;
    point.clear();
    point.resize(coord_idx.len(), 0.0);
    for row in &result.rows {
        for (d, &ci) in coord_idx.iter().enumerate() {
            point[d] = row.get(ci)?.as_f64()?;
        }
        if region.contains_coords(point) {
            out.rows.push(row.clone());
        }
    }
    Some(out)
}

/// Evaluates `region` over one cached entry, preferring its columnar
/// form. Returns `None` only when the row-major fallback hits a
/// non-numeric coordinate cell (malformed entry — forward to origin).
///
/// `columnar` is the entry's pre-built form, used when its coordinate
/// set matches `coord_idx`; both paths produce identical row sets in
/// identical order (pinned by `tests/columnar_equivalence.rs`).
pub fn eval_entry_region(
    result: &ResultSet,
    columnar: Option<&ColumnarRows>,
    coord_idx: &[usize],
    region: &Region,
    scratch: &mut EvalScratch,
) -> Option<EntryEval> {
    if let Some(col) = columnar {
        if col.coord_idx() == coord_idx {
            let stats = col.select_region(region, &mut scratch.selected, &mut scratch.point);
            return Some(EntryEval {
                result: col.materialize(result, &scratch.selected),
                stats,
                columnar: true,
            });
        }
    }
    let out = eval_region_scratch(result, coord_idx, region, scratch)?;
    let stats = SelectStats {
        rows_total: result.len(),
        rows_scanned: result.len(),
        rows_selected: out.len(),
    };
    Some(EntryEval {
        result: out,
        stats,
        columnar: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::{HyperRect, HyperSphere, Point};
    use fp_sqlmini::Value;

    fn result() -> ResultSet {
        ResultSet {
            columns: vec!["objID".into(), "x".into(), "y".into()],
            rows: vec![
                vec![Value::Int(1), Value::Float(0.1), Value::Float(0.1)],
                vec![Value::Int(2), Value::Float(0.9), Value::Float(0.9)],
                vec![Value::Int(3), Value::Float(2.0), Value::Float(2.0)],
                vec![Value::Int(4), Value::Int(0), Value::Int(0)],
            ],
        }
    }

    #[test]
    fn selects_points_inside_rect() {
        let region = Region::Rect(HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap());
        let out = eval_region_over(&result(), &[1, 2], &region).unwrap();
        let ids: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![1, 2, 4]);
        assert_eq!(out.columns, result().columns);
    }

    #[test]
    fn selects_points_inside_sphere() {
        let region = Region::Sphere(HyperSphere::new(Point::from_slice(&[0.0, 0.0]), 0.5).unwrap());
        let out = eval_region_over(&result(), &[1, 2], &region).unwrap();
        let ids: Vec<i64> = out.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![1, 4]);
    }

    #[test]
    fn non_numeric_coordinates_abort() {
        let mut r = result();
        r.rows[0][1] = Value::Str("oops".into());
        let region = Region::Rect(HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap());
        assert!(eval_region_over(&r, &[1, 2], &region).is_none());
    }

    #[test]
    fn empty_input_is_empty_output() {
        let r = ResultSet::empty(vec!["objID".into(), "x".into(), "y".into()]);
        let region = Region::Rect(HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap());
        let out = eval_region_over(&r, &[1, 2], &region).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn scratch_is_reusable_across_calls() {
        let mut scratch = EvalScratch::default();
        let r2 = result();
        let rect2 = Region::Rect(HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap());
        let a = eval_region_scratch(&r2, &[1, 2], &rect2, &mut scratch).unwrap();
        assert_eq!(a.len(), 3);
        // Different dimensionality next: the point buffer resizes.
        let r1 = ResultSet {
            columns: vec!["objID".into(), "x".into()],
            rows: vec![vec![Value::Int(1), Value::Float(0.5)]],
        };
        let rect1 = Region::Rect(HyperRect::new(vec![0.0], vec![1.0]).unwrap());
        let b = eval_region_scratch(&r1, &[1], &rect1, &mut scratch).unwrap();
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn entry_eval_prefers_columnar_and_matches_row_major() {
        let base = result();
        let region = Region::Rect(HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap());
        let col = ColumnarRows::build(&base, &[1, 2]).unwrap();
        let mut scratch = EvalScratch::default();
        let fast = eval_entry_region(&base, Some(&col), &[1, 2], &region, &mut scratch).unwrap();
        assert!(fast.columnar);
        let slow = eval_entry_region(&base, None, &[1, 2], &region, &mut scratch).unwrap();
        assert!(!slow.columnar);
        assert_eq!(fast.result, slow.result);
        assert_eq!(fast.stats.rows_selected, slow.stats.rows_selected);
        // Row-major path scans everything; columnar may prune.
        assert_eq!(slow.stats.rows_scanned, base.len());
    }

    #[test]
    fn entry_eval_mismatched_coord_set_falls_back() {
        let base = result();
        // Columnar built over (y, x) but the query wants (x, y): the
        // pre-built form must not be used.
        let col = ColumnarRows::build(&base, &[2, 1]).unwrap();
        let region = Region::Rect(HyperRect::new(vec![0.0, 0.0], vec![1.0, 1.0]).unwrap());
        let mut scratch = EvalScratch::default();
        let eval = eval_entry_region(&base, Some(&col), &[1, 2], &region, &mut scratch).unwrap();
        assert!(!eval.columnar);
        assert_eq!(eval.result.len(), 3);
    }
}
