//! Classifying a new query against the cache.

use crate::cache::CacheStore;
use crate::template::BoundQuery;
use fp_geometry::Relation;

/// The status the paper's Section 3.2 assigns to a new query, with the
/// cache entries that justify it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryStatus {
    /// Case (a): an exact match — serve the cached result file.
    ExactMatch(u64),
    /// Case (b): subsumed by one cached query — evaluate locally.
    ContainedBy(u64),
    /// Special case of (c): the new query contains the listed cached
    /// queries — fetch a remainder, merge, replace them (compaction).
    RegionContainment(Vec<u64>),
    /// Case (c): partial overlap with the listed cached queries.
    Overlapping(Vec<u64>),
    /// Case (d): disjoint from every cached query.
    Disjoint,
}

impl QueryStatus {
    /// Short label for metrics.
    pub fn label(&self) -> &'static str {
        match self {
            QueryStatus::ExactMatch(_) => "exact",
            QueryStatus::ContainedBy(_) => "contained",
            QueryStatus::RegionContainment(_) => "region-containment",
            QueryStatus::Overlapping(_) => "overlap",
            QueryStatus::Disjoint => "disjoint",
        }
    }
}

/// Classifies `bound` against the cached queries of its residual group.
///
/// Uses the cache description for candidate pruning, then exact region
/// relationship checks. Returns, in priority order: exact match, then
/// containment, then region containment, then overlap, then disjoint.
///
/// Entries whose result was clipped by a `TOP` limit are only eligible
/// for exact matches — a clipped result cannot prove completeness for any
/// other relationship (see `CacheEntry::truncated`).
pub fn classify(store: &CacheStore, bound: &BoundQuery) -> QueryStatus {
    classify_graded(store, bound, false)
}

/// [`classify`] with an explicit freshness grade.
///
/// With `allow_grace = false` only `Fresh` and `Stale` entries are
/// candidates (the stale-while-revalidate window: serveable, with a
/// background refresh). With `allow_grace = true` — the degraded path,
/// where the origin is known down — `Grace` entries are admitted too
/// (stale-if-error). `Dead` entries never classify; they are retired by
/// the store's sweep.
pub fn classify_graded(store: &CacheStore, bound: &BoundQuery, allow_grace: bool) -> QueryStatus {
    let mut contained_by: Option<u64> = None;
    let mut contains: Vec<u64> = Vec::new();
    let mut overlaps: Vec<u64> = Vec::new();

    for id in store.candidates(&bound.residual_key, &bound.region) {
        match store.freshness(id) {
            Some(f) if f.serveable(allow_grace) => {}
            _ => continue,
        }
        // The classify view covers both tiers from resident metadata —
        // demoted entries participate without any disk access.
        let Some(entry) = store.classify_view(id) else {
            continue;
        };
        match bound.region.relate(entry.region) {
            Relation::Equal => {
                // Equal region within one residual group means the same
                // query; a truncated equal entry was clipped the same way.
                return QueryStatus::ExactMatch(id);
            }
            Relation::Inside if !entry.truncated => {
                // Prefer the smallest containing entry: local evaluation
                // scans fewer tuples.
                match contained_by {
                    Some(prev) => {
                        let prev_len = store.classify_view(prev).map_or(usize::MAX, |e| e.rows);
                        if entry.rows < prev_len {
                            contained_by = Some(id);
                        }
                    }
                    None => contained_by = Some(id),
                }
            }
            Relation::Contains if !entry.truncated => contains.push(id),
            Relation::Inside | Relation::Contains | Relation::Overlaps => {
                if !entry.truncated {
                    overlaps.push(id);
                }
            }
            Relation::Disjoint => {}
        }
    }

    if let Some(id) = contained_by {
        return QueryStatus::ContainedBy(id);
    }
    if !contains.is_empty() {
        return QueryStatus::RegionContainment(contains);
    }
    if !overlaps.is_empty() {
        return QueryStatus::Overlapping(overlaps);
    }
    QueryStatus::Disjoint
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::DescriptionKind;
    use crate::template::TemplateManager;
    use fp_skyserver::ResultSet;
    use fp_sqlmini::Value;

    fn bound(m: &TemplateManager, ra: f64, dec: f64, radius: f64) -> BoundQuery {
        m.resolve_form(
            "/search/radial",
            &[
                ("ra".to_string(), ra.to_string()),
                ("dec".to_string(), dec.to_string()),
                ("radius".to_string(), radius.to_string()),
            ],
        )
        .unwrap()
    }

    fn rs(n: usize) -> ResultSet {
        ResultSet {
            columns: vec!["objID".into()],
            rows: (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        }
    }

    fn seed(store: &mut CacheStore, b: &BoundQuery, n: usize, truncated: bool) -> u64 {
        store
            .insert(
                &b.residual_key,
                b.region.clone(),
                rs(n),
                truncated,
                &b.sql,
                &[],
            )
            .unwrap()
    }

    #[test]
    fn classification_priorities() {
        let m = TemplateManager::with_sky_defaults();
        let mut store = CacheStore::new(DescriptionKind::Array, None);

        let big = bound(&m, 185.0, 0.0, 30.0);
        let big_id = seed(&mut store, &big, 100, false);

        // Exact.
        assert_eq!(classify(&store, &big), QueryStatus::ExactMatch(big_id));
        // Contained.
        let small = bound(&m, 185.0, 0.0, 10.0);
        assert_eq!(classify(&store, &small), QueryStatus::ContainedBy(big_id));
        // Region containment.
        let huge = bound(&m, 185.0, 0.0, 90.0);
        assert_eq!(
            classify(&store, &huge),
            QueryStatus::RegionContainment(vec![big_id])
        );
        // Overlap (centers 40' apart, radii 30' and 15').
        let side = bound(&m, 185.0 + 40.0 / 60.0, 0.0, 15.0);
        assert_eq!(
            classify(&store, &side),
            QueryStatus::Overlapping(vec![big_id])
        );
        // Disjoint.
        let far = bound(&m, 100.0, 0.0, 10.0);
        assert_eq!(classify(&store, &far), QueryStatus::Disjoint);
    }

    #[test]
    fn smallest_containing_entry_wins() {
        let m = TemplateManager::with_sky_defaults();
        let mut store = CacheStore::new(DescriptionKind::RTree, None);
        let big = bound(&m, 185.0, 0.0, 30.0);
        let _big_id = seed(&mut store, &big, 500, false);
        let mid = bound(&m, 185.0, 0.0, 20.0);
        let mid_id = seed(&mut store, &mid, 100, false);

        let small = bound(&m, 185.0, 0.0, 5.0);
        assert_eq!(classify(&store, &small), QueryStatus::ContainedBy(mid_id));
    }

    #[test]
    fn truncated_entries_only_serve_exact_matches() {
        let m = TemplateManager::with_sky_defaults();
        let mut store = CacheStore::new(DescriptionKind::Array, None);
        let big = bound(&m, 185.0, 0.0, 30.0);
        let big_id = seed(&mut store, &big, 100, true);

        // Exact still works.
        assert_eq!(classify(&store, &big), QueryStatus::ExactMatch(big_id));
        // Containment must NOT be answered from a truncated entry.
        let small = bound(&m, 185.0, 0.0, 10.0);
        assert_eq!(classify(&store, &small), QueryStatus::Disjoint);
        // Nor overlap probing / region containment.
        let huge = bound(&m, 185.0, 0.0, 60.0);
        assert_eq!(classify(&store, &huge), QueryStatus::Disjoint);
    }

    #[test]
    fn residual_groups_do_not_mix() {
        let m = TemplateManager::with_sky_defaults();
        let mut store = CacheStore::new(DescriptionKind::Array, None);
        let radial = bound(&m, 185.0, 0.0, 30.0);
        seed(&mut store, &radial, 10, false);

        // A rect query over the same sky area lives in another group
        // (different template) — no relationship.
        let rect = m
            .resolve_form(
                "/search/rect",
                &[
                    ("min_ra".to_string(), "184.0".to_string()),
                    ("max_ra".to_string(), "186.0".to_string()),
                    ("min_dec".to_string(), "-1.0".to_string()),
                    ("max_dec".to_string(), "1.0".to_string()),
                ],
            )
            .unwrap();
        assert_eq!(classify(&store, &rect), QueryStatus::Disjoint);
    }
}
