//! Remainder-query synthesis.
//!
//! When a new query overlaps cached queries, the proxy can answer the
//! cached part locally and fetch only the rest — the **remainder query**
//! [Dar et al., VLDB 1996] — from the origin site. The paper uses
//! SkyServer's free-form SQL search page as the remainder facility; here
//! the remainder is the new query's SQL with one extra conjunct per
//! excluded cached region, phrased over the template's coordinate
//! attributes so the origin's ordinary executor can evaluate it:
//!
//! ```sql
//! ... WHERE <original predicates>
//!     AND NOT ((p.cx - x0)*(p.cx - x0) + … <= r*r)   -- cached ball
//! ```

use crate::template::BoundQuery;
use fp_geometry::Region;
use fp_sqlmini::{BinOp, Expr, Literal, Query, UnOp};

/// Builds the SQL predicate "the tuple's point lies inside `region`",
/// over `alias.columns` (closed inequalities, matching the proxy's closed
/// region tests so cached-part ∪ remainder-part covers everything).
pub fn region_inside_predicate(region: &Region, alias: &str, columns: &[String]) -> Expr {
    debug_assert_eq!(columns.len(), region.dims());
    let col = |d: usize| Expr::col(Some(alias), &columns[d]);
    let num = |v: f64| Expr::Literal(Literal::Float(v));

    match region {
        Region::Sphere(s) => {
            // sum_d (x_d - c_d)^2 <= r^2
            let mut sum: Option<Expr> = None;
            for (d, c) in s.center().coords().iter().enumerate() {
                let diff = Expr::binary(BinOp::Sub, col(d), num(*c));
                let sq = Expr::binary(BinOp::Mul, diff.clone(), diff);
                sum = Some(match sum {
                    Some(acc) => Expr::binary(BinOp::Add, acc, sq),
                    None => sq,
                });
            }
            Expr::binary(
                BinOp::Le,
                sum.expect("regions have at least one dimension"),
                num(s.radius() * s.radius()),
            )
        }
        Region::Rect(r) => {
            let mut conj: Option<Expr> = None;
            for d in 0..r.dims() {
                let between = Expr::Between {
                    expr: Box::new(col(d)),
                    low: Box::new(num(r.lo()[d])),
                    high: Box::new(num(r.hi()[d])),
                    negated: false,
                };
                conj = Some(match conj {
                    Some(acc) => Expr::binary(BinOp::And, acc, between),
                    None => between,
                });
            }
            conj.expect("regions have at least one dimension")
        }
        Region::Polytope(p) => {
            // bbox conjunct first, then one conjunct per face.
            let mut conj = region_inside_predicate(&Region::Rect(p.bbox().clone()), alias, columns);
            for face in p.faces() {
                let mut dot: Option<Expr> = None;
                for (d, n) in face.normal().iter().enumerate() {
                    let term = Expr::binary(BinOp::Mul, num(*n), col(d));
                    dot = Some(match dot {
                        Some(acc) => Expr::binary(BinOp::Add, acc, term),
                        None => term,
                    });
                }
                let face_pred = Expr::binary(
                    BinOp::Le,
                    dot.expect("non-degenerate normals"),
                    num(face.offset()),
                );
                conj = Expr::binary(BinOp::And, conj, face_pred);
            }
            conj
        }
    }
}

/// Synthesizes the remainder query: `bound`'s SQL with each region in
/// `exclude` subtracted.
///
/// Returns `None` when the query carries a `TOP` limit — clipping makes
/// probe/remainder decomposition unsound, so the proxy forwards the
/// original query instead (documented simplification; the paper's trace
/// templates fetch full result sets).
pub fn remainder_query(bound: &BoundQuery, exclude: &[&Region]) -> Option<Query> {
    if bound.query.top.is_some() || exclude.is_empty() {
        return None;
    }
    let alias = &bound.reg.coord_alias;
    let columns = &bound.reg.coord_columns;

    let mut query = bound.query.clone();
    let mut pred = query.where_clause.take();
    for region in exclude {
        let not_inside = Expr::Unary {
            op: UnOp::Not,
            expr: Box::new(region_inside_predicate(region, alias, columns)),
        };
        pred = Some(match pred {
            Some(acc) => Expr::binary(BinOp::And, acc, not_inside),
            None => not_inside,
        });
    }
    query.where_clause = pred;
    Some(query)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::TemplateManager;
    use fp_geometry::{HyperRect, HyperSphere, Point};
    use fp_skyserver::{Catalog, CatalogSpec, SkySite};

    fn bound(m: &TemplateManager, ra: f64, dec: f64, radius: f64) -> BoundQuery {
        m.resolve_form(
            "/search/radial",
            &[
                ("ra".to_string(), ra.to_string()),
                ("dec".to_string(), dec.to_string()),
                ("radius".to_string(), radius.to_string()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn sphere_predicate_prints_and_parses() {
        let ball = Region::Sphere(HyperSphere::new(Point::from_slice(&[0.1, 0.2]), 0.5).unwrap());
        let pred = region_inside_predicate(&ball, "p", &["x".into(), "y".into()]);
        let sql = pred.to_sql();
        assert!(sql.contains("(p.x - 0.1) * (p.x - 0.1)"));
        assert!(sql.contains("<= 0.25"));
        fp_sqlmini::parser::parse_expr(&sql).expect("predicate parses back");
    }

    #[test]
    fn rect_predicate_uses_between() {
        let rect = Region::Rect(HyperRect::new(vec![1.0, 2.0], vec![3.0, 4.0]).unwrap());
        let pred = region_inside_predicate(&rect, "p", &["ra".into(), "dec".into()]);
        let sql = pred.to_sql();
        assert!(sql.contains("p.ra BETWEEN 1.0 AND 3.0"));
        assert!(sql.contains("p.dec BETWEEN 2.0 AND 4.0"));
    }

    #[test]
    fn remainder_respects_top_guard() {
        let m = TemplateManager::with_sky_defaults();
        let b = bound(&m, 185.0, 0.0, 20.0);
        let cached = bound(&m, 185.0, 0.0, 10.0);
        assert!(remainder_query(&b, &[]).is_none());
        assert!(remainder_query(&b, &[&cached.region]).is_some());

        let mut top_query = b.clone();
        top_query.query.top = Some(10);
        assert!(remainder_query(&top_query, &[&cached.region]).is_none());
    }

    /// The defining property: cached part + remainder part = full answer,
    /// verified against the real origin executor.
    #[test]
    fn remainder_plus_probe_equals_original() {
        let m = TemplateManager::with_sky_defaults();
        let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));

        let new = bound(&m, 185.0, 0.0, 25.0);
        let cached = bound(&m, 185.0 + 20.0 / 60.0, 0.0, 15.0); // overlaps

        // Full answer.
        let full = site.execute_query(&new.query).unwrap().result;

        // Cached part: run the cached query, select its tuples inside the
        // new region (what the proxy's probe does).
        let cached_result = site.execute_query(&cached.query).unwrap().result;
        let coord_idx: Vec<usize> = ["cx", "cy", "cz"]
            .iter()
            .map(|c| cached_result.column_index(c).unwrap())
            .collect();
        let probe =
            crate::query::eval_region_over(&cached_result, &coord_idx, &new.region).unwrap();
        // The serve paths probe through the columnar form; it must land
        // on the same rows before the union with the remainder.
        let columnar = fp_skyserver::ColumnarRows::build(&cached_result, &coord_idx).unwrap();
        let mut scratch = crate::query::EvalScratch::default();
        let fast = crate::query::eval_entry_region(
            &cached_result,
            Some(&columnar),
            &coord_idx,
            &new.region,
            &mut scratch,
        )
        .unwrap();
        assert!(fast.columnar);
        assert_eq!(fast.result, probe);

        // Remainder part from the origin.
        let rq = remainder_query(&new, &[&cached.region]).unwrap();
        let remainder = site.execute_query(&rq).unwrap().result;

        // Merge and compare id sets.
        let merged = crate::query::merge_results("objID", &[&probe, &remainder]);
        let mut got: Vec<i64> = merged.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        let mut want: Vec<i64> = full.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(
            !probe.is_empty() && !remainder.is_empty(),
            "test should exercise both parts (probe {} rows, remainder {} rows)",
            probe.len(),
            remainder.len()
        );
    }
}
