//! Query processing: relationship classification, local evaluation,
//! remainder-query synthesis, and result merging.

mod local_eval;
mod merge;
mod relate;
mod remainder;

pub use local_eval::{
    eval_entry_region, eval_region_over, eval_region_scratch, EntryEval, EvalScratch,
};
pub use merge::merge_results;
pub use relate::{classify, classify_graded, QueryStatus};
pub use remainder::{region_inside_predicate, remainder_query};
