//! Merging cached and remainder result parts.

use fp_skyserver::ResultSet;
use fp_sqlmini::Value;
use std::collections::HashSet;

/// A hashable dedup key over one cell. Integer keys — the common case,
/// SkyServer's `objID` — hash without allocating; only string keys copy.
/// Floats dedup by bit pattern (`-0.0` ≠ `0.0`, as before).
#[derive(PartialEq, Eq, Hash)]
enum MergeKey {
    Int(i64),
    FloatBits(u64),
    Str(String),
    Bool(bool),
    Null,
}

impl MergeKey {
    fn of(v: &Value) -> MergeKey {
        match v {
            Value::Int(i) => MergeKey::Int(*i),
            Value::Float(f) => MergeKey::FloatBits(f.to_bits()),
            Value::Str(s) => MergeKey::Str(s.clone()),
            Value::Bool(b) => MergeKey::Bool(*b),
            Value::Null => MergeKey::Null,
        }
    }
}

/// Merges result parts into one set, deduplicating by `key_column`.
///
/// All parts must share the first part's column list (the proxy only
/// merges results of one template, so this holds by construction); parts
/// with a different column list are skipped defensively. Row order:
/// parts in the given order, first occurrence of each key wins.
pub fn merge_results(key_column: &str, parts: &[&ResultSet]) -> ResultSet {
    let Some(first) = parts.first() else {
        return ResultSet::empty(vec![]);
    };
    let total: usize = parts.iter().map(|p| p.len()).sum();
    let mut out = ResultSet::empty(first.columns.clone());
    out.rows.reserve(total);
    let key_idx = first.column_index(key_column);
    let mut seen: HashSet<MergeKey> = HashSet::with_capacity(total);

    for part in parts {
        if part.columns != out.columns {
            debug_assert!(false, "merge of heterogeneous results");
            continue;
        }
        for row in &part.rows {
            match key_idx {
                Some(k) => {
                    if seen.insert(MergeKey::of(&row[k])) {
                        out.rows.push(row.clone());
                    }
                }
                None => out.rows.push(row.clone()),
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs(ids: &[i64]) -> ResultSet {
        ResultSet {
            columns: vec!["objID".into(), "v".into()],
            rows: ids
                .iter()
                .map(|i| vec![Value::Int(*i), Value::Float(*i as f64)])
                .collect(),
        }
    }

    #[test]
    fn dedups_across_parts() {
        let a = rs(&[1, 2, 3]);
        let b = rs(&[3, 4]);
        let c = rs(&[4, 5, 1]);
        let merged = merge_results("objID", &[&a, &b, &c]);
        let ids: Vec<i64> = merged.rows.iter().map(|r| r[0].as_i64().unwrap()).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn missing_key_column_concatenates() {
        let a = rs(&[1]);
        let b = rs(&[1]);
        let merged = merge_results("nope", &[&a, &b]);
        assert_eq!(merged.len(), 2);
    }

    #[test]
    fn empty_inputs() {
        assert!(merge_results("objID", &[]).is_empty());
        let empty = ResultSet::empty(vec!["objID".into(), "v".into()]);
        let merged = merge_results("objID", &[&empty, &rs(&[7])]);
        assert_eq!(merged.len(), 1);
    }
}
