//! # funcproxy — template-based proxy caching for table-valued functions
//!
//! This crate is the primary contribution of Luo & Xue's *function proxy*
//! paper: a web proxy that caches the results of **function-embedded
//! queries** (SQL queries calling table-valued functions, like SkyServer's
//! Radial search) and answers new queries from previously cached ones by
//! reasoning about the **spatial regions** the functions select.
//!
//! ## How a request flows
//!
//! 1. An HTTP form request (`/search/radial?ra=185&dec=1.5&radius=30`)
//!    arrives. The [`template::TemplateManager`] looks up the registered
//!    **information file** for that form, binds the form fields to the
//!    form's **function-embedded query template**, and uses the embedded
//!    function's **function template** (an XML description of its spatial
//!    semantics, paper Fig. 3) to build the query's [`fp_geometry::Region`].
//! 2. The [`proxy::FunctionProxy`] classifies the new query against the
//!    **cache description** (array or R-tree over cached query regions):
//!    exact match / contained / region containment / overlapping /
//!    disjoint.
//! 3. Depending on the configured [`schemes::Scheme`], the proxy serves
//!    the result from the cache (local spatial selection over cached
//!    tuples), synthesizes a **remainder query** for the origin site's SQL
//!    endpoint and merges, or simply forwards the query.
//!
//! ## Crate layout
//!
//! * [`template`] — function templates, query templates, info files.
//! * [`cache`] — the result store with size-bounded LRU replacement and
//!   the two cache-description implementations (ACNR array / ACR R-tree).
//! * [`query`] — relationship classification, local evaluation of subsumed
//!   queries, remainder-query synthesis, result merging.
//! * [`schemes`] — the five caching schemes of the paper's evaluation
//!   (no-cache, passive, and the three active variants).
//! * [`origin`] — the origin-site abstraction (in-process synthetic
//!   SkyServer, or any callback).
//! * [`sim`] — the WAN/server cost model that converts execution
//!   statistics into simulated milliseconds.
//! * [`proxy`] — the proxy itself, plus per-query [`metrics`].
//! * [`runtime`] — the concurrent front: sharded cache locks,
//!   single-flight origin coalescing, and the `Arc`-cloneable
//!   [`runtime::ProxyHandle`] served by the threaded HTTP server.
//! * [`resilience`] — the fault-tolerant fetch path: deadlines,
//!   retry/backoff, the per-origin circuit breaker, and the chaos
//!   injection harness behind degraded serving.
//! * [`lifecycle`] — cache freshness and durability: per-template TTLs,
//!   data-release epochs, stale-while-revalidate / stale-if-error
//!   serving windows, and crash-safe cache snapshots.
//! * [`observe`] — per-phase latency histograms, outcome-class latency
//!   distributions, and sampled trace spans behind the `/metrics` and
//!   `/debug/trace` endpoints.
//! * [`cluster`] — the proxy fleet: residual keys slot-sharded across
//!   N nodes by rendezvous hashing, SWIM-style gossip membership with
//!   failure detection on the injectable clock, and peer-assisted
//!   misses that probe the owning node's cache before paying for
//!   origin traffic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod config;
pub mod lifecycle;
pub mod metrics;
pub mod observe;
pub mod origin;
pub mod proxy;
pub mod query;
pub mod resilience;
pub mod runtime;
pub mod schemes;
pub mod sim;
pub mod template;

pub use cache::{ProfitEstimate, ProfitModel, ProfitParams};
pub use cluster::{ClusterConfig, ClusterResponse, ClusterRouter, NodeId, ServedBy};
pub use config::{ProxyConfig, SchemeChoice};
pub use lifecycle::{Freshness, LifecycleConfig, SnapshotPolicy};
pub use observe::{LatencySummary, ObserveConfig, Observer};
pub use origin::{CountingOrigin, Origin, OriginError, SiteOrigin};
pub use proxy::FunctionProxy;
pub use resilience::{ChaosOrigin, Fault, ResilienceConfig, ResilientOrigin};
pub use runtime::{ProxyHandle, XmlResponse};
pub use schemes::Scheme;
pub use sim::CostModel;

/// Errors surfaced by the proxy.
///
/// `Clone` so single-flight leaders can publish one failure to every
/// coalesced follower.
#[derive(Debug, Clone)]
pub enum ProxyError {
    /// The request did not match any registered form or template.
    UnknownForm(String),
    /// A form field was missing or malformed.
    BadRequest(String),
    /// Template registration problems (bad XML/SQL, inconsistent shapes).
    Template(String),
    /// The origin site failed.
    Origin(OriginError),
}

impl std::fmt::Display for ProxyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProxyError::UnknownForm(p) => write!(f, "no registered form at `{p}`"),
            ProxyError::BadRequest(m) => write!(f, "bad request: {m}"),
            ProxyError::Template(m) => write!(f, "template error: {m}"),
            ProxyError::Origin(e) => write!(f, "origin error: {e}"),
        }
    }
}

impl std::error::Error for ProxyError {}

impl From<OriginError> for ProxyError {
    fn from(e: OriginError) -> Self {
        ProxyError::Origin(e)
    }
}
