//! Structured trace spans: sampled, ring-buffered, reconstructable into
//! a single query's full timeline.
//!
//! A request opens a *trace* with [`SpanRecorder::begin_trace`]; 1 in
//! `sample_every` requests is sampled and gets a nonzero trace id,
//! stored in a thread-local for the duration of the request (restored
//! by the returned guard, so nested traces and pooled threads behave).
//! Every instrumented site then calls [`SpanRecorder::record`], which
//! on a *non-sampled* request is two thread-local reads and a return —
//! no allocation, no lock, no atomic. Sampled spans land in a mutexed
//! ring buffer that overwrites the oldest span when full, so the
//! recorder is bounded regardless of uptime.
//!
//! Background work (revalidation threads, single-flight leaders working
//! for followers) opens its own trace, so its spans carry their own
//! trace ids; the chrome://tracing export groups by thread and labels
//! each slice with its trace id, which is what lets a timeline be
//! stitched back together.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

thread_local! {
    /// The active trace id on this thread; 0 = not sampled.
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
    /// Small dense per-thread tag for the trace export (0 = unassigned).
    static THREAD_TAG: Cell<u64> = const { Cell::new(0) };
}

static NEXT_THREAD_TAG: AtomicU64 = AtomicU64::new(1);

fn thread_tag() -> u64 {
    THREAD_TAG.with(|tag| {
        let v = tag.get();
        if v != 0 {
            v
        } else {
            let fresh = NEXT_THREAD_TAG.fetch_add(1, Ordering::Relaxed);
            tag.set(fresh);
            fresh
        }
    })
}

/// True when the calling thread is inside a sampled trace — lets
/// callers skip even the cost of *preparing* span arguments.
pub fn trace_active() -> bool {
    CURRENT_TRACE.with(|t| t.get() != 0)
}

/// One completed span of a sampled trace.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Which sampled trace this span belongs to (≥ 1).
    pub trace_id: u64,
    /// Dense tag of the recording thread.
    pub thread: u64,
    /// Span name, e.g. `request` or `origin.fetch`.
    pub name: &'static str,
    /// Coarse category for trace-viewer filtering, e.g. `proxy`.
    pub category: &'static str,
    /// Start, microseconds since the recorder was built.
    pub start_us: u64,
    /// Duration, microseconds.
    pub duration_us: u64,
    /// Optional free-form detail (outcome label, attempt number…).
    pub detail: Option<String>,
}

struct Ring {
    buf: Vec<SpanRecord>,
    /// Next overwrite position once `buf` has reached capacity.
    next: usize,
}

/// Restores the thread's previous trace id when dropped. Hold it for
/// the duration of the request being traced.
#[must_use = "dropping the guard ends the trace scope"]
pub struct TraceGuard {
    prev: u64,
    /// The id this guard installed (0 = this request is not sampled).
    id: u64,
}

impl TraceGuard {
    /// The trace id this guard installed; 0 means not sampled.
    pub fn trace_id(&self) -> u64 {
        self.id
    }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|t| t.set(self.prev));
    }
}

/// The sampled, bounded span sink (see the module docs).
pub struct SpanRecorder {
    epoch: Instant,
    sample_every: u64,
    capacity: usize,
    tick: AtomicU64,
    next_trace_id: AtomicU64,
    ring: Mutex<Ring>,
}

impl SpanRecorder {
    /// A recorder sampling 1 in `sample_every` traces (0 disables
    /// sampling entirely) into a ring of `capacity` spans.
    pub fn new(sample_every: u64, capacity: usize) -> Self {
        SpanRecorder {
            epoch: Instant::now(),
            sample_every,
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            next_trace_id: AtomicU64::new(1),
            ring: Mutex::new(Ring {
                buf: Vec::new(),
                next: 0,
            }),
        }
    }

    /// Starts a trace scope on the calling thread. Every
    /// `sample_every`-th call is sampled; the rest install trace id 0,
    /// making all span recording inside the scope free.
    pub fn begin_trace(&self) -> TraceGuard {
        let sampled = self.sample_every > 0
            && self
                .tick
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(self.sample_every);
        let id = if sampled {
            self.next_trace_id.fetch_add(1, Ordering::Relaxed)
        } else {
            0
        };
        let prev = CURRENT_TRACE.with(|t| t.replace(id));
        TraceGuard { prev, id }
    }

    /// Records a completed span into the active trace. On a non-sampled
    /// request this is a thread-local read and a return; `detail` is
    /// only invoked when the span is actually kept, so argument
    /// formatting costs nothing on the hot path.
    #[inline]
    pub fn record(
        &self,
        name: &'static str,
        category: &'static str,
        start: Instant,
        duration: Duration,
        detail: impl FnOnce() -> Option<String>,
    ) {
        let trace_id = CURRENT_TRACE.with(|t| t.get());
        if trace_id == 0 {
            return;
        }
        let record = SpanRecord {
            trace_id,
            thread: thread_tag(),
            name,
            category,
            start_us: start.saturating_duration_since(self.epoch).as_micros() as u64,
            duration_us: duration.as_micros() as u64,
            detail: detail(),
        };
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.buf.len() < self.capacity {
            ring.buf.push(record);
        } else {
            let at = ring.next;
            ring.buf[at] = record;
            ring.next = (at + 1) % self.capacity;
        }
    }

    /// Number of traces sampled so far.
    pub fn traces_sampled(&self) -> u64 {
        self.next_trace_id.load(Ordering::Relaxed) - 1
    }

    /// Spans currently buffered, oldest first.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::with_capacity(ring.buf.len());
        out.extend_from_slice(&ring.buf[ring.next..]);
        out.extend_from_slice(&ring.buf[..ring.next]);
        out
    }

    /// The buffered spans as a chrome://tracing JSON document (load it
    /// in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev):
    /// complete `"ph":"X"` events, one row per thread, each slice
    /// labelled with its trace id).
    pub fn chrome_json(&self) -> String {
        let spans = self.snapshot();
        let mut out = String::with_capacity(64 + spans.len() * 128);
        out.push_str("{\"traceEvents\":[");
        for (i, s) in spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json(s.name, &mut out);
            out.push_str("\",\"cat\":\"");
            escape_json(s.category, &mut out);
            out.push_str("\",\"ph\":\"X\",\"pid\":1,\"tid\":");
            out.push_str(&s.thread.to_string());
            out.push_str(",\"ts\":");
            out.push_str(&s.start_us.to_string());
            out.push_str(",\"dur\":");
            out.push_str(&s.duration_us.to_string());
            out.push_str(",\"args\":{\"trace\":");
            out.push_str(&s.trace_id.to_string());
            if let Some(detail) = &s.detail {
                out.push_str(",\"detail\":\"");
                escape_json(detail, &mut out);
                out.push('"');
            }
            out.push_str("}}");
        }
        out.push_str("]}");
        out
    }

    /// The buffered spans as JSON Lines — one span object per line,
    /// convenient for `grep`/`jq` pipelines.
    pub fn jsonl(&self) -> String {
        let spans = self.snapshot();
        let mut out = String::with_capacity(spans.len() * 128);
        for s in &spans {
            out.push_str("{\"trace\":");
            out.push_str(&s.trace_id.to_string());
            out.push_str(",\"thread\":");
            out.push_str(&s.thread.to_string());
            out.push_str(",\"name\":\"");
            escape_json(s.name, &mut out);
            out.push_str("\",\"cat\":\"");
            escape_json(s.category, &mut out);
            out.push_str("\",\"start_us\":");
            out.push_str(&s.start_us.to_string());
            out.push_str(",\"dur_us\":");
            out.push_str(&s.duration_us.to_string());
            if let Some(detail) = &s.detail {
                out.push_str(",\"detail\":\"");
                escape_json(detail, &mut out);
                out.push('"');
            }
            out.push_str("}\n");
        }
        out
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars) —
/// the core crate deliberately has no JSON dependency.
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unsampled_traces_record_nothing_and_skip_detail() {
        let rec = SpanRecorder::new(2, 16); // samples ticks 0, 2, 4…
        let _first = rec.begin_trace(); // tick 0: sampled
        drop(_first);
        let guard = rec.begin_trace(); // tick 1: not sampled
        assert_eq!(guard.trace_id(), 0);
        assert!(!trace_active());
        let start = Instant::now();
        rec.record("x", "t", start, Duration::from_micros(5), || {
            panic!("detail must not be evaluated on the non-sampled path")
        });
        drop(guard);
        assert!(rec.snapshot().is_empty());
    }

    #[test]
    fn sampled_spans_carry_the_trace_id_and_guard_restores() {
        let rec = SpanRecorder::new(1, 16);
        let outer = rec.begin_trace();
        let outer_id = outer.trace_id();
        assert!(outer_id >= 1);
        assert!(trace_active());
        let start = Instant::now();
        rec.record("request", "proxy", start, Duration::from_micros(7), || {
            Some("exact".into())
        });
        {
            let inner = rec.begin_trace();
            assert_ne!(inner.trace_id(), outer_id, "nested scope gets its own id");
        }
        // Guard dropped: back to the outer trace.
        rec.record("after", "proxy", start, Duration::ZERO, || None);
        drop(outer);
        assert!(!trace_active());
        let spans = rec.snapshot();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].trace_id, outer_id);
        assert_eq!(spans[1].trace_id, outer_id);
        assert_eq!(spans[0].detail.as_deref(), Some("exact"));
        assert_eq!(rec.traces_sampled(), 2);
    }

    #[test]
    fn ring_overwrites_oldest_and_exports_in_order() {
        let rec = SpanRecorder::new(1, 3);
        let names: [&'static str; 5] = ["a", "b", "c", "d", "e"];
        let _g = rec.begin_trace();
        let start = Instant::now();
        for name in names {
            rec.record(name, "t", start, Duration::ZERO, || None);
        }
        let kept: Vec<&str> = rec.snapshot().iter().map(|s| s.name).collect();
        assert_eq!(kept, vec!["c", "d", "e"], "oldest spans were overwritten");
    }

    #[test]
    fn exports_are_valid_shapes_and_escape_strings() {
        let rec = SpanRecorder::new(1, 8);
        let _g = rec.begin_trace();
        rec.record("q", "t", Instant::now(), Duration::from_micros(3), || {
            Some("say \"hi\"\n".into())
        });
        let chrome = rec.chrome_json();
        assert!(chrome.starts_with("{\"traceEvents\":["));
        assert!(chrome.ends_with("]}"));
        assert!(chrome.contains("\\\"hi\\\"\\n"), "escaped: {chrome}");
        assert!(chrome.contains("\"ph\":\"X\""));
        let jsonl = rec.jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("\"dur_us\":3"));
    }

    #[test]
    fn sampling_disabled_samples_nothing() {
        let rec = SpanRecorder::new(0, 8);
        for _ in 0..10 {
            let g = rec.begin_trace();
            assert_eq!(g.trace_id(), 0);
        }
        assert_eq!(rec.traces_sampled(), 0);
    }
}
