//! Lock-free log-bucketed latency histograms.
//!
//! HDR-style layout over nanoseconds: values below 64 ns get one bucket
//! each (exact), and every power-of-two octave above that is split into
//! 64 sub-buckets, so a bucket's width is always at most 1/64 of its
//! lower bound. Reporting the bucket midpoint therefore bounds the
//! relative quantile error at 1/128 ≈ 0.8 % — "about 1 %" — uniformly
//! from sub-microsecond lock waits to multi-second origin outages
//! (values clamp at 2⁴²−1 ns ≈ 73 min).
//!
//! Recording is one atomic add into a fixed array — wait-free, no
//! allocation, safe from any thread. Merging is bucket-wise addition,
//! which makes per-shard histograms *exactly* equivalent to one global
//! histogram fed the same samples (pinned by `tests/
//! prop_histogram_merge.rs`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// log2 of the sub-bucket count per octave.
const SUB_BITS: u32 = 6;
/// Sub-buckets per octave (and the number of exact low buckets).
const SUB: usize = 1 << SUB_BITS;
/// Highest octave tracked; values at or above 2^(MAX_OCTAVE+1) clamp.
const MAX_OCTAVE: u32 = 41;
/// Octaves that get sub-bucketed: [SUB_BITS, MAX_OCTAVE].
const GROUPS: usize = (MAX_OCTAVE - SUB_BITS + 1) as usize;
/// Total bucket count: 64 exact + 36 octaves × 64 sub-buckets.
pub const NUM_BUCKETS: usize = SUB + GROUPS * SUB;
/// Largest representable sample, in nanoseconds.
pub const MAX_NS: u64 = (1u64 << (MAX_OCTAVE + 1)) - 1;

/// Bucket index for a nanosecond value (clamped to [`MAX_NS`]).
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    let v = ns.min(MAX_NS);
    if v < SUB as u64 {
        v as usize
    } else {
        let octave = 63 - v.leading_zeros();
        let group = (octave - SUB_BITS) as usize;
        let sub = ((v >> (octave - SUB_BITS)) as usize) & (SUB - 1);
        SUB + group * SUB + sub
    }
}

/// Inclusive lower bound of bucket `index`, in nanoseconds.
#[inline]
pub fn bucket_lower(index: usize) -> u64 {
    if index < SUB {
        index as u64
    } else {
        let group = (index - SUB) / SUB;
        let sub = ((index - SUB) % SUB) as u64;
        let octave = group as u32 + SUB_BITS;
        (1u64 << octave) + (sub << (octave - SUB_BITS))
    }
}

/// Width of bucket `index`, in nanoseconds (≥ 1).
#[inline]
pub fn bucket_width(index: usize) -> u64 {
    if index < SUB {
        1
    } else {
        1u64 << ((index - SUB) / SUB)
    }
}

/// Midpoint of bucket `index` — the value quantiles report for samples
/// landing in it.
#[inline]
fn bucket_midpoint_ns(index: usize) -> f64 {
    bucket_lower(index) as f64 + (bucket_width(index) as f64 - 1.0) / 2.0
}

/// A wait-free, mergeable latency histogram (see the module docs for
/// the bucket scheme).
pub struct LatencyHistogram {
    buckets: Box<[AtomicU64]>,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample, in nanoseconds. One relaxed atomic add into
    /// a fixed slot plus one into the running sum — never blocks,
    /// never allocates.
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        let clamped = ns.min(MAX_NS);
        self.buckets[bucket_index(clamped)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(clamped, Ordering::Relaxed);
    }

    /// Records one sample given in (possibly fractional) milliseconds —
    /// the unit the runtime's timing segments use. Negative values
    /// clamp to zero.
    #[inline]
    pub fn record_ms(&self, ms: f64) {
        self.record_ns((ms * 1e6).max(0.0) as u64);
    }

    /// Records one sample given as a [`Duration`].
    #[inline]
    pub fn record(&self, elapsed: Duration) {
        self.record_ns(elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
    }

    /// Total samples recorded so far.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Adds every bucket of `other` into `self` — the shard-merge
    /// operation. Concurrent recording on either side is fine; the
    /// merge is per-bucket atomic, not a consistent cut.
    pub fn merge_from(&self, other: &LatencyHistogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy for quantile queries and rendering.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// An owned copy of a [`LatencyHistogram`]'s buckets, for quantile
/// queries, merging and rendering without touching the live atomics.
#[derive(Debug, Clone, Default)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u64,
}

impl HistogramSnapshot {
    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, in seconds (Prometheus `_sum` convention).
    pub fn sum_seconds(&self) -> f64 {
        self.sum_ns as f64 / 1e9
    }

    /// Mean sample, in milliseconds (0 when empty).
    pub fn mean_ms(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64 / 1e6
        }
    }

    /// Folds `other`'s buckets into this snapshot.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        if self.buckets.is_empty() {
            self.buckets = vec![0; NUM_BUCKETS];
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }

    /// The `q`-quantile (`0 < q ≤ 1`), in milliseconds, by nearest
    /// rank: the midpoint of the bucket holding the ⌈q·count⌉-th
    /// smallest sample. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_midpoint_ns(index) / 1e6;
            }
        }
        bucket_midpoint_ns(NUM_BUCKETS - 1) / 1e6
    }

    /// Samples at or below `le_ns` — the Prometheus cumulative-bucket
    /// count. A histogram bucket is counted when it lies entirely at or
    /// below the boundary, so boundary-straddling buckets undercount by
    /// at most one bucket width (≤ 1/64 of the boundary).
    pub fn cumulative_le_ns(&self, le_ns: u64) -> u64 {
        let mut total = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if bucket_lower(index) + bucket_width(index) - 1 <= le_ns {
                total += n;
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_roundtrip_covers_the_range() {
        // Every bucket's lower bound maps back to that bucket, buckets
        // tile the axis in order, and the clamp lands in the last one.
        let mut prev_end = 0u64;
        for index in 0..NUM_BUCKETS {
            let lower = bucket_lower(index);
            let width = bucket_width(index);
            assert_eq!(bucket_index(lower), index, "lower bound of {index}");
            assert_eq!(
                bucket_index(lower + width - 1),
                index,
                "upper bound of {index}"
            );
            if index > 0 {
                assert_eq!(lower, prev_end, "buckets tile with no gaps");
            }
            prev_end = lower + width;
        }
        assert_eq!(prev_end, MAX_NS + 1, "the last bucket ends at the clamp");
        assert_eq!(bucket_index(MAX_NS), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn relative_error_is_bounded_by_one_percent() {
        // For any value ≥ 64 ns, the reported midpoint differs from the
        // true value by at most half a bucket width ≤ lower/128.
        for ns in [64, 100, 999, 12_345, 1_000_000, 987_654_321, MAX_NS] {
            let index = bucket_index(ns);
            let mid = bucket_midpoint_ns(index);
            let err = (mid - ns as f64).abs() / ns as f64;
            assert!(err <= 1.0 / 128.0, "error {err} at {ns} ns");
        }
        // Below 64 ns the buckets are exact.
        for ns in 0..64 {
            assert_eq!(bucket_midpoint_ns(bucket_index(ns)), ns as f64);
        }
    }

    #[test]
    fn quantiles_track_known_distributions() {
        let h = LatencyHistogram::new();
        for ms in 1..=100 {
            h.record_ms(ms as f64);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        // Nearest rank: p50 is the 50th sample = 50 ms, within bucket error.
        for (q, expect) in [(0.5, 50.0), (0.9, 90.0), (0.99, 99.0), (1.0, 100.0)] {
            let got = snap.quantile(q);
            let err = (got - expect).abs() / expect;
            assert!(err <= 0.01, "q={q}: got {got}, want ≈{expect}");
        }
        assert!((snap.mean_ms() - 50.5).abs() < 0.5);
    }

    #[test]
    fn merge_equals_single_feed() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let global = LatencyHistogram::new();
        for i in 0..1_000u64 {
            let ns = i * i * 37 + 5;
            global.record_ns(ns);
            if i % 2 == 0 { &a } else { &b }.record_ns(ns);
        }
        let merged = LatencyHistogram::new();
        merged.merge_from(&a);
        merged.merge_from(&b);
        let (m, g) = (merged.snapshot(), global.snapshot());
        assert_eq!(m.count(), g.count());
        for q in [0.5, 0.9, 0.99, 0.999] {
            assert_eq!(m.quantile(q), g.quantile(q), "quantile {q}");
        }
        assert_eq!(m.sum_seconds(), g.sum_seconds());
    }

    #[test]
    fn cumulative_le_counts_whole_buckets() {
        let h = LatencyHistogram::new();
        h.record_ns(10);
        h.record_ns(1_000);
        h.record_ns(2_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.cumulative_le_ns(9), 0);
        assert_eq!(snap.cumulative_le_ns(10), 1);
        assert_eq!(snap.cumulative_le_ns(100_000), 2);
        assert_eq!(snap.cumulative_le_ns(MAX_NS), 3);
    }
}
