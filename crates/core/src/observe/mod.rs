//! Observability: per-phase latency histograms, outcome-class latency
//! histograms, and sampled structured trace spans (DESIGN.md §11).
//!
//! The proxy's evaluation story is a latency story, so this layer makes
//! latency *distributions* — not just counters — a first-class,
//! always-on output. Recording sites pay one wait-free atomic add per
//! phase ([`hist::LatencyHistogram`]); traces are sampled so the
//! non-sampled request pays nothing beyond a thread-local read
//! ([`span::SpanRecorder`]). Everything is exported three ways: merged
//! quantiles in [`crate::runtime::RuntimeSnapshot`], Prometheus text
//! via [`Observer::render_prometheus`], and chrome://tracing / JSONL
//! span dumps.

pub mod hist;
pub mod span;

pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use span::{trace_active, SpanRecord, SpanRecorder, TraceGuard};

use crate::metrics::Outcome;
use serde::Serialize;
use std::time::{Duration, Instant};

/// The phases of a request's lifecycle that get their own latency
/// histogram (each crossed with [`PathClass`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Template matching + cache relationship classification.
    Classify,
    /// Local evaluation against cached entries: micro-index pruning,
    /// containment selection, overlap filtering, merge assembly.
    LocalEval,
    /// A blocking origin round trip (excluding backoff waits).
    OriginFetch,
    /// Time spent sleeping between origin retries.
    BackoffWait,
    /// XML result-document serialization / assembly.
    Serialize,
    /// Writing cache snapshot files.
    SnapshotWrite,
    /// Recovering cache snapshot files at startup.
    SnapshotRecover,
    /// Waiting to acquire a cache shard lock.
    LockWait,
    /// Edge reactor: accepting a connection (accept syscall to
    /// registered-with-epoll).
    Accept,
    /// Edge reactor: incremental HTTP request parsing (first byte of a
    /// request head to a complete parsed request).
    Parse,
    /// Edge: time a request spent in the bounded pending queue before a
    /// worker picked it up.
    QueueWait,
    /// Edge: time a finished response waited for the reactor to collect
    /// it from the completion queue (worker push to reactor drain).
    Handoff,
    /// Serving a hit from the disk tier: slab slice + row splice from
    /// the mmap'd segment (excludes the background promotion).
    DiskServe,
    /// Cluster: probing the slot owner's cache on a local miss
    /// (transport round trip including the retry, hit or not).
    PeerProbe,
}

impl Phase {
    /// Every phase, in rendering order.
    pub const ALL: [Phase; 14] = [
        Phase::Classify,
        Phase::LocalEval,
        Phase::OriginFetch,
        Phase::BackoffWait,
        Phase::Serialize,
        Phase::SnapshotWrite,
        Phase::SnapshotRecover,
        Phase::LockWait,
        Phase::Accept,
        Phase::Parse,
        Phase::QueueWait,
        Phase::Handoff,
        Phase::DiskServe,
        Phase::PeerProbe,
    ];

    /// Stable snake_case label used in metric labels and JSON.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Classify => "classify",
            Phase::LocalEval => "local_eval",
            Phase::OriginFetch => "origin_fetch",
            Phase::BackoffWait => "backoff_wait",
            Phase::Serialize => "serialize",
            Phase::SnapshotWrite => "snapshot_write",
            Phase::SnapshotRecover => "snapshot_recover",
            Phase::LockWait => "lock_wait",
            Phase::Accept => "accept",
            Phase::Parse => "parse",
            Phase::QueueWait => "queue_wait",
            Phase::Handoff => "handoff",
            Phase::DiskServe => "disk_serve",
            Phase::PeerProbe => "peer_probe",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Classify => 0,
            Phase::LocalEval => 1,
            Phase::OriginFetch => 2,
            Phase::BackoffWait => 3,
            Phase::Serialize => 4,
            Phase::SnapshotWrite => 5,
            Phase::SnapshotRecover => 6,
            Phase::LockWait => 7,
            Phase::Accept => 8,
            Phase::Parse => 9,
            Phase::QueueWait => 10,
            Phase::Handoff => 11,
            Phase::DiskServe => 12,
            Phase::PeerProbe => 13,
        }
    }
}

/// Which serving path a phase sample was recorded on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathClass {
    /// Served from cache (exact or contained hit).
    Hit,
    /// Needed the origin (overlap, region merge, forward, degraded).
    Miss,
    /// Off the request path: revalidation threads, snapshot writes.
    Background,
}

impl PathClass {
    /// Every path class, in rendering order.
    pub const ALL: [PathClass; 3] = [PathClass::Hit, PathClass::Miss, PathClass::Background];

    /// Stable label used in metric labels and JSON.
    pub fn label(self) -> &'static str {
        match self {
            PathClass::Hit => "hit",
            PathClass::Miss => "miss",
            PathClass::Background => "background",
        }
    }

    fn index(self) -> usize {
        match self {
            PathClass::Hit => 0,
            PathClass::Miss => 1,
            PathClass::Background => 2,
        }
    }
}

/// End-to-end outcome classes, one latency histogram each. Unlike
/// [`Outcome`] this folds in the serving *condition*: a degraded
/// answer is `Degraded` whatever its cache relationship, and a stale
/// (but complete) answer is `Stale`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeClass {
    /// Fresh exact hit.
    Exact,
    /// Fresh contained hit.
    Contained,
    /// Region-containment merge (remainder fetched).
    Region,
    /// Overlap merge (remainder fetched).
    Overlap,
    /// Full forward to the origin.
    Miss,
    /// Served incomplete because the origin is down.
    Degraded,
    /// Served complete but past its TTL.
    Stale,
}

impl OutcomeClass {
    /// Every class, in rendering order.
    pub const ALL: [OutcomeClass; 7] = [
        OutcomeClass::Exact,
        OutcomeClass::Contained,
        OutcomeClass::Region,
        OutcomeClass::Overlap,
        OutcomeClass::Miss,
        OutcomeClass::Degraded,
        OutcomeClass::Stale,
    ];

    /// Stable label used in metric labels and JSON.
    pub fn label(self) -> &'static str {
        match self {
            OutcomeClass::Exact => "exact",
            OutcomeClass::Contained => "contained",
            OutcomeClass::Region => "region",
            OutcomeClass::Overlap => "overlap",
            OutcomeClass::Miss => "miss",
            OutcomeClass::Degraded => "degraded",
            OutcomeClass::Stale => "stale",
        }
    }

    /// Classifies a served response. Degraded wins over stale wins over
    /// the cache relationship: the operator-facing class is the worst
    /// thing true of the answer.
    pub fn of(outcome: Outcome, degraded: bool, stale: bool) -> OutcomeClass {
        if degraded {
            OutcomeClass::Degraded
        } else if stale {
            OutcomeClass::Stale
        } else {
            match outcome {
                Outcome::Exact => OutcomeClass::Exact,
                Outcome::Contained => OutcomeClass::Contained,
                Outcome::RegionContainment => OutcomeClass::Region,
                Outcome::Overlap => OutcomeClass::Overlap,
                Outcome::Forwarded => OutcomeClass::Miss,
            }
        }
    }

    fn index(self) -> usize {
        match self {
            OutcomeClass::Exact => 0,
            OutcomeClass::Contained => 1,
            OutcomeClass::Region => 2,
            OutcomeClass::Overlap => 3,
            OutcomeClass::Miss => 4,
            OutcomeClass::Degraded => 5,
            OutcomeClass::Stale => 6,
        }
    }
}

/// Tuning for the observe layer; the defaults are always-on safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObserveConfig {
    /// Sample 1 in `sample_every` requests for span tracing (0 turns
    /// tracing off; histograms are unaffected — they are always on).
    pub sample_every: u64,
    /// Ring-buffer capacity for retained spans.
    pub span_capacity: usize,
}

impl Default for ObserveConfig {
    fn default() -> Self {
        ObserveConfig {
            sample_every: 16,
            span_capacity: 4096,
        }
    }
}

impl ObserveConfig {
    /// Sets the trace sampling rate (1 in `n`; 0 disables tracing).
    pub fn with_sample_every(mut self, n: u64) -> Self {
        self.sample_every = n;
        self
    }

    /// Sets the span ring-buffer capacity.
    pub fn with_span_capacity(mut self, capacity: usize) -> Self {
        self.span_capacity = capacity;
        self
    }
}

/// Quantiles of one latency distribution, in milliseconds — the compact
/// form carried by [`crate::runtime::RuntimeSnapshot`] and the bench
/// reports. Nearest-rank over histogram buckets, so each value is
/// within ~1 % of the true sample quantile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize)]
pub struct LatencySummary {
    /// Samples behind the quantiles.
    pub count: u64,
    /// Median, ms.
    pub p50_ms: f64,
    /// 90th percentile, ms.
    pub p90_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// 99.9th percentile, ms.
    pub p999_ms: f64,
}

impl LatencySummary {
    /// Summarizes a histogram snapshot.
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Self {
        LatencySummary {
            count: snap.count(),
            p50_ms: snap.quantile(0.5),
            p90_ms: snap.quantile(0.9),
            p99_ms: snap.quantile(0.99),
            p999_ms: snap.quantile(0.999),
        }
    }
}

/// Cumulative upper bounds (seconds) for the Prometheus rendering —
/// 50 µs to 10 s, roughly 1-2.5-5 per decade.
const LE_BOUNDS: [(f64, &str); 17] = [
    (0.00005, "0.00005"),
    (0.0001, "0.0001"),
    (0.00025, "0.00025"),
    (0.0005, "0.0005"),
    (0.001, "0.001"),
    (0.0025, "0.0025"),
    (0.005, "0.005"),
    (0.01, "0.01"),
    (0.025, "0.025"),
    (0.05, "0.05"),
    (0.1, "0.1"),
    (0.25, "0.25"),
    (0.5, "0.5"),
    (1.0, "1"),
    (2.5, "2.5"),
    (5.0, "5"),
    (10.0, "10"),
];

/// The per-handle observability hub: owns every histogram and the span
/// recorder. Shared via `Arc` between the runtime, the resilience
/// layer, and background threads; all methods take `&self` and are
/// safe (and wait-free, for histograms) from any thread.
pub struct Observer {
    phases: Vec<LatencyHistogram>,
    outcomes: Vec<LatencyHistogram>,
    spans: SpanRecorder,
}

impl Observer {
    /// Builds an observer per `config`.
    pub fn new(config: &ObserveConfig) -> Self {
        Observer {
            phases: (0..Phase::ALL.len() * PathClass::ALL.len())
                .map(|_| LatencyHistogram::new())
                .collect(),
            outcomes: (0..OutcomeClass::ALL.len())
                .map(|_| LatencyHistogram::new())
                .collect(),
            spans: SpanRecorder::new(config.sample_every, config.span_capacity),
        }
    }

    /// The histogram for one (phase, path) cell.
    pub fn phase_histogram(&self, phase: Phase, path: PathClass) -> &LatencyHistogram {
        &self.phases[phase.index() * PathClass::ALL.len() + path.index()]
    }

    /// The end-to-end latency histogram for one outcome class.
    pub fn outcome_histogram(&self, class: OutcomeClass) -> &LatencyHistogram {
        &self.outcomes[class.index()]
    }

    /// Records one phase sample, in milliseconds.
    #[inline]
    pub fn record_phase(&self, phase: Phase, path: PathClass, ms: f64) {
        self.phase_histogram(phase, path).record_ms(ms);
    }

    /// Records one served request's end-to-end latency, in ms.
    #[inline]
    pub fn record_outcome(&self, class: OutcomeClass, ms: f64) {
        self.outcome_histogram(class).record_ms(ms);
    }

    /// Opens a trace scope on this thread (see [`SpanRecorder`]).
    #[inline]
    pub fn begin_trace(&self) -> TraceGuard {
        self.spans.begin_trace()
    }

    /// Records a completed span into the active trace; free when the
    /// request is not sampled.
    #[inline]
    pub fn span(
        &self,
        name: &'static str,
        category: &'static str,
        start: Instant,
        duration: Duration,
        detail: impl FnOnce() -> Option<String>,
    ) {
        self.spans.record(name, category, start, duration, detail);
    }

    /// The span recorder, for exports.
    pub fn spans(&self) -> &SpanRecorder {
        &self.spans
    }

    /// End-to-end latency over *all* served requests (every outcome
    /// class merged).
    pub fn request_summary(&self) -> LatencySummary {
        let mut merged = HistogramSnapshot::default();
        for class in OutcomeClass::ALL {
            merged.merge(&self.outcome_histogram(class).snapshot());
        }
        LatencySummary::from_snapshot(&merged)
    }

    /// End-to-end latency over fresh cache hits (exact + contained).
    pub fn hit_summary(&self) -> LatencySummary {
        let mut merged = self.outcome_histogram(OutcomeClass::Exact).snapshot();
        merged.merge(&self.outcome_histogram(OutcomeClass::Contained).snapshot());
        LatencySummary::from_snapshot(&merged)
    }

    /// Latency of blocking origin fetches on the request path.
    pub fn origin_fetch_summary(&self) -> LatencySummary {
        LatencySummary::from_snapshot(
            &self
                .phase_histogram(Phase::OriginFetch, PathClass::Miss)
                .snapshot(),
        )
    }

    /// Renders every histogram family in the Prometheus text
    /// exposition format (version 0.0.4):
    /// `funcproxy_phase_latency_seconds{phase,path}` and
    /// `funcproxy_request_latency_seconds{class}`. Counter families
    /// come from [`crate::runtime::RuntimeSnapshot::render_prometheus`];
    /// `ProxyHandle::metrics_text` concatenates both.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(64 * 1024);
        out.push_str(
            "# HELP funcproxy_phase_latency_seconds Latency of one request phase, \
             by serving path.\n# TYPE funcproxy_phase_latency_seconds histogram\n",
        );
        for phase in Phase::ALL {
            for path in PathClass::ALL {
                let labels = format!("phase=\"{}\",path=\"{}\"", phase.label(), path.label());
                render_histogram(
                    &mut out,
                    "funcproxy_phase_latency_seconds",
                    &labels,
                    &self.phase_histogram(phase, path).snapshot(),
                );
            }
        }
        out.push_str(
            "# HELP funcproxy_request_latency_seconds End-to-end request latency, \
             by outcome class.\n# TYPE funcproxy_request_latency_seconds histogram\n",
        );
        for class in OutcomeClass::ALL {
            let labels = format!("class=\"{}\"", class.label());
            render_histogram(
                &mut out,
                "funcproxy_request_latency_seconds",
                &labels,
                &self.outcome_histogram(class).snapshot(),
            );
        }
        out
    }
}

/// One Prometheus histogram series: cumulative `_bucket` lines over
/// [`LE_BOUNDS`] plus `_sum` and `_count`. A fine-grained internal
/// bucket is counted under a boundary only when it lies entirely at or
/// below it, so a boundary can undercount by at most 1/64 of itself.
fn render_histogram(out: &mut String, family: &str, labels: &str, snap: &HistogramSnapshot) {
    use std::fmt::Write;
    for (le_s, le_label) in LE_BOUNDS {
        let n = snap.cumulative_le_ns((le_s * 1e9) as u64);
        let _ = writeln!(out, "{family}_bucket{{{labels},le=\"{le_label}\"}} {n}");
    }
    let _ = writeln!(
        out,
        "{family}_bucket{{{labels},le=\"+Inf\"}} {}",
        snap.count()
    );
    let _ = writeln!(out, "{family}_sum{{{labels}}} {}", snap.sum_seconds());
    let _ = writeln!(out, "{family}_count{{{labels}}} {}", snap.count());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_class_folds_condition_over_relationship() {
        assert_eq!(
            OutcomeClass::of(Outcome::Exact, false, false),
            OutcomeClass::Exact
        );
        assert_eq!(
            OutcomeClass::of(Outcome::RegionContainment, false, false),
            OutcomeClass::Region
        );
        assert_eq!(
            OutcomeClass::of(Outcome::Forwarded, false, false),
            OutcomeClass::Miss
        );
        // Stale beats the relationship; degraded beats both.
        assert_eq!(
            OutcomeClass::of(Outcome::Exact, false, true),
            OutcomeClass::Stale
        );
        assert_eq!(
            OutcomeClass::of(Outcome::Overlap, true, true),
            OutcomeClass::Degraded
        );
    }

    #[test]
    fn summaries_come_from_the_right_cells() {
        let obs = Observer::new(&ObserveConfig::default());
        obs.record_outcome(OutcomeClass::Exact, 1.0);
        obs.record_outcome(OutcomeClass::Contained, 3.0);
        obs.record_outcome(OutcomeClass::Miss, 100.0);
        let hits = obs.hit_summary();
        assert_eq!(hits.count, 2);
        assert!(
            hits.p99_ms < 5.0,
            "hit p99 {} excludes the miss",
            hits.p99_ms
        );
        let all = obs.request_summary();
        assert_eq!(all.count, 3);
        assert!(
            all.p99_ms > 90.0,
            "request p99 {} sees the miss",
            all.p99_ms
        );
        obs.record_phase(Phase::OriginFetch, PathClass::Miss, 42.0);
        assert_eq!(obs.origin_fetch_summary().count, 1);
    }

    #[test]
    fn prometheus_rendering_is_well_formed_and_complete() {
        let obs = Observer::new(&ObserveConfig::default());
        obs.record_phase(Phase::Classify, PathClass::Hit, 0.02);
        obs.record_outcome(OutcomeClass::Exact, 0.2);
        let text = obs.render_prometheus();
        for family in [
            "funcproxy_phase_latency_seconds",
            "funcproxy_request_latency_seconds",
        ] {
            assert!(text.contains(&format!("# TYPE {family} histogram")));
            for suffix in ["_bucket", "_sum", "_count"] {
                assert!(text.contains(&format!("{family}{suffix}")), "{suffix}");
            }
        }
        for phase in Phase::ALL {
            assert!(text.contains(&format!("phase=\"{}\"", phase.label())));
        }
        for class in OutcomeClass::ALL {
            assert!(text.contains(&format!("class=\"{}\"", class.label())));
        }
        // Every non-comment line is `name{labels} value`.
        for line in text.lines() {
            if line.starts_with('#') {
                continue;
            }
            let (series, value) = line.rsplit_once(' ').expect("space-separated");
            assert!(series.contains('{') && series.ends_with('}'), "{line}");
            assert!(value.parse::<f64>().is_ok(), "numeric value in {line}");
        }
        // The recorded exact sample is visible under a generous bound.
        assert!(text
            .contains("funcproxy_request_latency_seconds_bucket{class=\"exact\",le=\"+Inf\"} 1"));
    }
}
