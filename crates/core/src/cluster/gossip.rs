//! Gossip state: what nodes say about each other, and the merge rules
//! that make every node's view converge.
//!
//! Each node maintains one [`GossipEntry`] per known peer (including
//! itself) and piggybacks the full digest on every ping. Conflicting
//! claims are resolved SWIM-style:
//!
//! * A **higher incarnation** always wins — incarnations are bumped
//!   only by the node itself (to refute a false suspicion, or on
//!   rejoin), so a higher number is strictly fresher information.
//! * At **equal incarnation**, the stronger status wins:
//!   `Dead > Suspect > Alive`. A node can only clear a suspicion about
//!   itself by re-announcing with a bumped incarnation.
//!
//! Two cluster-wide facts ride along on every entry so invalidation
//! and outage handling need no extra protocol:
//!
//! * the node's current **data-release epoch** (PR 4) — a node that
//!   hears of a higher epoch adopts it and retires its stale entries
//!   before serving another query, so a rejoiner with a stale cache
//!   heals on its first gossip exchange;
//! * the node's **origin circuit-breaker state** (PR 3) — peers learn
//!   the origin is struggling before their own breakers trip, and
//!   operators see fleet-wide origin pressure on any node's metrics.
//!
//! Entries cross process boundaries as one compact text line each
//! (`node:incarnation:status:epoch:breaker`), hand-parsed so the wire
//! format works over the bare `httpd` stack with no serde round trip.

use super::slots::NodeId;

/// Liveness verdict for one node, ordered by strength at equal
/// incarnation (`Alive < Suspect < Dead`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum NodeStatus {
    /// Responding to pings (directly or through an indirect probe).
    Alive,
    /// Failed a direct ping and every indirect probe; its slots have
    /// already failed over, pending confirmation or refutation.
    Suspect,
    /// Suspicion outlived the suspect timeout (or the node was declared
    /// dead by a peer with the same incarnation); slots stay failed
    /// over until the node rejoins with a higher incarnation.
    Dead,
}

impl NodeStatus {
    /// Stable label used on the wire and in metrics.
    pub fn label(self) -> &'static str {
        match self {
            NodeStatus::Alive => "alive",
            NodeStatus::Suspect => "suspect",
            NodeStatus::Dead => "dead",
        }
    }

    fn parse(s: &str) -> Option<NodeStatus> {
        match s {
            "alive" => Some(NodeStatus::Alive),
            "suspect" => Some(NodeStatus::Suspect),
            "dead" => Some(NodeStatus::Dead),
            _ => None,
        }
    }
}

/// One node's claim about one peer: the unit of gossip.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GossipEntry {
    /// Which node the claim is about.
    pub node: NodeId,
    /// The subject's incarnation number at the time of the claim.
    pub incarnation: u64,
    /// The claimed liveness.
    pub status: NodeStatus,
    /// The subject's data-release epoch, for cluster-wide invalidation.
    pub epoch: u64,
    /// Whether the subject's origin circuit breaker was open.
    pub breaker_open: bool,
}

impl GossipEntry {
    /// Whether this claim supersedes `other` (about the same node)
    /// under the SWIM precedence rules.
    pub fn supersedes(&self, other: &GossipEntry) -> bool {
        debug_assert_eq!(self.node, other.node);
        self.incarnation > other.incarnation
            || (self.incarnation == other.incarnation && self.status > other.status)
    }

    /// Encodes the entry as one wire line:
    /// `node:incarnation:status:epoch:breaker`.
    pub fn encode(&self) -> String {
        format!(
            "{}:{}:{}:{}:{}",
            self.node.0,
            self.incarnation,
            self.status.label(),
            self.epoch,
            u8::from(self.breaker_open),
        )
    }

    /// Parses one wire line; `None` on any malformed field (a damaged
    /// digest is dropped, never trusted).
    pub fn decode(line: &str) -> Option<GossipEntry> {
        let mut parts = line.trim().split(':');
        let node = NodeId(parts.next()?.parse().ok()?);
        let incarnation = parts.next()?.parse().ok()?;
        let status = NodeStatus::parse(parts.next()?)?;
        let epoch = parts.next()?.parse().ok()?;
        let breaker_open = match parts.next()? {
            "0" => false,
            "1" => true,
            _ => return None,
        };
        if parts.next().is_some() {
            return None;
        }
        Some(GossipEntry {
            node,
            incarnation,
            status,
            epoch,
            breaker_open,
        })
    }
}

/// Encodes a digest as newline-separated wire lines.
pub fn encode_digest(entries: &[GossipEntry]) -> String {
    let mut out = String::with_capacity(entries.len() * 16);
    for e in entries {
        out.push_str(&e.encode());
        out.push('\n');
    }
    out
}

/// Decodes a newline-separated digest, skipping malformed lines.
pub fn decode_digest(text: &str) -> Vec<GossipEntry> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .filter_map(GossipEntry::decode)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(node: u16, inc: u64, status: NodeStatus) -> GossipEntry {
        GossipEntry {
            node: NodeId(node),
            incarnation: inc,
            status,
            epoch: 3,
            breaker_open: false,
        }
    }

    #[test]
    fn precedence_prefers_incarnation_then_strength() {
        let alive1 = entry(0, 1, NodeStatus::Alive);
        let suspect1 = entry(0, 1, NodeStatus::Suspect);
        let dead1 = entry(0, 1, NodeStatus::Dead);
        let alive2 = entry(0, 2, NodeStatus::Alive);
        assert!(suspect1.supersedes(&alive1));
        assert!(dead1.supersedes(&suspect1));
        assert!(!alive1.supersedes(&suspect1));
        // A bumped incarnation clears any verdict at the old one.
        assert!(alive2.supersedes(&dead1));
        assert!(!dead1.supersedes(&alive2));
    }

    #[test]
    fn wire_round_trip() {
        let entries = vec![
            GossipEntry {
                node: NodeId(0),
                incarnation: 7,
                status: NodeStatus::Alive,
                epoch: 42,
                breaker_open: true,
            },
            entry(3, 1, NodeStatus::Dead),
        ];
        let text = encode_digest(&entries);
        assert_eq!(decode_digest(&text), entries);
    }

    #[test]
    fn malformed_lines_are_dropped() {
        let text = "0:1:alive:2:0\ngarbage\n1:2:zombie:0:0\n2:2:dead:0:9\n\n3:3:suspect:1:1\n";
        let decoded = decode_digest(text);
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].node, NodeId(0));
        assert_eq!(decoded[1].node, NodeId(3));
    }
}
