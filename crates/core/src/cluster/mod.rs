//! The proxy fleet: slot-sharded peers with gossip membership, failure
//! detection, and peer-assisted degraded serving.
//!
//! One proxy box caps out on cache capacity and origin bandwidth; this
//! module turns N independent [`crate::runtime::ProxyHandle`]s into one
//! logical proxy:
//!
//! * [`slots`] — routing keys (residual key + coarse spatial cell)
//!   hash to 256 fixed slots; rendezvous hashing assigns each slot an
//!   owner among the live nodes, with the full preference order
//!   doubling as the failover chain.
//! * [`gossip`] — the SWIM claim model (incarnation numbers, `Alive <
//!   Suspect < Dead` precedence) plus the piggybacked cluster facts:
//!   data-release epochs and circuit-breaker state, so invalidation and
//!   outage awareness are fleet-wide for free.
//! * [`membership`] — the failure detector: periodic pings, indirect
//!   probes, suspect timeout, refutation-by-incarnation, all driven by
//!   the injectable [`crate::resilience::Clock`].
//! * [`peer`] — the transport seam ([`PeerTransport`]) plus a seeded
//!   lossy wrapper for chaos tests.
//! * [`router`] — the serving front: local cache → owner-cache probe
//!   (deadline + one retry, failures feed the detector and fall
//!   through) → local origin path. Peer trouble is never a client
//!   error.

pub mod gossip;
pub mod membership;
pub mod peer;
pub mod router;
pub mod slots;

pub use gossip::{decode_digest, encode_digest, GossipEntry, NodeStatus};
pub use membership::{Membership, MembershipConfig, MembershipEvent};
pub use peer::{LossyTransport, PeerError, PeerTransport};
pub use router::{
    ClusterConfig, ClusterNode, ClusterResponse, ClusterRouter, ClusterStats, InProcessTransport,
    ServedBy,
};
pub use slots::{
    owner, owner_of_key, preference, routing_key, slot_of, NodeId, ROUTE_CELL, SLOT_COUNT,
};
