//! The fleet front: route a request to an entry node, try its local
//! cache, probe the slot owner's cache on a miss, and only then pay
//! for origin traffic — all without ever letting peer trouble surface
//! as a client error.
//!
//! [`ClusterRouter`] holds N in-process nodes (a [`ProxyHandle`] plus a
//! [`Membership`] view each) behind one [`PeerTransport`]. The serving
//! path for a request entering at node `e` is:
//!
//! 1. **Local cache** — a fresh exact/contained hit on `e` answers
//!    immediately (the common case once the fleet is warm, since the
//!    edge routes keys to their owners).
//! 2. **Owner probe** — on a miss, hash the routing key (residual key
//!    plus coarse spatial cell) to its slot and probe the owning
//!    peer's cache (fresh-only, zero origin traffic). The probe gets
//!    `probe_retries` retries, then the failure feeds the failure
//!    detector and the request *falls through* — peers can make a
//!    request cheaper, never make it fail.
//! 3. **Local origin path** — the full single-node pipeline on `e`:
//!    origin fetch with deadlines/retries/breaker, degraded serving
//!    during outages. Exactly what a solo proxy would have done.
//!
//! Failover is implicit in the slot map: the owner of a slot is the
//! rendezvous argmax over the *live* node set, so the moment a peer is
//! suspected its slots fall to the next node in each slot's preference
//! chain, identically on every node sharing that view. A rejoin (higher
//! incarnation) restores the old argmax just as implicitly.
//!
//! The router also enforces the stale-rejoiner rule: before a node
//! serves, it adopts the highest data-release epoch its membership view
//! has gossiped, retiring stale entries first.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use super::gossip::{GossipEntry, NodeStatus};
use super::membership::{Membership, MembershipConfig, MembershipEvent};
use super::peer::{LossyTransport, PeerError, PeerTransport};
use super::slots::{owner_of_key, routing_key, NodeId};
use crate::observe::{PathClass, Phase};
use crate::origin::OriginError;
use crate::resilience::Clock;
use crate::runtime::{ProxyHandle, XmlResponse};
use crate::ProxyError;

/// Cluster-level tunables, wrapping the failure detector's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Failure-detector timings.
    pub membership: MembershipConfig,
    /// Extra attempts after a failed serving-path peer probe before
    /// falling through to the local origin path.
    pub probe_retries: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            membership: MembershipConfig::default(),
            probe_retries: 1,
        }
    }
}

impl ClusterConfig {
    /// Aggressive timings for virtual-clock tests.
    pub fn fast_test() -> Self {
        ClusterConfig {
            membership: MembershipConfig::fast_test(),
            probe_retries: 1,
        }
    }
}

/// Where a cluster-served response actually came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// The entry node itself (cache hit or its own origin path).
    Local(NodeId),
    /// A peer's cache answered the probe.
    Peer(NodeId),
}

/// A response served through the cluster, tagged with its source.
#[derive(Debug)]
pub struct ClusterResponse {
    /// The response bytes and per-query metrics.
    pub response: XmlResponse,
    /// Which node's cache or origin path produced it.
    pub served_by: ServedBy,
}

/// Fleet-wide counters, aggregated across every node the router ticks.
#[derive(Debug, Default)]
pub struct ClusterStats {
    peer_probes: AtomicU64,
    peer_hits: AtomicU64,
    peer_probe_failures: AtomicU64,
    failovers: AtomicU64,
    rejoins: AtomicU64,
}

impl ClusterStats {
    /// Serving-path peer probes issued (hits + misses + failures).
    pub fn peer_probes(&self) -> u64 {
        self.peer_probes.load(Ordering::Relaxed)
    }

    /// Probes a peer's cache answered.
    pub fn peer_hits(&self) -> u64 {
        self.peer_hits.load(Ordering::Relaxed)
    }

    /// Probes that failed transport after all retries (each fed the
    /// failure detector and fell through to the origin path).
    pub fn peer_probe_failures(&self) -> u64 {
        self.peer_probe_failures.load(Ordering::Relaxed)
    }

    /// Suspected/Died transitions observed anywhere in the fleet — each
    /// one implicitly moved the victim's slots to the next live owner.
    pub fn failovers(&self) -> u64 {
        self.failovers.load(Ordering::Relaxed)
    }

    /// Rejoined transitions observed (slots reclaimed).
    pub fn rejoins(&self) -> u64 {
        self.rejoins.load(Ordering::Relaxed)
    }
}

/// One fleet member: a full proxy plus its membership view.
pub struct ClusterNode {
    id: NodeId,
    handle: ProxyHandle,
    membership: Mutex<Membership>,
    /// Transitions observed outside the node's own detector tick —
    /// merges performed while *answering* a peer's ping, suspicions
    /// raised by serving-path probe failures — parked here until the
    /// router's next tick reports them.
    pending: Mutex<Vec<MembershipEvent>>,
}

impl ClusterNode {
    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// This node's proxy.
    pub fn handle(&self) -> &ProxyHandle {
        &self.handle
    }

    /// Applies the side-effectful membership events — an epoch gossiped
    /// from the fleet retires this node's stale entries immediately —
    /// and parks them for the router's next tick to report.
    fn record_events(&self, events: &[MembershipEvent]) {
        if events.is_empty() {
            return;
        }
        for event in events {
            if let MembershipEvent::EpochAdvanced(epoch) = event {
                self.handle.set_epoch(*epoch);
            }
        }
        self.pending
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .extend_from_slice(events);
    }

    fn drain_pending(&self) -> Vec<MembershipEvent> {
        std::mem::take(&mut *self.pending.lock().unwrap_or_else(|e| e.into_inner()))
    }

    fn lock_membership(&self) -> std::sync::MutexGuard<'_, Membership> {
        self.membership.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The test/bench transport: delivers pings and probes between
/// in-process nodes by direct call, with a down-set standing in for
/// crashed processes and severed links.
pub struct InProcessTransport {
    nodes: Mutex<HashMap<NodeId, Arc<ClusterNode>>>,
    down: Mutex<HashSet<NodeId>>,
}

impl InProcessTransport {
    fn new() -> Arc<InProcessTransport> {
        Arc::new(InProcessTransport {
            nodes: Mutex::new(HashMap::new()),
            down: Mutex::new(HashSet::new()),
        })
    }

    fn register(&self, node: Arc<ClusterNode>) {
        self.nodes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(node.id, node);
    }

    fn node(&self, id: NodeId) -> Option<Arc<ClusterNode>> {
        self.nodes
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .get(&id)
            .cloned()
    }

    /// Simulates a crash: every exchange to or from `id` now fails.
    pub fn set_down(&self, id: NodeId) {
        self.down
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(id);
    }

    /// Heals a crashed node's connectivity.
    pub fn set_up(&self, id: NodeId) {
        self.down
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&id);
    }

    /// Whether `id` is currently down.
    pub fn is_down(&self, id: NodeId) -> bool {
        self.down
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&id)
    }
}

impl PeerTransport for InProcessTransport {
    fn ping(
        &self,
        from: NodeId,
        to: NodeId,
        digest: &[GossipEntry],
    ) -> Result<Vec<GossipEntry>, PeerError> {
        if self.is_down(from) || self.is_down(to) {
            return Err(PeerError::Unreachable(format!("{to} down")));
        }
        let target = self
            .node(to)
            .ok_or_else(|| PeerError::Unreachable(format!("{to} unknown")))?;
        let (events, answer) = {
            let mut m = target.lock_membership();
            let events = m.merge(digest);
            m.set_self_state(
                target.handle.current_epoch(),
                target.handle.breaker_shed_hint().is_some(),
            );
            (events, m.digest())
        };
        target.record_events(&events);
        Ok(answer)
    }

    fn ping_req(&self, from: NodeId, via: NodeId, target: NodeId) -> Result<(), PeerError> {
        if self.is_down(from) || self.is_down(via) || self.is_down(target) {
            return Err(PeerError::Unreachable(format!(
                "{target} unreachable via {via}"
            )));
        }
        if self.node(via).is_none() || self.node(target).is_none() {
            return Err(PeerError::Unreachable("unknown peer".to_string()));
        }
        Ok(())
    }

    fn probe(&self, from: NodeId, to: NodeId, sql: &str) -> Result<Option<XmlResponse>, PeerError> {
        if self.is_down(from) || self.is_down(to) {
            return Err(PeerError::Timeout);
        }
        let target = self
            .node(to)
            .ok_or_else(|| PeerError::Unreachable(format!("{to} unknown")))?;
        Ok(target.handle.try_sql_xml_cached(sql))
    }
}

/// N proxy nodes behind one routing front. See the module docs for the
/// serving path.
pub struct ClusterRouter {
    nodes: Vec<Arc<ClusterNode>>,
    transport: Arc<dyn PeerTransport>,
    /// The in-process transport's control surface (kill/revive), when
    /// this router was built in-process.
    control: Arc<InProcessTransport>,
    cfg: ClusterConfig,
    stats: ClusterStats,
    /// Serializes protocol rounds: a tick walks node views in order and
    /// each ping locks two views, so concurrent ticks could deadlock.
    tick_lock: Mutex<()>,
}

impl ClusterRouter {
    /// Builds an in-process fleet over pre-built proxy handles (node
    /// `i` gets id `NodeId(i)`), each with its own membership view on
    /// the handle's clock-independent timing source `clock`.
    pub fn in_process(
        handles: Vec<ProxyHandle>,
        cfg: ClusterConfig,
        clock: Arc<dyn Clock>,
    ) -> ClusterRouter {
        let ids: Vec<NodeId> = (0..handles.len()).map(|i| NodeId(i as u16)).collect();
        let control = InProcessTransport::new();
        let nodes: Vec<Arc<ClusterNode>> = handles
            .into_iter()
            .zip(ids.iter())
            .map(|(handle, &id)| {
                let peers: Vec<NodeId> = ids.iter().copied().filter(|&p| p != id).collect();
                let node = Arc::new(ClusterNode {
                    id,
                    handle,
                    membership: Mutex::new(Membership::new(
                        id,
                        &peers,
                        cfg.membership.clone(),
                        Arc::clone(&clock),
                    )),
                    pending: Mutex::new(Vec::new()),
                });
                control.register(Arc::clone(&node));
                node
            })
            .collect();
        ClusterRouter {
            nodes,
            transport: Arc::clone(&control) as Arc<dyn PeerTransport>,
            control,
            cfg,
            stats: ClusterStats::default(),
            tick_lock: Mutex::new(()),
        }
    }

    /// Wraps the peer transport in a seeded lossy layer (chaos runs).
    /// Ping and probe traffic both suffer the loss; the control surface
    /// (kill/revive) stays reliable.
    pub fn with_loss(mut self, drop_rate: f64, seed: u64) -> ClusterRouter {
        self.transport = Arc::new(LossyTransport::new(
            Arc::clone(&self.transport),
            drop_rate,
            seed,
        ));
        self
    }

    /// Like [`Self::with_loss`], but the caller builds the lossy layer
    /// (delay, drop rate) around the router's current transport and
    /// gets the handle back, so partitions can be armed and healed
    /// mid-run. This is the torture harness's hook.
    pub fn with_faulty_transport(
        mut self,
        build: impl FnOnce(Arc<dyn PeerTransport>) -> LossyTransport,
    ) -> (ClusterRouter, Arc<LossyTransport>) {
        let lossy = Arc::new(build(Arc::clone(&self.transport)));
        self.transport = Arc::clone(&lossy) as Arc<dyn PeerTransport>;
        (self, lossy)
    }

    /// Number of nodes (live or not).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The proxy behind node `idx`.
    pub fn node(&self, idx: usize) -> &ProxyHandle {
        &self.nodes[idx].handle
    }

    /// Fleet-wide counters.
    pub fn stats(&self) -> &ClusterStats {
        &self.stats
    }

    /// What `viewer` currently believes about `subject`.
    pub fn status_seen_by(&self, viewer: usize, subject: NodeId) -> Option<NodeStatus> {
        self.nodes[viewer].lock_membership().status_of(subject)
    }

    /// The nodes `viewer` considers live.
    pub fn live_seen_by(&self, viewer: usize) -> Vec<NodeId> {
        self.nodes[viewer].lock_membership().live_nodes()
    }

    /// The node `viewer` would route `routing_key` to right now (build
    /// the key with [`routing_key`]).
    pub fn owner_seen_by(&self, viewer: usize, routing_key: &str) -> Option<NodeId> {
        let live = self.live_seen_by(viewer);
        owner_of_key(routing_key, &live)
    }

    /// Whether node `idx` is currently killed.
    pub fn is_down(&self, idx: usize) -> bool {
        self.control.is_down(NodeId(idx as u16))
    }

    /// Crashes node `idx`: it stops ticking and every exchange with it
    /// fails. Its cache and epoch survive for a later [`Self::revive`].
    pub fn kill(&self, idx: usize) {
        self.control.set_down(NodeId(idx as u16));
    }

    /// Revives node `idx` with a bumped incarnation, so its next
    /// exchange supersedes any Suspect/Dead verdict and reclaims its
    /// slots fleet-wide.
    pub fn revive(&self, idx: usize) {
        let node = &self.nodes[idx];
        node.lock_membership().rejoin();
        self.control.set_up(node.id);
    }

    /// Runs one failure-detector round on every live node, in id order,
    /// and returns every membership transition observed (tagged with
    /// the node that observed it). Drive this from a timer thread in a
    /// real deployment or after each virtual-clock step in tests.
    pub fn tick(&self) -> Vec<(NodeId, MembershipEvent)> {
        let _round = self.tick_lock.lock().unwrap_or_else(|e| e.into_inner());
        let mut observed = Vec::new();
        for node in &self.nodes {
            if !self.control.is_down(node.id) {
                let events = {
                    let mut m = node.lock_membership();
                    m.set_self_state(
                        node.handle.current_epoch(),
                        node.handle.breaker_shed_hint().is_some(),
                    );
                    m.tick(self.transport.as_ref())
                };
                node.record_events(&events);
            }
            // Report everything this node observed since the last
            // round: its own detector tick plus transitions recorded
            // while answering peers' pings or failing serving-path
            // probes.
            for event in node.drain_pending() {
                match event {
                    MembershipEvent::Suspected(_) | MembershipEvent::Died(_) => {
                        self.stats.failovers.fetch_add(1, Ordering::Relaxed);
                    }
                    MembershipEvent::Rejoined(_) => {
                        self.stats.rejoins.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
                observed.push((node.id, event));
            }
        }
        observed
    }

    /// Serves one form request entering at node `entry` (rerouted to
    /// the next live node if `entry` is down, the way a load balancer
    /// ejects a node failing `/readyz`).
    ///
    /// # Errors
    /// Only the entry node's own pipeline can fail the request
    /// (resolution errors, origin exhaustion past the degraded paths);
    /// peer trouble never propagates. With every node down, fails as
    /// origin-unavailable.
    pub fn handle_form(
        &self,
        entry: usize,
        path: &str,
        fields: &[(String, String)],
    ) -> Result<ClusterResponse, ProxyError> {
        let node = self.entry_node(entry).ok_or_else(|| {
            ProxyError::Origin(OriginError::Unavailable("no live proxy nodes".into()))
        })?;

        // Stale-rejoiner rule: adopt the fleet's highest gossiped epoch
        // *before* serving, so a node that was down across a release
        // retires its stale entries first.
        let (live, fleet_epoch) = {
            let m = node.lock_membership();
            (m.live_nodes(), m.max_epoch())
        };
        if fleet_epoch > node.handle.current_epoch() {
            node.handle.set_epoch(fleet_epoch);
        }

        if let Some(response) = node.handle.try_form_xml_cached(path, fields) {
            return Ok(ClusterResponse {
                response,
                served_by: ServedBy::Local(node.id),
            });
        }

        if let Ok(bound) = node.handle.manager().resolve_form(path, fields) {
            let owner = owner_of_key(&routing_key(&bound.residual_key, &bound.region), &live);
            if let Some(owner) = owner.filter(|&o| o != node.id) {
                if let Some(response) = self.probe_owner(node, owner, &bound.sql) {
                    return Ok(ClusterResponse {
                        response,
                        served_by: ServedBy::Peer(owner),
                    });
                }
            }
        }

        node.handle
            .handle_form_xml(path, fields)
            .map(|response| ClusterResponse {
                response,
                served_by: ServedBy::Local(node.id),
            })
    }

    /// The owner-probe leg: deadline-bounded transport probe with
    /// `probe_retries` retries; transport failure feeds the failure
    /// detector and returns `None` (fall through), never an error.
    fn probe_owner(&self, node: &ClusterNode, owner: NodeId, sql: &str) -> Option<XmlResponse> {
        let started = Instant::now();
        self.stats.peer_probes.fetch_add(1, Ordering::Relaxed);
        let mut outcome = None;
        for attempt in 0..=self.cfg.probe_retries {
            match self.transport.probe(node.id, owner, sql) {
                Ok(hit) => {
                    outcome = Some(hit);
                    break;
                }
                Err(_) if attempt < self.cfg.probe_retries => continue,
                Err(_) => {}
            }
        }
        let ms = started.elapsed().as_secs_f64() * 1000.0;
        node.handle
            .observer()
            .record_phase(Phase::PeerProbe, PathClass::Miss, ms);
        match outcome {
            Some(Some(response)) => {
                self.stats.peer_hits.fetch_add(1, Ordering::Relaxed);
                node.handle.note_peer_probe(true);
                Some(response)
            }
            Some(None) => {
                node.handle.note_peer_probe(false);
                None
            }
            None => {
                self.stats
                    .peer_probe_failures
                    .fetch_add(1, Ordering::Relaxed);
                node.handle.note_peer_probe_failure();
                // The Suspected event (if any) is parked on the node;
                // the next tick reports it and counts the failover.
                let events = node.lock_membership().note_probe_failure(owner);
                node.record_events(&events);
                None
            }
        }
    }

    /// Picks the serving entry: `entry` itself when live, else the next
    /// live node in index order.
    fn entry_node(&self, entry: usize) -> Option<&ClusterNode> {
        let n = self.nodes.len();
        (0..n)
            .map(|off| &self.nodes[(entry + off) % n])
            .find(|node| !self.control.is_down(node.id))
            .map(|node| &**node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::SiteOrigin;
    use crate::resilience::MockClock;
    use crate::sim::CostModel;
    use crate::template::TemplateManager;
    use crate::ProxyConfig;
    use fp_skyserver::{Catalog, CatalogSpec, SkySite};
    use std::time::Duration;

    fn fleet(n: usize, clock: &Arc<MockClock>) -> ClusterRouter {
        let handles = (0..n)
            .map(|_| {
                let site = SkySite::new(Catalog::generate(&CatalogSpec::small_test()));
                ProxyHandle::with_shards_clocked(
                    TemplateManager::with_sky_defaults(),
                    Arc::new(SiteOrigin::new(site)),
                    ProxyConfig::default().with_cost(CostModel::free()),
                    2,
                    Arc::clone(clock) as Arc<dyn Clock>,
                )
            })
            .collect();
        ClusterRouter::in_process(
            handles,
            ClusterConfig::fast_test(),
            Arc::clone(clock) as Arc<dyn Clock>,
        )
    }

    fn radial(ra: f64, dec: f64, radius: f64) -> Vec<(String, String)> {
        vec![
            ("ra".to_string(), ra.to_string()),
            ("dec".to_string(), dec.to_string()),
            ("radius".to_string(), radius.to_string()),
        ]
    }

    #[test]
    fn peer_cache_answers_before_the_origin() {
        let clock = MockClock::shared();
        let router = fleet(3, &clock);
        let fields = radial(185.0, 0.0, 20.0);

        // Find which node owns this key, warm that node through the
        // cluster path, then enter at a different node.
        let bound = router
            .node(0)
            .manager()
            .resolve_form("/search/radial", &fields)
            .unwrap();
        let key = routing_key(&bound.residual_key, &bound.region);
        let owner = router.owner_seen_by(0, &key).unwrap();
        let warm = router
            .handle_form(owner.0 as usize, "/search/radial", &fields)
            .unwrap();
        assert_eq!(warm.served_by, ServedBy::Local(owner));

        let entry = (owner.0 as usize + 1) % 3;
        let flights_before = router.node(entry).runtime_stats().flights_led;
        let served = router
            .handle_form(entry, "/search/radial", &fields)
            .unwrap();
        assert_eq!(served.served_by, ServedBy::Peer(owner));
        assert_eq!(
            router.node(entry).runtime_stats().flights_led,
            flights_before,
            "peer hit must cost zero origin traffic"
        );
        assert_eq!(router.stats().peer_hits(), 1);
    }

    #[test]
    fn probe_failure_falls_through_and_suspects_the_owner() {
        let clock = MockClock::shared();
        let router = fleet(3, &clock);
        let fields = radial(190.0, 10.0, 15.0);
        let bound = router
            .node(0)
            .manager()
            .resolve_form("/search/radial", &fields)
            .unwrap();
        let key = routing_key(&bound.residual_key, &bound.region);
        let owner = router.owner_seen_by(0, &key).unwrap();
        let entry = (owner.0 as usize + 1) % 3;

        router.kill(owner.0 as usize);
        let served = router.handle_form(entry, "/search/radial", &fields);
        assert!(served.is_ok(), "probe failure must not surface: {served:?}");
        assert_eq!(
            served.unwrap().served_by,
            ServedBy::Local(NodeId(entry as u16))
        );
        assert_eq!(router.stats().peer_probe_failures(), 1);
        assert_eq!(
            router.status_seen_by(entry, owner),
            Some(NodeStatus::Suspect)
        );
        // With the owner suspected it has left the entry node's live
        // view, so the slot has failed over: the dead node is never
        // probed again and the request still succeeds.
        let again = router.handle_form(entry, "/search/radial", &fields);
        assert!(again.is_ok());
        assert_eq!(
            router.stats().peer_probe_failures(),
            1,
            "no further probe reached the dead owner"
        );
    }

    #[test]
    fn gossip_carries_epoch_bumps_fleet_wide() {
        let clock = MockClock::shared();
        let router = fleet(3, &clock);
        router.node(0).set_epoch(7);
        // Enough rounds for every pairwise exchange.
        for _ in 0..6 {
            clock.advance(Duration::from_millis(20));
            router.tick();
        }
        for idx in 0..3 {
            assert_eq!(router.node(idx).current_epoch(), 7, "node {idx} stale");
        }
    }

    #[test]
    fn dead_entry_node_reroutes_to_next_live() {
        let clock = MockClock::shared();
        let router = fleet(2, &clock);
        router.kill(0);
        let served = router
            .handle_form(0, "/search/radial", &radial(200.0, -5.0, 10.0))
            .unwrap();
        assert_eq!(served.served_by, ServedBy::Local(NodeId(1)));
        router.kill(1);
        let dark = router.handle_form(0, "/search/radial", &radial(200.0, -5.0, 10.0));
        assert!(matches!(
            dark,
            Err(ProxyError::Origin(OriginError::Unavailable(_)))
        ));
    }

    #[test]
    fn lossy_transport_never_surfaces_client_errors() {
        let clock = MockClock::shared();
        let router = fleet(3, &clock).with_loss(0.5, 0xFEED);
        for i in 0..40 {
            let fields = radial(150.0 + f64::from(i % 7) * 4.0, 0.0, 8.0);
            let served = router.handle_form(i as usize % 3, "/search/radial", &fields);
            assert!(served.is_ok(), "request {i} failed: {served:?}");
            clock.advance(Duration::from_millis(20));
            router.tick();
        }
    }
}
