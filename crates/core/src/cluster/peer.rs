//! The transport seam between cluster nodes.
//!
//! All inter-node traffic — failure-detector pings, indirect probe
//! requests, and cache probes on the serving path — goes through the
//! [`PeerTransport`] trait, so the same membership and routing code
//! runs over an in-process node table in tests (`InProcessTransport`
//! in `router.rs`), over HTTP in the example proxy, and under injected
//! packet loss via [`LossyTransport`] in chaos runs.
//!
//! Transport errors are *evidence*, not failures: a [`PeerError`] from
//! a ping feeds the failure detector, and one from a serving-path probe
//! makes the router fall through to its local origin path. Neither ever
//! reaches a client.

use std::sync::Arc;
use std::sync::Mutex;

use super::gossip::GossipEntry;
use super::slots::NodeId;
use crate::runtime::XmlResponse;

/// Why a peer exchange failed. Coarse on purpose: the caller's response
/// is the same (count it, route around it) regardless of the cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerError {
    /// The exchange missed its deadline (or was dropped by a lossy
    /// link, which is indistinguishable from the caller's side).
    Timeout,
    /// The peer could not be reached at all (connection refused, node
    /// marked down, no route).
    Unreachable(String),
    /// The peer answered with something unintelligible.
    Protocol(String),
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::Timeout => write!(f, "peer exchange timed out"),
            PeerError::Unreachable(why) => write!(f, "peer unreachable: {why}"),
            PeerError::Protocol(why) => write!(f, "peer protocol error: {why}"),
        }
    }
}

impl std::error::Error for PeerError {}

/// How one node talks to another. Implementations must be cheap to call
/// from the serving path and must enforce their own deadlines — a
/// `probe` that can block unboundedly would defeat the router's
/// never-hang guarantee.
pub trait PeerTransport: Send + Sync {
    /// Failure-detector ping from `from` to `to`, piggybacking `from`'s
    /// gossip digest. A healthy peer merges the digest and answers with
    /// its own.
    fn ping(
        &self,
        from: NodeId,
        to: NodeId,
        digest: &[GossipEntry],
    ) -> Result<Vec<GossipEntry>, PeerError>;

    /// Indirect probe: ask `via` to ping `target` on `from`'s behalf.
    /// `Ok(())` means `via` reached `target`.
    fn ping_req(&self, from: NodeId, via: NodeId, target: NodeId) -> Result<(), PeerError>;

    /// Serving-path cache probe: ask `to` whether its cache alone (no
    /// origin traffic, fresh entries only) can answer `sql`.
    /// `Ok(None)` is a clean miss; `Err` is transport trouble and feeds
    /// the failure detector.
    fn probe(&self, from: NodeId, to: NodeId, sql: &str) -> Result<Option<XmlResponse>, PeerError>;
}

/// A transport wrapper that drops a seeded pseudo-random fraction of
/// exchanges, for chaos tests: dropped calls surface as
/// [`PeerError::Timeout`], exactly what a flaky network looks like from
/// the caller's side.
pub struct LossyTransport {
    inner: Arc<dyn PeerTransport>,
    /// Probability of dropping any one exchange, in [0, 1].
    drop_rate: f64,
    rng: Mutex<u64>,
}

impl LossyTransport {
    /// Wraps `inner`, dropping `drop_rate` of exchanges using a seeded
    /// xorshift stream (deterministic per seed).
    pub fn new(inner: Arc<dyn PeerTransport>, drop_rate: f64, seed: u64) -> LossyTransport {
        LossyTransport {
            inner,
            drop_rate: drop_rate.clamp(0.0, 1.0),
            rng: Mutex::new(seed.max(1)),
        }
    }

    fn dropped(&self) -> bool {
        let mut state = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        (x >> 11) as f64 / (1u64 << 53) as f64 % 1.0 < self.drop_rate
    }
}

impl PeerTransport for LossyTransport {
    fn ping(
        &self,
        from: NodeId,
        to: NodeId,
        digest: &[GossipEntry],
    ) -> Result<Vec<GossipEntry>, PeerError> {
        if self.dropped() {
            return Err(PeerError::Timeout);
        }
        self.inner.ping(from, to, digest)
    }

    fn ping_req(&self, from: NodeId, via: NodeId, target: NodeId) -> Result<(), PeerError> {
        if self.dropped() {
            return Err(PeerError::Timeout);
        }
        self.inner.ping_req(from, via, target)
    }

    fn probe(&self, from: NodeId, to: NodeId, sql: &str) -> Result<Option<XmlResponse>, PeerError> {
        if self.dropped() {
            return Err(PeerError::Timeout);
        }
        self.inner.probe(from, to, sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysOk;

    impl PeerTransport for AlwaysOk {
        fn ping(
            &self,
            _from: NodeId,
            _to: NodeId,
            _digest: &[GossipEntry],
        ) -> Result<Vec<GossipEntry>, PeerError> {
            Ok(Vec::new())
        }

        fn ping_req(&self, _from: NodeId, _via: NodeId, _target: NodeId) -> Result<(), PeerError> {
            Ok(())
        }

        fn probe(
            &self,
            _from: NodeId,
            _to: NodeId,
            _sql: &str,
        ) -> Result<Option<XmlResponse>, PeerError> {
            Ok(None)
        }
    }

    #[test]
    fn lossy_transport_drops_roughly_the_configured_fraction() {
        let lossy = LossyTransport::new(Arc::new(AlwaysOk), 0.3, 0xBADCAB);
        let trials = 2000;
        let mut drops = 0;
        for _ in 0..trials {
            if lossy.ping(NodeId(0), NodeId(1), &[]).is_err() {
                drops += 1;
            }
        }
        let rate = drops as f64 / trials as f64;
        assert!((0.2..0.4).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn zero_rate_drops_nothing_and_full_rate_drops_everything() {
        let clean = LossyTransport::new(Arc::new(AlwaysOk), 0.0, 7);
        let dead = LossyTransport::new(Arc::new(AlwaysOk), 1.0, 7);
        for _ in 0..100 {
            assert!(clean.ping_req(NodeId(0), NodeId(1), NodeId(2)).is_ok());
            assert!(matches!(
                dead.probe(NodeId(0), NodeId(1), "SELECT 1"),
                Err(PeerError::Timeout)
            ));
        }
    }

    #[test]
    fn lossy_stream_is_deterministic_per_seed() {
        let a = LossyTransport::new(Arc::new(AlwaysOk), 0.5, 42);
        let b = LossyTransport::new(Arc::new(AlwaysOk), 0.5, 42);
        for _ in 0..256 {
            assert_eq!(a.dropped(), b.dropped());
        }
    }
}
