//! The transport seam between cluster nodes.
//!
//! All inter-node traffic — failure-detector pings, indirect probe
//! requests, and cache probes on the serving path — goes through the
//! [`PeerTransport`] trait, so the same membership and routing code
//! runs over an in-process node table in tests (`InProcessTransport`
//! in `router.rs`), over HTTP in the example proxy, and under injected
//! packet loss via [`LossyTransport`] in chaos runs.
//!
//! Transport errors are *evidence*, not failures: a [`PeerError`] from
//! a ping feeds the failure detector, and one from a serving-path probe
//! makes the router fall through to its local origin path. Neither ever
//! reaches a client.

use std::collections::HashSet;
use std::sync::Arc;
use std::sync::Mutex;
use std::time::Duration;

use super::gossip::GossipEntry;
use super::slots::NodeId;
use crate::resilience::Clock;
use crate::runtime::XmlResponse;

/// Why a peer exchange failed. Coarse on purpose: the caller's response
/// is the same (count it, route around it) regardless of the cause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeerError {
    /// The exchange missed its deadline (or was dropped by a lossy
    /// link, which is indistinguishable from the caller's side).
    Timeout,
    /// The peer could not be reached at all (connection refused, node
    /// marked down, no route).
    Unreachable(String),
    /// The peer answered with something unintelligible.
    Protocol(String),
}

impl std::fmt::Display for PeerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeerError::Timeout => write!(f, "peer exchange timed out"),
            PeerError::Unreachable(why) => write!(f, "peer unreachable: {why}"),
            PeerError::Protocol(why) => write!(f, "peer protocol error: {why}"),
        }
    }
}

impl std::error::Error for PeerError {}

/// How one node talks to another. Implementations must be cheap to call
/// from the serving path and must enforce their own deadlines — a
/// `probe` that can block unboundedly would defeat the router's
/// never-hang guarantee.
pub trait PeerTransport: Send + Sync {
    /// Failure-detector ping from `from` to `to`, piggybacking `from`'s
    /// gossip digest. A healthy peer merges the digest and answers with
    /// its own.
    fn ping(
        &self,
        from: NodeId,
        to: NodeId,
        digest: &[GossipEntry],
    ) -> Result<Vec<GossipEntry>, PeerError>;

    /// Indirect probe: ask `via` to ping `target` on `from`'s behalf.
    /// `Ok(())` means `via` reached `target`.
    fn ping_req(&self, from: NodeId, via: NodeId, target: NodeId) -> Result<(), PeerError>;

    /// Serving-path cache probe: ask `to` whether its cache alone (no
    /// origin traffic, fresh entries only) can answer `sql`.
    /// `Ok(None)` is a clean miss; `Err` is transport trouble and feeds
    /// the failure detector.
    fn probe(&self, from: NodeId, to: NodeId, sql: &str) -> Result<Option<XmlResponse>, PeerError>;
}

/// A transport wrapper that injects network faults for chaos and
/// torture runs, deterministically per seed:
///
/// - **drops**: a seeded pseudo-random fraction of exchanges surface
///   as [`PeerError::Timeout`], exactly what a flaky network looks
///   like from the caller's side;
/// - **delays** (optional): a seeded fraction of the surviving
///   exchanges sleep on an injected [`Clock`] before delivery — inert
///   wall-clock-wise under a virtual clock, but it advances the timing
///   budget the failure detector runs on, modeling a slow link;
/// - **asymmetric partitions**: individual *directed* links can be
///   severed mid-run (`block(a, b)` kills a→b while b→a still works),
///   which is the partition shape that trips naive failure detectors.
pub struct LossyTransport {
    inner: Arc<dyn PeerTransport>,
    /// Probability of dropping any one exchange, in [0, 1].
    drop_rate: f64,
    rng: Mutex<u64>,
    /// `(rate, delay, clock)`: fraction of delivered exchanges that
    /// sleep `delay` on `clock` first. `None` = no delay faults (and no
    /// extra rng draws, so pre-existing seeds keep their streams).
    delay: Option<(f64, Duration, Arc<dyn Clock>)>,
    /// Severed directed links: an exchange whose path crosses a blocked
    /// direction times out.
    blocked: Mutex<HashSet<(NodeId, NodeId)>>,
}

impl LossyTransport {
    /// Wraps `inner`, dropping `drop_rate` of exchanges using a seeded
    /// xorshift stream (deterministic per seed).
    pub fn new(inner: Arc<dyn PeerTransport>, drop_rate: f64, seed: u64) -> LossyTransport {
        LossyTransport {
            inner,
            drop_rate: drop_rate.clamp(0.0, 1.0),
            rng: Mutex::new(seed.max(1)),
            delay: None,
            blocked: Mutex::new(HashSet::new()),
        }
    }

    /// Adds delay faults: `rate` of the exchanges that survive the drop
    /// draw sleep `delay` on `clock` before being delivered.
    pub fn with_delay(mut self, rate: f64, delay: Duration, clock: Arc<dyn Clock>) -> Self {
        self.delay = Some((rate.clamp(0.0, 1.0), delay, clock));
        self
    }

    /// Severs the directed link `from` → `to` (the reverse direction is
    /// untouched — block both to model a full partition).
    pub fn block(&self, from: NodeId, to: NodeId) {
        self.blocked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((from, to));
    }

    /// Restores the directed link `from` → `to`.
    pub fn unblock(&self, from: NodeId, to: NodeId) {
        self.blocked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .remove(&(from, to));
    }

    /// Restores every severed link.
    pub fn heal_partitions(&self) {
        self.blocked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }

    /// Whether the directed link `from` → `to` is currently severed.
    pub fn is_blocked(&self, from: NodeId, to: NodeId) -> bool {
        self.blocked
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .contains(&(from, to))
    }

    fn draw(&self) -> f64 {
        let mut state = self.rng.lock().unwrap_or_else(|e| e.into_inner());
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        (x >> 11) as f64 / (1u64 << 53) as f64 % 1.0
    }

    fn dropped(&self) -> bool {
        self.draw() < self.drop_rate
    }

    /// The drop/delay gauntlet for one delivered exchange. Partition
    /// checks are set lookups, not rng draws, so arming a partition
    /// mid-run never perturbs the seeded stream.
    fn deliver(&self) -> Result<(), PeerError> {
        if self.dropped() {
            return Err(PeerError::Timeout);
        }
        if let Some((rate, delay, clock)) = &self.delay {
            if self.draw() < *rate {
                clock.sleep(*delay);
            }
        }
        Ok(())
    }
}

impl PeerTransport for LossyTransport {
    fn ping(
        &self,
        from: NodeId,
        to: NodeId,
        digest: &[GossipEntry],
    ) -> Result<Vec<GossipEntry>, PeerError> {
        if self.is_blocked(from, to) {
            return Err(PeerError::Timeout);
        }
        self.deliver()?;
        self.inner.ping(from, to, digest)
    }

    fn ping_req(&self, from: NodeId, via: NodeId, target: NodeId) -> Result<(), PeerError> {
        // An indirect probe crosses two links: the request to the via
        // and the via's ping of the target.
        if self.is_blocked(from, via) || self.is_blocked(via, target) {
            return Err(PeerError::Timeout);
        }
        self.deliver()?;
        self.inner.ping_req(from, via, target)
    }

    fn probe(&self, from: NodeId, to: NodeId, sql: &str) -> Result<Option<XmlResponse>, PeerError> {
        if self.is_blocked(from, to) {
            return Err(PeerError::Timeout);
        }
        self.deliver()?;
        self.inner.probe(from, to, sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct AlwaysOk;

    impl PeerTransport for AlwaysOk {
        fn ping(
            &self,
            _from: NodeId,
            _to: NodeId,
            _digest: &[GossipEntry],
        ) -> Result<Vec<GossipEntry>, PeerError> {
            Ok(Vec::new())
        }

        fn ping_req(&self, _from: NodeId, _via: NodeId, _target: NodeId) -> Result<(), PeerError> {
            Ok(())
        }

        fn probe(
            &self,
            _from: NodeId,
            _to: NodeId,
            _sql: &str,
        ) -> Result<Option<XmlResponse>, PeerError> {
            Ok(None)
        }
    }

    #[test]
    fn lossy_transport_drops_roughly_the_configured_fraction() {
        let lossy = LossyTransport::new(Arc::new(AlwaysOk), 0.3, 0xBADCAB);
        let trials = 2000;
        let mut drops = 0;
        for _ in 0..trials {
            if lossy.ping(NodeId(0), NodeId(1), &[]).is_err() {
                drops += 1;
            }
        }
        let rate = drops as f64 / trials as f64;
        assert!((0.2..0.4).contains(&rate), "observed drop rate {rate}");
    }

    #[test]
    fn zero_rate_drops_nothing_and_full_rate_drops_everything() {
        let clean = LossyTransport::new(Arc::new(AlwaysOk), 0.0, 7);
        let dead = LossyTransport::new(Arc::new(AlwaysOk), 1.0, 7);
        for _ in 0..100 {
            assert!(clean.ping_req(NodeId(0), NodeId(1), NodeId(2)).is_ok());
            assert!(matches!(
                dead.probe(NodeId(0), NodeId(1), "SELECT 1"),
                Err(PeerError::Timeout)
            ));
        }
    }

    #[test]
    fn lossy_stream_is_deterministic_per_seed() {
        let a = LossyTransport::new(Arc::new(AlwaysOk), 0.5, 42);
        let b = LossyTransport::new(Arc::new(AlwaysOk), 0.5, 42);
        for _ in 0..256 {
            assert_eq!(a.dropped(), b.dropped());
        }
    }

    #[test]
    fn asymmetric_partition_severs_one_direction_only() {
        let lossy = LossyTransport::new(Arc::new(AlwaysOk), 0.0, 7);
        lossy.block(NodeId(0), NodeId(1));
        assert!(matches!(
            lossy.ping(NodeId(0), NodeId(1), &[]),
            Err(PeerError::Timeout)
        ));
        assert!(lossy.ping(NodeId(1), NodeId(0), &[]).is_ok());
        lossy.unblock(NodeId(0), NodeId(1));
        assert!(lossy.ping(NodeId(0), NodeId(1), &[]).is_ok());
    }

    #[test]
    fn indirect_probe_needs_both_legs_of_the_relay_path() {
        let lossy = LossyTransport::new(Arc::new(AlwaysOk), 0.0, 7);
        // Sever requester → via: the relay request itself can't get out.
        lossy.block(NodeId(0), NodeId(2));
        assert!(lossy.ping_req(NodeId(0), NodeId(2), NodeId(1)).is_err());
        lossy.heal_partitions();
        // Sever via → target: the relay can't complete its ping.
        lossy.block(NodeId(2), NodeId(1));
        assert!(lossy.ping_req(NodeId(0), NodeId(2), NodeId(1)).is_err());
        // A different via with clean links still works.
        assert!(lossy.ping_req(NodeId(0), NodeId(3), NodeId(1)).is_ok());
    }

    #[test]
    fn delay_faults_sleep_on_the_injected_clock() {
        let clock = crate::resilience::MockClock::shared();
        let lossy = LossyTransport::new(Arc::new(AlwaysOk), 0.0, 7).with_delay(
            1.0,
            Duration::from_millis(40),
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        let before = clock.now();
        assert!(lossy.ping(NodeId(0), NodeId(1), &[]).is_ok());
        assert_eq!(clock.now() - before, Duration::from_millis(40));
    }

    #[test]
    fn arming_partitions_mid_run_never_perturbs_the_seeded_stream() {
        let a = LossyTransport::new(Arc::new(AlwaysOk), 0.5, 99);
        let b = LossyTransport::new(Arc::new(AlwaysOk), 0.5, 99);
        // `b` takes blocked exchanges interleaved with its draws; the
        // drop stream for delivered exchanges must still match `a`.
        b.block(NodeId(8), NodeId(9));
        for i in 0..256 {
            if i % 3 == 0 {
                assert!(b.ping(NodeId(8), NodeId(9), &[]).is_err());
            }
            assert_eq!(a.dropped(), b.dropped());
        }
    }
}
