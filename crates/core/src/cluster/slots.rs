//! The consistent slot map: routing keys → slots → owning nodes.
//!
//! Partitioning is two-level, Redis-cluster style. A query's [routing
//! key](routing_key) — its residual key refined with the coarse
//! spatial cell of its region — hashes to one of [`SLOT_COUNT`] fixed
//! slots, and each slot is assigned to a node by
//! **highest-random-weight (rendezvous) hashing** over the set of live
//! nodes: the owner of slot `s` is the node `n` maximizing
//! `hash(s, n)`.
//!
//! Rendezvous hashing gives the two properties the fleet needs without
//! any coordination state:
//!
//! * **Minimal remap** — adding or removing one node only moves the
//!   slots that node wins or owned (an expected `1/N` fraction);
//!   every other slot's argmax is unchanged.
//! * **Total coverage** — the argmax over a non-empty node set always
//!   exists, so no slot is ever unowned while at least one node lives.
//!
//! The full preference order of a slot (nodes sorted by descending
//! weight) doubles as its **failover chain**: when the owner is
//! suspected or dead, the slot falls to the next live node in the
//! chain, deterministically and identically on every node that shares
//! the same live view.

use fp_geometry::Region;
use std::collections::hash_map::DefaultHasher;
use std::fmt::Write;
use std::hash::{Hash, Hasher};

/// Number of hash slots residual keys are partitioned into. Fixed for
/// the life of a cluster (like Redis Cluster's 16384); 256 keeps the
/// per-node slot counts well concentrated for small fleets while
/// keeping preference-list computation trivial.
pub const SLOT_COUNT: u16 = 256;

/// Identity of one proxy node in the fleet: its index into the shared,
/// ordered peer list (every node is configured with the same list, so
/// ids agree fleet-wide without a registry).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Width of the spatial cell folded into [`routing_key`], in the
/// region's native coordinate units. Celestial query regions live in
/// unit-sphere chord space, where `0.03125` subtends roughly 1.8
/// degrees of arc — comparable to the largest query diameters (radii
/// of tens of arcminutes are chords under `0.02`). That balances the
/// partition's two pressures: cells fine enough that a sky hotspot
/// spreads over many owners instead of melting one node's cache, yet
/// wide enough that a contained query — whose center lies inside its
/// coverer's region — usually shares the coverer's cell, and therefore
/// its node, preserving the semantic cache's containment hits under
/// partitioning. The fleet sweep in `fp-bench` is the tuning evidence:
/// coarser cells plateau origin fetches past 4 nodes, finer ones trade
/// away 2- and 4-node gains.
pub const ROUTE_CELL: f64 = 0.03125;

/// The key a request is routed by: the residual key (queries are only
/// semantically related within equal residual keys) refined with the
/// coarse spatial cell of the query region's center.
///
/// The residual key alone identifies a *template family* — on a
/// single-template workload every request would hash to one slot and
/// one node would own the entire fleet's traffic. The cell suffix
/// spreads a family across the fleet by sky position while keeping
/// nearby (containment-related) queries on the same owner.
pub fn routing_key(residual_key: &str, region: &Region) -> String {
    let center = region.bounding_rect().center();
    let mut key = String::with_capacity(residual_key.len() + 24);
    key.push_str(residual_key);
    key.push_str("|cell=");
    for (i, c) in center.coords().iter().enumerate() {
        if i > 0 {
            key.push(',');
        }
        let cell = (c / ROUTE_CELL).floor() as i64;
        let _ = write!(key, "{cell}");
    }
    key
}

/// The slot a routing key belongs to. Deterministic across nodes and
/// runs (`DefaultHasher` with default keys, the same choice the shard
/// router makes), so every node routes a key identically.
pub fn slot_of(routing_key: &str) -> u16 {
    let mut hasher = DefaultHasher::new();
    routing_key.hash(&mut hasher);
    (hasher.finish() % u64::from(SLOT_COUNT)) as u16
}

/// The rendezvous weight of `node` for `slot`.
fn weight(slot: u16, node: NodeId) -> u64 {
    let mut hasher = DefaultHasher::new();
    slot.hash(&mut hasher);
    node.0.hash(&mut hasher);
    hasher.finish()
}

/// The slot's full preference order over `nodes`: descending rendezvous
/// weight, node id breaking ties. The head is the owner; the tail is
/// the failover chain.
pub fn preference(slot: u16, nodes: &[NodeId]) -> Vec<NodeId> {
    let mut ranked: Vec<NodeId> = nodes.to_vec();
    ranked.sort_by_key(|&n| (std::cmp::Reverse(weight(slot, n)), n));
    ranked.dedup();
    ranked
}

/// The live owner of `slot`: the highest-weight node among `live`.
/// `None` only when `live` is empty — while at least one node is live,
/// every slot has an owner.
pub fn owner(slot: u16, live: &[NodeId]) -> Option<NodeId> {
    live.iter()
        .copied()
        .max_by_key(|&n| (weight(slot, n), std::cmp::Reverse(n)))
}

/// The live owner of a routing key — [`slot_of`] composed with
/// [`owner`].
pub fn owner_of_key(routing_key: &str, live: &[NodeId]) -> Option<NodeId> {
    owner(slot_of(routing_key), live)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: u16) -> Vec<NodeId> {
        (0..n).map(NodeId).collect()
    }

    #[test]
    fn slots_are_deterministic_and_in_range() {
        for key in ["radial|top=5", "radial|top=10", "rect|", ""] {
            let s = slot_of(key);
            assert_eq!(s, slot_of(key));
            assert!(s < SLOT_COUNT);
        }
    }

    #[test]
    fn routing_keys_spread_one_template_family_across_the_fleet() {
        use fp_geometry::celestial::radial_query_sphere;
        use std::collections::HashSet;

        // One template family ("radial|top=None"), query centers swept
        // around the sky: the cells must differ and the owners must
        // spread — the single-slot pathology the cell suffix exists to
        // prevent.
        let live = fleet(4);
        let mut keys = HashSet::new();
        let mut owners = HashSet::new();
        for step in 0..24 {
            let ra = f64::from(step) * 15.0 + 1.0;
            let sphere = radial_query_sphere(ra, 0.0, 30.0).expect("valid radial query");
            let key = routing_key("radial|top=None", &Region::Sphere(sphere));
            assert!(key.starts_with("radial|top=None|cell="));
            keys.insert(key.clone());
            owners.insert(owner_of_key(&key, &live).unwrap());
        }
        assert!(
            keys.len() >= 16,
            "only {} distinct cells in 24 bands",
            keys.len()
        );
        assert!(owners.len() >= 3, "owners {owners:?} too concentrated");

        // Stability: a contained query near the same center routes to
        // the same owner as its coverer.
        let coverer = radial_query_sphere(100.0, 10.0, 60.0).expect("valid radial query");
        let contained = radial_query_sphere(100.1, 10.1, 5.0).expect("valid radial query");
        assert_eq!(
            routing_key("radial|top=None", &Region::Sphere(coverer)),
            routing_key("radial|top=None", &Region::Sphere(contained))
        );
    }

    #[test]
    fn every_slot_owned_while_any_node_lives() {
        for n in 1..=8 {
            let live = fleet(n);
            for slot in 0..SLOT_COUNT {
                assert!(owner(slot, &live).is_some());
            }
        }
        assert_eq!(owner(0, &[]), None);
    }

    #[test]
    fn owner_is_head_of_preference() {
        let nodes = fleet(5);
        for slot in 0..SLOT_COUNT {
            let pref = preference(slot, &nodes);
            assert_eq!(pref.len(), 5);
            assert_eq!(owner(slot, &nodes), Some(pref[0]));
        }
    }

    #[test]
    fn removing_a_node_only_moves_its_own_slots() {
        let all = fleet(6);
        let survivors: Vec<NodeId> = all.iter().copied().filter(|n| n.0 != 2).collect();
        for slot in 0..SLOT_COUNT {
            let before = owner(slot, &all).unwrap();
            let after = owner(slot, &survivors).unwrap();
            if before.0 != 2 {
                assert_eq!(before, after, "slot {slot} moved without cause");
            }
        }
    }

    #[test]
    fn failover_goes_to_the_next_preference_entry() {
        let nodes = fleet(4);
        for slot in 0..SLOT_COUNT {
            let pref = preference(slot, &nodes);
            let live: Vec<NodeId> = nodes.iter().copied().filter(|&n| n != pref[0]).collect();
            assert_eq!(owner(slot, &live), Some(pref[1]));
        }
    }
}
