//! SWIM-style failure detection on the injectable clock: each node runs
//! one [`Membership`] instance holding its local view of the fleet.
//!
//! The protocol loop ([`Membership::tick`]) is deliberately synchronous
//! and clock-driven — no background threads — so the whole state
//! machine runs deterministically on a
//! [`MockClock`](crate::resilience::MockClock) in tests and on the
//! system clock in a real fleet (a thread calling `tick` at its own
//! pace):
//!
//! 1. Every `ping_interval`, pick the next peer round-robin and ping it
//!    with the full gossip digest; a successful exchange merges the
//!    peer's digest back.
//! 2. On a failed direct ping, ask up to `indirect_probes` other live
//!    peers to probe the target on our behalf (routing around a broken
//!    link between us and an otherwise healthy peer).
//! 3. If direct and indirect probes all fail, the target becomes
//!    **Suspect**; after `suspect_timeout` without a refutation it is
//!    declared **Dead** and its slots stay failed over.
//! 4. A suspected node that hears the rumor about itself refutes it by
//!    bumping its incarnation; a killed node rejoins the same way
//!    (incarnation + 1), which reclaims its slots everywhere the
//!    refreshed entry gossips to.
//!
//! The membership owns no sockets and no proxy handle: all I/O goes
//! through the [`PeerTransport`] passed into `tick`, and every state
//! transition with side effects outside this view (epoch adoption,
//! failover logging, metrics) is surfaced as a [`MembershipEvent`] for
//! the caller to apply. That keeps the state machine a pure function of
//! (clock, transport answers) — the property the deterministic test
//! matrix leans on.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use super::gossip::{GossipEntry, NodeStatus};
use super::peer::PeerTransport;
use super::slots::NodeId;
use crate::resilience::Clock;

/// Tunables of the failure detector. All durations are measured on the
/// injected clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipConfig {
    /// How often `tick` pings the next peer.
    pub ping_interval: Duration,
    /// How long a Suspect verdict stands before hardening to Dead.
    pub suspect_timeout: Duration,
    /// How many live peers to route indirect probes through after a
    /// failed direct ping.
    pub indirect_probes: usize,
}

impl Default for MembershipConfig {
    fn default() -> Self {
        MembershipConfig {
            ping_interval: Duration::from_secs(1),
            suspect_timeout: Duration::from_secs(3),
            indirect_probes: 2,
        }
    }
}

impl MembershipConfig {
    /// Aggressive timings for virtual-clock tests: ping every 20 ms,
    /// suspects harden after 60 ms.
    pub fn fast_test() -> Self {
        MembershipConfig {
            ping_interval: Duration::from_millis(20),
            suspect_timeout: Duration::from_millis(60),
            indirect_probes: 2,
        }
    }
}

/// What this view believes about one peer.
#[derive(Debug, Clone, Copy)]
struct MemberState {
    incarnation: u64,
    status: NodeStatus,
    /// When `status` was last (re)entered, for the suspect timer.
    since: Instant,
    epoch: u64,
    breaker_open: bool,
}

/// A state transition worth acting on outside the membership view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipEvent {
    /// A peer failed direct + indirect probes; its slots fail over now
    /// rather than waiting out the suspect timer (suspicion is cheap to
    /// refute, a hung client request is not).
    Suspected(NodeId),
    /// A suspicion outlived `suspect_timeout` (or a peer relayed a Dead
    /// verdict at the same incarnation).
    Died(NodeId),
    /// A previously Suspect/Dead peer re-announced with a higher
    /// incarnation; its slots are reclaimed.
    Rejoined(NodeId),
    /// Gossip carried a data-release epoch newer than any seen before;
    /// the caller must advance its proxy handle (retiring stale
    /// entries) before serving another query.
    EpochAdvanced(u64),
    /// Someone is spreading a Suspect/Dead rumor about *this* node; the
    /// view refuted it by bumping its own incarnation.
    SelfRefuted,
}

/// One node's live view of the fleet: the SWIM state machine.
pub struct Membership {
    self_id: NodeId,
    cfg: MembershipConfig,
    clock: Arc<dyn Clock>,
    members: BTreeMap<NodeId, MemberState>,
    /// This node's own incarnation (authoritative; only we bump it).
    incarnation: u64,
    /// Our own epoch/breaker facts, refreshed by the caller before
    /// each tick and gossiped outward.
    self_epoch: u64,
    self_breaker_open: bool,
    /// Highest epoch ever observed (ours or gossiped), so
    /// `EpochAdvanced` fires exactly once per advance.
    max_epoch: u64,
    /// Round-robin ping cursor.
    next_ping_at: Instant,
    ping_cursor: usize,
}

impl Membership {
    /// A view for `self_id` over a fleet of `peers` (self included or
    /// not; it is tracked either way), all initially Alive at
    /// incarnation 0.
    pub fn new(
        self_id: NodeId,
        peers: &[NodeId],
        cfg: MembershipConfig,
        clock: Arc<dyn Clock>,
    ) -> Membership {
        let now = clock.now();
        let mut members = BTreeMap::new();
        for &peer in peers.iter().chain(std::iter::once(&self_id)) {
            members.insert(
                peer,
                MemberState {
                    incarnation: 0,
                    status: NodeStatus::Alive,
                    since: now,
                    epoch: 0,
                    breaker_open: false,
                },
            );
        }
        Membership {
            self_id,
            cfg,
            next_ping_at: now,
            clock,
            members,
            incarnation: 0,
            self_epoch: 0,
            self_breaker_open: false,
            max_epoch: 0,
            ping_cursor: 0,
        }
    }

    /// This view's owner.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// This node's current incarnation.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Refreshes the facts gossiped about this node itself: its current
    /// data-release epoch and whether its origin breaker is open.
    /// Callers do this before each tick (and after local epoch bumps).
    pub fn set_self_state(&mut self, epoch: u64, breaker_open: bool) {
        self.self_epoch = epoch;
        self.self_breaker_open = breaker_open;
        self.max_epoch = self.max_epoch.max(epoch);
    }

    /// Re-announces this node after a restart or a network heal: bumps
    /// the incarnation so the fresh Alive claim supersedes any Suspect
    /// or Dead verdict peers hold at the old incarnation.
    pub fn rejoin(&mut self) {
        self.incarnation += 1;
    }

    /// The status this view currently assigns `node`.
    pub fn status_of(&self, node: NodeId) -> Option<NodeStatus> {
        if node == self.self_id {
            return Some(NodeStatus::Alive);
        }
        self.members.get(&node).map(|m| m.status)
    }

    /// Every node this view considers Alive, self always included,
    /// sorted by id. Suspects are excluded: a suspected peer's slots
    /// have already failed over (routing to it would hang clients on a
    /// probably-dead box; if it was healthy all along it refutes and
    /// reclaims within one gossip round).
    pub fn live_nodes(&self) -> Vec<NodeId> {
        let mut live: Vec<NodeId> = self
            .members
            .iter()
            .filter(|(&id, m)| id == self.self_id || m.status == NodeStatus::Alive)
            .map(|(&id, _)| id)
            .collect();
        if !live.contains(&self.self_id) {
            live.push(self.self_id);
            live.sort();
        }
        live
    }

    /// How many peers (self included) currently gossip an open origin
    /// circuit breaker — fleet-wide origin pressure at a glance.
    pub fn breaker_open_count(&self) -> usize {
        let peers_open = self
            .members
            .iter()
            .filter(|(&id, m)| {
                id != self.self_id && m.status == NodeStatus::Alive && m.breaker_open
            })
            .count();
        peers_open + usize::from(self.self_breaker_open)
    }

    /// The highest data-release epoch this view has observed anywhere
    /// in the fleet.
    pub fn max_epoch(&self) -> u64 {
        self.max_epoch
    }

    /// The full gossip digest: one entry per known node, with this
    /// node's own entry carrying its authoritative incarnation and
    /// freshest epoch/breaker facts.
    pub fn digest(&self) -> Vec<GossipEntry> {
        self.members
            .iter()
            .map(|(&id, m)| {
                if id == self.self_id {
                    GossipEntry {
                        node: id,
                        incarnation: self.incarnation,
                        status: NodeStatus::Alive,
                        epoch: self.self_epoch,
                        breaker_open: self.self_breaker_open,
                    }
                } else {
                    GossipEntry {
                        node: id,
                        incarnation: m.incarnation,
                        status: m.status,
                        epoch: m.epoch,
                        breaker_open: m.breaker_open,
                    }
                }
            })
            .collect()
    }

    /// Merges a received digest under the SWIM precedence rules,
    /// returning every transition the caller must act on.
    pub fn merge(&mut self, digest: &[GossipEntry]) -> Vec<MembershipEvent> {
        let now = self.clock.now();
        let mut events = Vec::new();
        for entry in digest {
            if entry.epoch > self.max_epoch {
                self.max_epoch = entry.epoch;
                events.push(MembershipEvent::EpochAdvanced(entry.epoch));
            }
            if entry.node == self.self_id {
                // Rumors about us: refute anything not Alive at our
                // current (or a newer) incarnation.
                if entry.status != NodeStatus::Alive && entry.incarnation >= self.incarnation {
                    self.incarnation = entry.incarnation + 1;
                    events.push(MembershipEvent::SelfRefuted);
                }
                continue;
            }
            let member = self
                .members
                .entry(entry.node)
                .or_insert_with(|| MemberState {
                    incarnation: entry.incarnation,
                    status: entry.status,
                    since: now,
                    epoch: entry.epoch,
                    breaker_open: entry.breaker_open,
                });
            let current = GossipEntry {
                node: entry.node,
                incarnation: member.incarnation,
                status: member.status,
                epoch: member.epoch,
                breaker_open: member.breaker_open,
            };
            if entry.supersedes(&current) {
                let was = member.status;
                member.incarnation = entry.incarnation;
                member.status = entry.status;
                member.since = now;
                match (was, entry.status) {
                    (NodeStatus::Alive, NodeStatus::Suspect) => {
                        events.push(MembershipEvent::Suspected(entry.node));
                    }
                    (NodeStatus::Alive | NodeStatus::Suspect, NodeStatus::Dead) => {
                        events.push(MembershipEvent::Died(entry.node));
                    }
                    (NodeStatus::Suspect | NodeStatus::Dead, NodeStatus::Alive) => {
                        events.push(MembershipEvent::Rejoined(entry.node));
                    }
                    _ => {}
                }
            }
            if member.status == NodeStatus::Alive {
                // Epoch/breaker facts are monotone-fresh from the
                // subject itself via its own digest entry.
                member.epoch = member.epoch.max(entry.epoch);
                member.breaker_open = entry.breaker_open;
            }
        }
        events
    }

    /// Direct evidence from the serving path: a peer probe (not a ping)
    /// failed its deadline and retry. Treated like a failed ping —
    /// suspicion now, slots fail over now — without waiting for the
    /// detector's next round.
    pub fn note_probe_failure(&mut self, peer: NodeId) -> Vec<MembershipEvent> {
        self.fail_peer(peer)
    }

    fn fail_peer(&mut self, peer: NodeId) -> Vec<MembershipEvent> {
        let now = self.clock.now();
        let mut events = Vec::new();
        if let Some(member) = self.members.get_mut(&peer) {
            if member.status == NodeStatus::Alive {
                member.status = NodeStatus::Suspect;
                member.since = now;
                events.push(MembershipEvent::Suspected(peer));
            }
        }
        events
    }

    /// One protocol round: ping the next peer if the interval elapsed,
    /// escalate failed pings through indirect probes, and harden
    /// overdue suspicions to Dead. Cheap when called early (one clock
    /// read), so callers may tick on every request or on a timer.
    pub fn tick(&mut self, transport: &dyn PeerTransport) -> Vec<MembershipEvent> {
        let now = self.clock.now();
        let mut events = Vec::new();

        // Harden overdue suspects first, so a node that stayed silent a
        // whole timeout is Dead even if the ping cursor never returned
        // to it.
        let overdue: Vec<NodeId> = self
            .members
            .iter()
            .filter(|(&id, m)| {
                id != self.self_id
                    && m.status == NodeStatus::Suspect
                    && now.duration_since(m.since) >= self.cfg.suspect_timeout
            })
            .map(|(&id, _)| id)
            .collect();
        for id in overdue {
            if let Some(m) = self.members.get_mut(&id) {
                m.status = NodeStatus::Dead;
                m.since = now;
                events.push(MembershipEvent::Died(id));
            }
        }

        if now < self.next_ping_at {
            return events;
        }
        self.next_ping_at = now + self.cfg.ping_interval;

        // Round-robin target over every non-self member that is not
        // already Dead (Dead nodes are only revived by their own
        // higher-incarnation announcement, which reaches us by gossip
        // or by their ping to us).
        let candidates: Vec<NodeId> = self
            .members
            .iter()
            .filter(|(&id, m)| id != self.self_id && m.status != NodeStatus::Dead)
            .map(|(&id, _)| id)
            .collect();
        if candidates.is_empty() {
            return events;
        }
        let target = candidates[self.ping_cursor % candidates.len()];
        self.ping_cursor = self.ping_cursor.wrapping_add(1);

        let digest = self.digest();
        match transport.ping(self.self_id, target, &digest) {
            Ok(answer) => {
                // A successful exchange is proof of life at the
                // incarnation the peer itself reports.
                if let Some(own) = answer.iter().find(|e| e.node == target) {
                    let alive = GossipEntry {
                        status: NodeStatus::Alive,
                        ..*own
                    };
                    events.extend(self.merge(&[alive]));
                }
                events.extend(self.merge(&answer));
            }
            Err(_) => {
                // Route around a possibly-broken direct link before
                // accusing the target.
                let vias: Vec<NodeId> = candidates
                    .iter()
                    .copied()
                    .filter(|&id| {
                        id != target
                            && self.members.get(&id).map(|m| m.status) == Some(NodeStatus::Alive)
                    })
                    .take(self.cfg.indirect_probes)
                    .collect();
                let reachable = vias
                    .iter()
                    .any(|&via| transport.ping_req(self.self_id, via, target).is_ok());
                if !reachable {
                    events.extend(self.fail_peer(target));
                }
            }
        }
        events
    }
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Membership")
            .field("self_id", &self.self_id)
            .field("incarnation", &self.incarnation)
            .field("live", &self.live_nodes())
            .field("max_epoch", &self.max_epoch)
            .finish()
    }
}
