//! The WAN/server cost model.
//!
//! The paper's response times were measured against the real SkyServer
//! over a Hong Kong ↔ US path in 2003: a no-cache average above 2 s. The
//! origin here is an in-process library call, so the experiment harness
//! charges each origin interaction with a simulated cost computed from the
//! *actual* execution statistics (rows scanned, rows and bytes returned):
//!
//! ```text
//! origin_ms = rtt + server_base
//!           + rows_scanned · scan_us / 1000
//!           + rows_returned · result_us / 1000
//!           + result_bytes / bytes_per_ms
//!           (+ remainder_overhead when the query carries remainder
//!              predicates — "a remainder query is usually more
//!              complicated than the original query", §3.2)
//! ```
//!
//! Proxy-side work (cache checking, local evaluation, merging) is measured
//! in real time and added on top, so the *relative* behaviour the paper
//! reports — where each scheme spends its time — emerges from the same
//! mechanisms rather than from hard-coded constants.

use fp_skyserver::ExecStats;
use serde::{Deserialize, Serialize};

/// Cost-model parameters (milliseconds/microseconds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Round-trip latency proxy ↔ origin (the 2003 HK↔US WAN).
    pub rtt_ms: f64,
    /// Fixed server overhead per query (connection, parse, plan).
    pub server_base_ms: f64,
    /// Server cost per candidate row scanned, microseconds.
    pub scan_us: f64,
    /// Server cost per result row produced, microseconds.
    pub result_us: f64,
    /// WAN throughput, bytes per millisecond (XML results are verbose and
    /// the 2003 transpacific path was slow).
    pub bytes_per_ms: f64,
    /// Extra planning/execution cost charged to remainder queries.
    pub remainder_overhead_ms: f64,
    /// Fixed cost of touching the proxy cache store for one entry
    /// (the paper's proxy opened an XML result file per hit).
    pub cache_hit_base_ms: f64,
    /// Throughput of reading + parsing cached XML result data, bytes per
    /// millisecond. The paper's servlet parsed 2003-era XML from disk; this
    /// is what made its cache hits cost hundreds of milliseconds and its
    /// probe/merge-heavy full semantic caching the *slowest* active scheme
    /// (Figure 6) despite the best cache efficiency.
    pub cache_read_bytes_per_ms: f64,
}

impl Default for CostModel {
    /// Calibrated so the Radial trace reproduces the paper's magnitudes:
    /// no-cache averages land above two seconds, passive around 1.4 s.
    fn default() -> Self {
        CostModel {
            rtt_ms: 600.0,
            server_base_ms: 250.0,
            scan_us: 40.0,
            result_us: 120.0,
            bytes_per_ms: 12.0,
            remainder_overhead_ms: 150.0,
            cache_hit_base_ms: 60.0,
            cache_read_bytes_per_ms: 60.0,
        }
    }
}

impl CostModel {
    /// A near-zero cost model for tests that only check plumbing.
    pub fn free() -> Self {
        CostModel {
            rtt_ms: 0.0,
            server_base_ms: 0.0,
            scan_us: 0.0,
            result_us: 0.0,
            bytes_per_ms: f64::INFINITY,
            remainder_overhead_ms: 0.0,
            cache_hit_base_ms: 0.0,
            cache_read_bytes_per_ms: f64::INFINITY,
        }
    }

    /// Simulated milliseconds for reading `bytes` of cached result data
    /// (one entry access: open + parse).
    pub fn cache_read_ms(&self, bytes: usize) -> f64 {
        let parse = if self.cache_read_bytes_per_ms.is_finite() {
            bytes as f64 / self.cache_read_bytes_per_ms
        } else {
            0.0
        };
        self.cache_hit_base_ms + parse
    }

    /// Simulated milliseconds for one origin interaction.
    pub fn origin_ms(&self, stats: &ExecStats, is_remainder: bool) -> f64 {
        let transfer = if self.bytes_per_ms.is_finite() {
            stats.result_bytes as f64 / self.bytes_per_ms
        } else {
            0.0
        };
        self.rtt_ms
            + self.server_base_ms
            + stats.rows_scanned as f64 * self.scan_us / 1000.0
            + stats.rows_returned as f64 * self.result_us / 1000.0
            + transfer
            + if is_remainder {
                self.remainder_overhead_ms
            } else {
                0.0
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_model_magnitudes() {
        // A typical Radial result: ~2000 candidates scanned, 400 rows,
        // ~40 KB of XML → on the order of the paper's 2-second no-cache
        // average.
        let stats = ExecStats {
            rows_scanned: 2000,
            rows_returned: 400,
            result_bytes: 40_000,
        };
        let ms = CostModel::default().origin_ms(&stats, false);
        assert!((1000.0..6000.0).contains(&ms), "got {ms}");
        // Remainder costs strictly more for the same stats.
        let rem = CostModel::default().origin_ms(&stats, true);
        assert!(rem > ms);
    }

    #[test]
    fn cost_grows_with_result_size() {
        let m = CostModel::default();
        let small = ExecStats {
            rows_scanned: 100,
            rows_returned: 10,
            result_bytes: 1000,
        };
        let large = ExecStats {
            rows_scanned: 100,
            rows_returned: 1000,
            result_bytes: 100_000,
        };
        assert!(m.origin_ms(&large, false) > m.origin_ms(&small, false));
    }

    #[test]
    fn cache_reads_cost_time_by_size() {
        let m = CostModel::default();
        let small = m.cache_read_ms(1_000);
        let large = m.cache_read_ms(30_000);
        assert!(small >= m.cache_hit_base_ms);
        assert!(large > small);
        // A ~25 KB XML result file lands in the paper's few-hundred-ms
        // cache-hit regime.
        let typical = m.cache_read_ms(25_000);
        assert!((100.0..1000.0).contains(&typical), "got {typical}");
        assert_eq!(CostModel::free().cache_read_ms(1 << 30), 0.0);
    }

    #[test]
    fn free_model_is_zero() {
        let stats = ExecStats {
            rows_scanned: 1_000_000,
            rows_returned: 1_000_000,
            result_bytes: usize::MAX / 2,
        };
        assert_eq!(CostModel::free().origin_ms(&stats, true), 0.0);
    }
}
