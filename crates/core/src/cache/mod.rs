//! The proxy cache: result store, replacement, and cache descriptions.

mod description;
mod entry;
mod persist;
mod profit;
mod replace;
mod store;
mod tier;

pub use description::{ArrayDescription, CacheDescription, DescriptionKind, RTreeDescription};
pub use entry::CacheEntry;
pub(crate) use persist::{entry_from_xml, entry_to_xml};
pub use persist::{region_from_xml, region_to_xml, SnapshotLoad};
pub use profit::{ProfitEstimate, ProfitModel, ProfitParams};
pub use replace::Replacement;
pub use store::{CacheStats, CacheStore, ClassifyView};
pub use tier::{
    encode_payload, DemotedEntry, EvictionManager, IoFault, IoOp, SegRef, SlabFile, SlabIo,
    SlabSlice, TierConfig, SLAB_MAGIC, SLAB_VERSION,
};
