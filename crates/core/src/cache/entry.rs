//! Cache entries: one cached query and its result.

use fp_geometry::Region;
use fp_skyserver::ResultSet;

/// One cached query result.
///
/// Entries are immutable once stored; replacement bookkeeping
/// (`last_used`) lives in the store.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Store-assigned id (stable for the entry's lifetime).
    pub id: u64,
    /// Residual group key: only queries with an equal key may be answered
    /// from this entry (same template, same non-spatial parameters, same
    /// `TOP`).
    pub residual_key: String,
    /// The query's spatial region.
    pub region: Region,
    /// The cached result tuples.
    pub result: ResultSet,
    /// Size charged against the cache capacity (serialized XML bytes, the
    /// unit the paper's cache-size fractions are defined in).
    pub bytes: usize,
    /// Whether the result may have been clipped by a `TOP` limit. A
    /// truncated entry can serve exact matches but must not answer
    /// subsumed queries: tuples inside the smaller region may have been
    /// among those clipped away.
    pub truncated: bool,
    /// Canonical SQL text that produced the entry (exact-match key).
    pub exact_sql: String,
}

impl CacheEntry {
    /// Indexes of the coordinate columns inside the result, in region
    /// dimension order.
    ///
    /// Returns `None` when any column is missing — which registration
    /// prevents, so callers treat `None` as "not locally evaluable".
    pub fn coord_indexes(&self, coord_columns: &[String]) -> Option<Vec<usize>> {
        coord_columns
            .iter()
            .map(|c| self.result.column_index(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::HyperRect;
    use fp_sqlmini::Value;

    #[test]
    fn coord_indexes_resolve_in_order() {
        let entry = CacheEntry {
            id: 1,
            residual_key: "k".into(),
            region: Region::Rect(HyperRect::new(vec![0.0], vec![1.0]).unwrap()),
            result: ResultSet {
                columns: vec!["objID".into(), "cz".into(), "cx".into(), "cy".into()],
                rows: vec![vec![
                    Value::Int(1),
                    Value::Float(3.0),
                    Value::Float(1.0),
                    Value::Float(2.0),
                ]],
            },
            bytes: 10,
            truncated: false,
            exact_sql: "SELECT".into(),
        };
        assert_eq!(
            entry.coord_indexes(&["cx".into(), "cy".into(), "cz".into()]),
            Some(vec![2, 3, 1])
        );
        assert_eq!(entry.coord_indexes(&["missing".into()]), None);
    }
}
