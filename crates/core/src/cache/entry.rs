//! Cache entries: one cached query and its result.

use fp_geometry::{HyperRect, Region};
use fp_skyserver::{ColumnarRows, ResultSet};
use std::sync::Arc;
use std::time::Instant;

/// One cached query result.
///
/// Entries are immutable once stored; replacement bookkeeping
/// (`last_used`) lives in the store. The heavy parts — the result tuples,
/// the columnar form, the key strings — sit behind `Arc`s so the runtime
/// can lift them out of the store's lock window and serve hits without
/// deep copies.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// Store-assigned id (stable for the entry's lifetime).
    pub id: u64,
    /// Residual group key: only queries with an equal key may be answered
    /// from this entry (same template, same non-spatial parameters, same
    /// `TOP`). Shared with the store's group and exact maps.
    pub residual_key: Arc<str>,
    /// The query's spatial region.
    pub region: Region,
    /// `region.bounding_rect()`, computed once at insert and reused by
    /// the description index on insert and remove.
    pub bbox: HyperRect,
    /// The cached result tuples.
    pub result: Arc<ResultSet>,
    /// The columnar hot-path form: SoA coordinate columns, spatial
    /// micro-index, and the pre-serialized row slab. `None` when the
    /// entry has no declared coordinate columns or a coordinate cell is
    /// non-numeric (such entries fall back to row-major evaluation).
    pub columnar: Option<Arc<ColumnarRows>>,
    /// Serialized XML size — the unit the paper's cache-size fractions
    /// and the simulation's transfer cost model are defined in.
    pub bytes: usize,
    /// Whether the result may have been clipped by a `TOP` limit. A
    /// truncated entry can serve exact matches but must not answer
    /// subsumed queries: tuples inside the smaller region may have been
    /// among those clipped away.
    pub truncated: bool,
    /// Canonical SQL text that produced the entry (exact-match key).
    pub exact_sql: Arc<str>,
    /// Data-release epoch the entry was fetched under. An epoch bump
    /// retires every entry stamped with a lower value. `0` when the
    /// store has no lifecycle configured.
    pub epoch: u64,
    /// When the entry was inserted, on the store's injectable clock.
    /// `None` when the store is clock-free (lifecycle inactive).
    pub inserted_at: Option<Instant>,
    /// TTL deadline; past it the entry decays through the stale →
    /// grace → dead windows (see [`crate::lifecycle::Freshness`]).
    /// `None` = the entry never expires.
    pub expires_at: Option<Instant>,
}

impl CacheEntry {
    /// Bytes charged against the cache capacity: the XML size plus the
    /// columnar form's heap (SoA columns, micro-index, row slab).
    pub fn footprint(&self) -> usize {
        self.bytes + self.columnar.as_ref().map_or(0, |c| c.heap_bytes())
    }

    /// Indexes of the coordinate columns inside the result, in region
    /// dimension order.
    ///
    /// Returns `None` when any column is missing — which registration
    /// prevents, so callers treat `None` as "not locally evaluable".
    pub fn coord_indexes(&self, coord_columns: &[String]) -> Option<Vec<usize>> {
        coord_columns
            .iter()
            .map(|c| self.result.column_index(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_sqlmini::Value;

    #[test]
    fn coord_indexes_resolve_in_order() {
        let region = Region::Rect(HyperRect::new(vec![0.0], vec![1.0]).unwrap());
        let entry = CacheEntry {
            id: 1,
            residual_key: "k".into(),
            bbox: region.bounding_rect(),
            region,
            result: Arc::new(ResultSet {
                columns: vec!["objID".into(), "cz".into(), "cx".into(), "cy".into()],
                rows: vec![vec![
                    Value::Int(1),
                    Value::Float(3.0),
                    Value::Float(1.0),
                    Value::Float(2.0),
                ]],
            }),
            columnar: None,
            bytes: 10,
            truncated: false,
            exact_sql: "SELECT".into(),
            epoch: 0,
            inserted_at: None,
            expires_at: None,
        };
        assert_eq!(
            entry.coord_indexes(&["cx".into(), "cy".into(), "cz".into()]),
            Some(vec![2, 3, 1])
        );
        assert_eq!(entry.coord_indexes(&["missing".into()]), None);
        assert_eq!(entry.footprint(), 10);
    }
}
