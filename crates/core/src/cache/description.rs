//! Cache descriptions: the index over cached query regions.
//!
//! The paper compares two implementations — a flat array scanned linearly
//! ("ACNR") and an R-tree ("ACR") — and finds they perform about the same
//! at realistic sizes, with the array winning on maintenance cost. Both
//! live behind one trait so the proxy (and the benchmarks) can swap them.

use fp_geometry::HyperRect;
use fp_rtree::RTree;

/// Index over the bounding boxes of cached query regions.
///
/// `candidates` must return a superset of the entries whose *regions*
/// relate to the probe (bounding boxes over-approximate regions); the
/// caller re-checks candidates with exact region tests.
pub trait CacheDescription: Send {
    /// Adds an entry.
    fn insert(&mut self, id: u64, bbox: HyperRect);
    /// Removes an entry; returns whether it was present.
    fn remove(&mut self, id: u64, bbox: &HyperRect) -> bool;
    /// Appends ids whose bounding box intersects `bbox` to `out`.
    fn candidates(&self, bbox: &HyperRect, out: &mut Vec<u64>);
    /// Number of indexed entries.
    fn len(&self) -> usize;
    /// Whether the description is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Implementation name for metrics ("array" / "rtree").
    fn kind(&self) -> DescriptionKind;
}

/// Which description implementation to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DescriptionKind {
    /// Flat array with linear scans — the paper's "ACNR".
    Array,
    /// R-tree — the paper's "ACR".
    RTree,
}

impl DescriptionKind {
    /// Creates an empty description of this kind for `dims`-dimensional
    /// regions.
    pub fn make(self, dims: usize) -> Box<dyn CacheDescription> {
        match self {
            DescriptionKind::Array => Box::new(ArrayDescription::new(dims)),
            DescriptionKind::RTree => Box::new(RTreeDescription::new(dims)),
        }
    }
}

impl std::fmt::Display for DescriptionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DescriptionKind::Array => "array",
            DescriptionKind::RTree => "rtree",
        })
    }
}

/// The linear-scan description ("ACNR").
#[derive(Debug, Default)]
pub struct ArrayDescription {
    #[allow(dead_code)]
    dims: usize,
    entries: Vec<(u64, HyperRect)>,
}

impl ArrayDescription {
    /// An empty array description.
    pub fn new(dims: usize) -> Self {
        ArrayDescription {
            dims,
            entries: Vec::new(),
        }
    }
}

impl CacheDescription for ArrayDescription {
    fn insert(&mut self, id: u64, bbox: HyperRect) {
        self.entries.push((id, bbox));
    }

    fn remove(&mut self, id: u64, _bbox: &HyperRect) -> bool {
        match self.entries.iter().position(|(e, _)| *e == id) {
            Some(i) => {
                self.entries.swap_remove(i);
                true
            }
            None => false,
        }
    }

    fn candidates(&self, bbox: &HyperRect, out: &mut Vec<u64>) {
        for (id, r) in &self.entries {
            if r.intersects_rect(bbox) {
                out.push(*id);
            }
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn kind(&self) -> DescriptionKind {
        DescriptionKind::Array
    }
}

/// The R-tree description ("ACR").
#[derive(Debug)]
pub struct RTreeDescription {
    tree: RTree<u64>,
}

impl RTreeDescription {
    /// An empty R-tree description.
    pub fn new(dims: usize) -> Self {
        RTreeDescription {
            tree: RTree::new(dims),
        }
    }
}

impl CacheDescription for RTreeDescription {
    fn insert(&mut self, id: u64, bbox: HyperRect) {
        self.tree.insert(bbox, id);
    }

    fn remove(&mut self, id: u64, bbox: &HyperRect) -> bool {
        self.tree.remove_one(bbox, |v| *v == id).is_some()
    }

    fn candidates(&self, bbox: &HyperRect, out: &mut Vec<u64>) {
        for (_, id) in self.tree.search_intersecting(bbox) {
            out.push(*id);
        }
    }

    fn len(&self) -> usize {
        self.tree.len()
    }

    fn kind(&self) -> DescriptionKind {
        DescriptionKind::RTree
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: f64, hi: f64) -> HyperRect {
        HyperRect::new(vec![lo, lo], vec![hi, hi]).unwrap()
    }

    fn exercise(mut d: Box<dyn CacheDescription>) {
        assert!(d.is_empty());
        d.insert(1, rect(0.0, 1.0));
        d.insert(2, rect(5.0, 6.0));
        d.insert(3, rect(0.5, 5.5));
        assert_eq!(d.len(), 3);

        let mut out = Vec::new();
        d.candidates(&rect(0.8, 0.9), &mut out);
        out.sort_unstable();
        assert_eq!(out, vec![1, 3]);

        assert!(d.remove(3, &rect(0.5, 5.5)));
        assert!(!d.remove(3, &rect(0.5, 5.5)));
        out.clear();
        d.candidates(&rect(0.8, 0.9), &mut out);
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn array_description_contract() {
        exercise(DescriptionKind::Array.make(2));
    }

    #[test]
    fn rtree_description_contract() {
        exercise(DescriptionKind::RTree.make(2));
    }

    #[test]
    fn kinds_report_themselves() {
        assert_eq!(
            DescriptionKind::Array.make(3).kind(),
            DescriptionKind::Array
        );
        assert_eq!(
            DescriptionKind::RTree.make(3).kind(),
            DescriptionKind::RTree
        );
        assert_eq!(DescriptionKind::Array.to_string(), "array");
        assert_eq!(DescriptionKind::RTree.to_string(), "rtree");
    }

    #[test]
    fn implementations_agree_on_random_workload() {
        let mut array = DescriptionKind::Array.make(2);
        let mut rtree = DescriptionKind::RTree.make(2);
        // Deterministic pseudo-random boxes.
        let mut state = 12345u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64) / (u32::MAX as f64) * 100.0
        };
        let mut boxes = Vec::new();
        for id in 0..200u64 {
            let lo = next();
            let r = HyperRect::new(vec![lo, lo], vec![lo + 1.0 + next() * 0.1, lo + 1.5]).unwrap();
            array.insert(id, r.clone());
            rtree.insert(id, r.clone());
            boxes.push((id, r));
        }
        for probe in 0..50 {
            let lo = probe as f64 * 2.0;
            let window = HyperRect::new(vec![lo, lo], vec![lo + 3.0, lo + 3.0]).unwrap();
            let mut a = Vec::new();
            let mut b = Vec::new();
            array.candidates(&window, &mut a);
            rtree.candidates(&window, &mut b);
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "probe {probe}");
        }
    }
}
