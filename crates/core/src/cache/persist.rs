//! Cache persistence: the paper's proxy keeps its cached results as XML
//! files on disk ("Query Result Files" in its Figure 4 architecture) so
//! the cache survives servlet restarts. This module provides the same
//! durability: a snapshot writes every entry as one self-describing XML
//! document, and a load rebuilds the store — including the cache
//! descriptions — from those files.
//!
//! Floating-point fidelity matters here (regions are compared with tight
//! tolerances), so numbers are written with Rust's shortest-roundtrip
//! formatting and parsed back exactly.

use crate::cache::entry::CacheEntry;
use crate::cache::store::CacheStore;
use crate::lifecycle::LifecycleStamp;
use fp_geometry::{HalfSpace, HyperRect, HyperSphere, Point, Polytope, Region};
use fp_skyserver::ResultSet;
use fp_xmlite::Element;
use std::io;
use std::path::Path;
use std::time::Instant;

impl CacheStore {
    /// Writes every cached entry to `dir` (created if absent) as
    /// `entry_<id>.xml`. Pre-existing entry files in the directory are
    /// removed first so the snapshot is exact.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_snapshot(&self, dir: &Path) -> io::Result<usize> {
        std::fs::create_dir_all(dir)?;
        for existing in std::fs::read_dir(dir)? {
            let path = existing?.path();
            let is_entry = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("entry_") && n.ends_with(".xml"));
            if is_entry {
                std::fs::remove_file(path)?;
            }
        }
        let now = self.now();
        let mut written = 0;
        for entry in self.iter_entries() {
            let doc = entry_to_xml(entry, now);
            std::fs::write(
                dir.join(format!("entry_{}.xml", entry.id)),
                doc.to_xml_pretty(),
            )?;
            written += 1;
        }
        Ok(written)
    }

    /// Loads every `entry_*.xml` in `dir` into this store (on top of its
    /// current contents; typically called on an empty store). Unreadable
    /// or malformed files are skipped and reported in the error count —
    /// a proxy should come up with a partial cache rather than not at all.
    ///
    /// # Errors
    /// Propagates the directory-listing error only.
    pub fn load_snapshot(&mut self, dir: &Path) -> io::Result<SnapshotLoad> {
        let mut load = SnapshotLoad::default();
        for file in std::fs::read_dir(dir)? {
            let path = file?.path();
            let is_entry = path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("entry_") && n.ends_with(".xml"));
            if !is_entry {
                continue;
            }
            let parsed = std::fs::read_to_string(&path)
                .ok()
                .and_then(|text| Element::parse(&text).ok())
                .and_then(|doc| entry_from_xml(&doc));
            match parsed {
                Some(((residual_key, region, result, truncated, sql, coord_idx), stamp)) => {
                    let restored = self.insert_restored(
                        &residual_key,
                        region,
                        result,
                        truncated,
                        &sql,
                        &coord_idx,
                        &stamp,
                    );
                    if restored.is_some() {
                        load.loaded += 1;
                    }
                }
                None => load.skipped += 1,
            }
        }
        Ok(load)
    }
}

/// Outcome of a snapshot load.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotLoad {
    /// Entries restored.
    pub loaded: usize,
    /// Files present but unreadable/malformed (skipped).
    pub skipped: usize,
}

/// Serializes one entry as a self-describing XML document. When `now`
/// is given (a clocked store), the entry's lifecycle stamp rides along
/// as *relative* times: its age and the signed milliseconds left until
/// its TTL deadline — `Instant`s don't survive a restart, offsets do.
pub(crate) fn entry_to_xml(entry: &CacheEntry, now: Option<Instant>) -> Element {
    let mut doc = Element::new("CacheEntry")
        .with_attr("truncated", if entry.truncated { "1" } else { "0" })
        .with_child(Element::new("ResidualKey").with_text(&*entry.residual_key))
        .with_child(Element::new("Sql").with_text(&*entry.exact_sql))
        .with_child(region_to_xml(&entry.region));
    if entry.epoch > 0 {
        doc = doc.with_attr("epoch", entry.epoch.to_string());
    }
    if let (Some(now), Some(at)) = (now, entry.inserted_at) {
        doc = doc.with_attr(
            "age_ms",
            now.saturating_duration_since(at).as_millis().to_string(),
        );
    }
    if let (Some(now), Some(deadline)) = (now, entry.expires_at) {
        let remaining_ms = if deadline >= now {
            i128::from(u64::try_from(deadline.duration_since(now).as_millis()).unwrap_or(u64::MAX))
        } else {
            -i128::from(u64::try_from(now.duration_since(deadline).as_millis()).unwrap_or(u64::MAX))
        };
        doc = doc.with_attr("remaining_ms", remaining_ms.to_string());
    }
    // Persist the coordinate column indexes so a reload rebuilds the
    // columnar hot-path form without knowing the template registry.
    if let Some(col) = &entry.columnar {
        let mut ci = Element::new("CoordIdx");
        for &i in col.coord_idx() {
            ci.push_child(Element::new("I").with_text(i.to_string()));
        }
        doc.push_child(ci);
    }
    doc.push_child(entry.result.to_xml());
    doc
}

type ParsedEntry = (String, Region, ResultSet, bool, String, Vec<usize>);

pub(crate) fn entry_from_xml(doc: &Element) -> Option<(ParsedEntry, LifecycleStamp)> {
    if doc.name() != "CacheEntry" {
        return None;
    }
    let residual_key = doc.child_text("ResidualKey")?.to_string();
    let sql = doc.child_text("Sql")?.to_string();
    let truncated = doc.attr("truncated") == Some("1");
    let region = region_from_xml(doc.child("Region")?)?;
    let result = ResultSet::from_xml(doc.child("ResultSet")?)?;
    // Absent in pre-columnar snapshots: entries load without the
    // columnar form, exactly as a non-coordinate entry would.
    let coord_idx: Vec<usize> = match doc.child("CoordIdx") {
        Some(ci) => ci
            .children_named("I")
            .map(|i| i.text().parse::<usize>().ok())
            .collect::<Option<Vec<usize>>>()?,
        None => Vec::new(),
    };
    // Absent lifecycle attributes (pre-lifecycle snapshots) restore as
    // epoch 0, ageless, never expiring — exactly how they were cached.
    let stamp = LifecycleStamp {
        epoch: doc.attr("epoch").and_then(|v| v.parse().ok()).unwrap_or(0),
        age_ms: doc.attr("age_ms").and_then(|v| v.parse().ok()),
        remaining_ms: doc.attr("remaining_ms").and_then(|v| v.parse().ok()),
    };
    Some((
        (residual_key, region, result, truncated, sql, coord_idx),
        stamp,
    ))
}

/// Shortest-roundtrip float text.
fn num(v: f64) -> String {
    format!("{v:?}")
}

fn nums(tag: &str, values: &[f64]) -> Element {
    let mut el = Element::new(tag);
    for v in values {
        el.push_child(Element::new("N").with_text(num(*v)));
    }
    el
}

fn parse_nums(el: &Element) -> Option<Vec<f64>> {
    el.children_named("N")
        .map(|n| n.text().parse::<f64>().ok())
        .collect()
}

/// Serializes a region as XML (concrete numbers, unlike the parameterized
/// function-template form).
pub fn region_to_xml(region: &Region) -> Element {
    let mut el = Element::new("Region");
    match region {
        Region::Sphere(s) => {
            el.push_child(
                Element::new("Sphere")
                    .with_child(nums("Center", s.center().coords()))
                    .with_child(Element::new("Radius").with_text(num(s.radius()))),
            );
        }
        Region::Rect(r) => {
            el.push_child(
                Element::new("Rect")
                    .with_child(nums("Lo", r.lo()))
                    .with_child(nums("Hi", r.hi())),
            );
        }
        Region::Polytope(p) => {
            let mut poly = Element::new("Polytope")
                .with_child(nums("BBoxLo", p.bbox().lo()))
                .with_child(nums("BBoxHi", p.bbox().hi()));
            for face in p.faces() {
                poly.push_child(
                    Element::new("Face")
                        .with_child(nums("Normal", face.normal()))
                        .with_child(Element::new("Offset").with_text(num(face.offset()))),
                );
            }
            el.push_child(poly);
        }
    }
    el
}

/// Parses the XML region form.
pub fn region_from_xml(el: &Element) -> Option<Region> {
    if el.name() != "Region" {
        return None;
    }
    if let Some(s) = el.child("Sphere") {
        let center = parse_nums(s.child("Center")?)?;
        let radius: f64 = s.child_text("Radius")?.parse().ok()?;
        return Some(Region::Sphere(
            HyperSphere::new(Point::new(center).ok()?, radius).ok()?,
        ));
    }
    if let Some(r) = el.child("Rect") {
        let lo = parse_nums(r.child("Lo")?)?;
        let hi = parse_nums(r.child("Hi")?)?;
        return Some(Region::Rect(HyperRect::new(lo, hi).ok()?));
    }
    if let Some(p) = el.child("Polytope") {
        let lo = parse_nums(p.child("BBoxLo")?)?;
        let hi = parse_nums(p.child("BBoxHi")?)?;
        let bbox = HyperRect::new(lo, hi).ok()?;
        let mut faces = Vec::new();
        for f in p.children_named("Face") {
            let normal = parse_nums(f.child("Normal")?)?;
            let offset: f64 = f.child_text("Offset")?.parse().ok()?;
            faces.push(HalfSpace::new(normal, offset).ok()?);
        }
        return Some(Region::Polytope(Polytope::new(faces, bbox).ok()?));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::DescriptionKind;
    use fp_sqlmini::Value;

    fn sample_regions() -> Vec<Region> {
        vec![
            Region::Sphere(
                HyperSphere::new(Point::from_slice(&[0.1, -0.25, 1.0 / 3.0]), 0.0087266).unwrap(),
            ),
            Region::Rect(HyperRect::new(vec![184.0, -1.5], vec![186.25, 0.75]).unwrap()),
            Region::Polytope(Polytope::from_rect(
                &HyperRect::new(vec![0.0, 0.0], vec![1.0, 2.0]).unwrap(),
            )),
        ]
    }

    #[test]
    fn region_xml_roundtrips_bit_exactly() {
        for region in sample_regions() {
            let xml = region_to_xml(&region);
            // Through text, as a real file would go.
            let reparsed = Element::parse(&xml.to_xml_pretty()).unwrap();
            let back = region_from_xml(&reparsed).unwrap();
            assert_eq!(back, region);
        }
    }

    #[test]
    fn snapshot_roundtrips_a_store() {
        let dir = std::env::temp_dir().join(format!("fp_snap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        let mut store = CacheStore::new(DescriptionKind::Array, None);
        let rs = ResultSet {
            columns: vec!["objID".into(), "cx".into()],
            rows: vec![
                vec![Value::Int(7), Value::Float(0.125)],
                vec![Value::Int(9), Value::Null],
            ],
        };
        // One group per region: groups are per-template in real use, so
        // dimensionalities never mix within one cache description.
        for (i, region) in sample_regions().into_iter().enumerate() {
            store.insert(
                &format!("group{i}"),
                region,
                rs.clone(),
                i == 1,
                &format!("SELECT {i}"),
                &[],
            );
        }
        let written = store.save_snapshot(&dir).unwrap();
        assert_eq!(written, 3);

        let mut restored = CacheStore::new(DescriptionKind::RTree, None);
        let load = restored.load_snapshot(&dir).unwrap();
        assert_eq!(load.loaded, 3);
        assert_eq!(load.skipped, 0);
        assert_eq!(restored.stats().entries, 3);

        // Exact-match map, regions, truncation flags, and results survive.
        let id = restored.lookup_exact("SELECT 1").unwrap();
        let entry = restored.peek(id).unwrap();
        assert!(entry.truncated);
        assert_eq!(*entry.result, rs);
        assert_eq!(&*entry.residual_key, "group1");
        // Candidates work after reload (descriptions rebuilt).
        let probe = sample_regions()[1].clone();
        assert_eq!(restored.candidates("group1", &probe).len(), 1);

        // Malformed files are skipped, not fatal.
        std::fs::write(dir.join("entry_999.xml"), "<wat>").unwrap();
        let mut again = CacheStore::new(DescriptionKind::Array, None);
        let load = again.load_snapshot(&dir).unwrap();
        assert_eq!(load.loaded, 3);
        assert_eq!(load.skipped, 1);

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn columnar_form_survives_reload() {
        let dir = std::env::temp_dir().join(format!("fp_snap3_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CacheStore::new(DescriptionKind::Array, None);
        let rs = ResultSet {
            columns: vec!["objID".into(), "cx".into(), "cy".into()],
            rows: (0..6)
                .map(|i| {
                    vec![
                        Value::Int(i),
                        Value::Float(i as f64 * 0.1),
                        Value::Float(i as f64 * 0.2),
                    ]
                })
                .collect(),
        };
        let coords = ["cx".to_string(), "cy".to_string()];
        let id = store
            .insert("g", sample_regions()[1].clone(), rs, false, "Q", &coords)
            .unwrap();
        let before = store.peek(id).unwrap();
        assert!(before.columnar.is_some());
        let footprint = before.footprint();
        store.save_snapshot(&dir).unwrap();

        let mut restored = CacheStore::new(DescriptionKind::Array, None);
        assert_eq!(restored.load_snapshot(&dir).unwrap().loaded, 1);
        let rid = restored.lookup_exact("Q").unwrap();
        let entry = restored.peek(rid).unwrap();
        let col = entry.columnar.as_ref().expect("columnar rebuilt on load");
        assert_eq!(col.coord_idx(), &[1, 2]);
        assert_eq!(entry.footprint(), footprint);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn save_replaces_stale_entry_files() {
        let dir = std::env::temp_dir().join(format!("fp_snap2_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = CacheStore::new(DescriptionKind::Array, None);
        let rs = ResultSet {
            columns: vec!["objID".into()],
            rows: vec![vec![Value::Int(1)]],
        };
        store.insert(
            "g",
            sample_regions()[0].clone(),
            rs.clone(),
            false,
            "A",
            &[],
        );
        store.save_snapshot(&dir).unwrap();
        // Second snapshot with different contents must not leak the first.
        let mut store2 = CacheStore::new(DescriptionKind::Array, None);
        store2.insert("g", sample_regions()[1].clone(), rs, false, "B", &[]);
        let written = store2.save_snapshot(&dir).unwrap();
        assert_eq!(written, 1);
        let mut restored = CacheStore::new(DescriptionKind::Array, None);
        assert_eq!(restored.load_snapshot(&dir).unwrap().loaded, 1);
        assert!(restored.lookup_exact("B").is_some());
        assert!(restored.lookup_exact("A").is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
