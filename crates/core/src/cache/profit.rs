//! The per-template profit model behind adaptive scheme selection.
//!
//! The paper's headline nuance is that the "First" scheme (full
//! semantic caching, with probe + remainder handling of general
//! overlap) often *loses* to the simpler "Second"/"Third" schemes —
//! but which scheme wins depends on origin latency, result sizes, and
//! workload skew, none of which are knowable at configuration time.
//! The proxy measures all of them live, so ROADMAP item 4 makes the
//! scheme a runtime decision: this module folds the observed
//! [`QueryMetrics`] stream into per-template cost estimates and picks
//! the scheme with the lowest expected response time.
//!
//! # How it works
//!
//! For each template the model keeps (a) the observed *relationship
//! mix* — how often an incoming query is an exact match, contained,
//! region-contained, overlapping, or disjoint with respect to the
//! cache — and (b) an EWMA of the measured response time for each of
//! those serve classes (full origin fetch, local evaluation, probe +
//! remainder round trip, …). The expected per-request cost of a scheme
//! is then the mix-weighted sum of the class costs *that scheme
//! actually uses*: a scheme that forwards overlaps pays the forward
//! price on the overlap fraction, one that handles them pays the
//! remainder price. Picking the cheapest scheme reproduces the paper's
//! verdict automatically — when remainder trips cost more than full
//! fetches, "Second" beats "First"; when the origin is far away,
//! "First" wins.
//!
//! # The state machine
//!
//! Relationship rates are only *observable* under full semantic
//! caching (a scheme that forwards overlaps never finds out how many
//! overlaps it forwent), so each template runs a three-state loop:
//!
//! ```text
//!            samples ≥ explore_samples
//!  Explore ────────────────────────────▶ Committed(scheme)
//!    ▲                                        │
//!    └────────────────────────────────────────┘
//!            every reeval_every requests
//! ```
//!
//! During `Explore` the template serves with [`Scheme::FullSemantic`]
//! and both the mix and the class costs update; during `Committed` only
//! the class costs the chosen scheme exercises keep updating, and the
//! mix stays frozen at its last explored value. Re-entering `Explore`
//! periodically refreshes the mix, so workload drift (hotspot moves,
//! radius changes) eventually re-decides the scheme. A committed
//! scheme is only displaced when the challenger is at least
//! `hysteresis` cheaper, so estimate noise cannot flap the choice.

use crate::metrics::{Outcome, QueryMetrics};
use crate::schemes::Scheme;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Tunables for the adaptive scheme selector. The defaults favour
/// stability: a template must be seen ~dozens of times before its
/// scheme moves off full semantic caching.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfitParams {
    /// Requests a template serves under full semantic caching before
    /// its first scheme decision (the initial exploration window).
    pub explore_samples: u32,
    /// Length of the periodic re-exploration windows that refresh the
    /// relationship mix after a scheme has been committed.
    pub refresh_samples: u32,
    /// Committed requests between re-exploration windows.
    pub reeval_every: u32,
    /// Fractional advantage a challenger scheme needs over the
    /// incumbent to displace it (0.1 = 10% cheaper).
    pub hysteresis: f64,
    /// EWMA smoothing factor for the class-cost estimates, in (0, 1];
    /// higher weights recent observations more.
    pub alpha: f64,
}

impl Default for ProfitParams {
    fn default() -> Self {
        ProfitParams {
            explore_samples: 48,
            refresh_samples: 16,
            reeval_every: 512,
            hysteresis: 0.10,
            alpha: 0.05,
        }
    }
}

/// Where a template sits in the explore/commit loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Serving [`Scheme::FullSemantic`] to observe the relationship
    /// mix; decides (or re-decides) after `remaining` more requests.
    Explore { remaining: u32 },
    /// Serving the chosen scheme; re-explores after `until_reeval`
    /// more requests.
    Committed { until_reeval: u32 },
}

/// Per-serve-class observation slots, indexed by [`Outcome`].
const CLASSES: usize = 5;

fn class_index(outcome: Outcome) -> usize {
    match outcome {
        Outcome::Exact => 0,
        Outcome::Contained => 1,
        Outcome::RegionContainment => 2,
        Outcome::Overlap => 3,
        Outcome::Forwarded => 4,
    }
}

/// One template's running estimates.
#[derive(Debug, Clone)]
struct TemplateProfit {
    phase: Phase,
    /// Current scheme choice (starts at full semantic for exploration).
    scheme: Scheme,
    /// Relationship-mix counts observed during exploration windows.
    mix: [u64; CLASSES],
    /// EWMA response time per serve class, ms; `None` until observed.
    class_ms: [Option<f64>; CLASSES],
    /// EWMA of rows served from cache per request (the reuse signal
    /// behind the time-saved-per-byte estimate).
    reused_rows: f64,
    /// EWMA of total rows returned per request.
    total_rows: f64,
    /// Total requests observed.
    samples: u64,
}

impl TemplateProfit {
    fn new(params: &ProfitParams) -> Self {
        TemplateProfit {
            phase: Phase::Explore {
                remaining: params.explore_samples,
            },
            scheme: Scheme::FullSemantic,
            mix: [0; CLASSES],
            class_ms: [None; CLASSES],
            reused_rows: 0.0,
            total_rows: 0.0,
            samples: 0,
        }
    }

    fn ewma(slot: &mut Option<f64>, value: f64, alpha: f64) {
        *slot = Some(match *slot {
            Some(prev) => prev + alpha * (value - prev),
            None => value,
        });
    }

    /// Expected per-request response time under `scheme`, given the
    /// observed mix and class costs. Classes the scheme does not handle
    /// are served at the forward price; classes never yet observed cost
    /// the forward price too (no evidence of benefit ⇒ none assumed).
    fn expected_ms(&self, scheme: Scheme) -> f64 {
        let total: u64 = self.mix.iter().sum();
        if total == 0 {
            return f64::INFINITY;
        }
        // Without a single observed forward we have no baseline; treat
        // the origin as free so the model refuses to commit (callers
        // stay in exploration until a forward has been seen).
        let forward_ms = match self.class_ms[class_index(Outcome::Forwarded)] {
            Some(ms) => ms,
            None => return f64::INFINITY,
        };
        let class_cost = |class: usize, handled: bool| -> f64 {
            if !handled {
                return forward_ms;
            }
            self.class_ms[class].unwrap_or(forward_ms)
        };
        let handled = |outcome: Outcome| match outcome {
            Outcome::Exact => scheme.caches(),
            Outcome::Contained => scheme.is_active(),
            Outcome::RegionContainment => scheme.handles_region_containment(),
            Outcome::Overlap => scheme.handles_overlap(),
            Outcome::Forwarded => false,
        };
        let mut sum = 0.0;
        for outcome in [
            Outcome::Exact,
            Outcome::Contained,
            Outcome::RegionContainment,
            Outcome::Overlap,
            Outcome::Forwarded,
        ] {
            let class = class_index(outcome);
            sum += self.mix[class] as f64 * class_cost(class, handled(outcome));
        }
        sum / total as f64
    }

    /// Estimated milliseconds saved per row held, relative to
    /// forwarding everything — the "time saved per byte" figure of
    /// ROADMAP item 4, with the EWMA result row count standing in for
    /// bytes (rows are what both tiers charge by).
    fn saved_ms_per_row(&self, scheme: Scheme) -> f64 {
        let baseline = self.expected_ms(Scheme::NoCache);
        let cost = self.expected_ms(scheme);
        if !baseline.is_finite() || !cost.is_finite() || self.total_rows <= 0.0 {
            return 0.0;
        }
        (baseline - cost) / self.total_rows
    }
}

/// A snapshot of one template's estimates, for observability and tests.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfitEstimate {
    /// The scheme currently chosen for the template.
    pub scheme: Scheme,
    /// Whether the template is in an exploration window (serving full
    /// semantic caching regardless of `scheme`).
    pub exploring: bool,
    /// Requests observed so far.
    pub samples: u64,
    /// Expected per-request response time of the chosen scheme, ms.
    pub expected_ms: f64,
    /// Expected per-request response time of forwarding everything, ms.
    pub no_cache_ms: f64,
    /// Estimated ms saved per result row held, vs. forwarding.
    pub saved_ms_per_row: f64,
}

/// The adaptive cost model: per-template profit estimates plus the
/// scheme decisions derived from them. One instance lives in the
/// runtime; `observe` is called once per finished request and
/// `scheme_for` once per arriving request.
pub struct ProfitModel {
    params: ProfitParams,
    templates: Mutex<HashMap<String, TemplateProfit>>,
    switches: AtomicUsize,
}

impl ProfitModel {
    /// A model with the given tunables.
    pub fn new(params: ProfitParams) -> Self {
        ProfitModel {
            params,
            templates: Mutex::new(HashMap::new()),
            switches: AtomicUsize::new(0),
        }
    }

    /// The scheme to serve `template`'s next request with. Unknown and
    /// exploring templates serve full semantic caching (the only scheme
    /// that observes every relationship class).
    pub fn scheme_for(&self, template: &str) -> Scheme {
        let templates = self.templates.lock().expect("profit lock");
        match templates.get(template) {
            Some(t) => match t.phase {
                Phase::Explore { .. } => Scheme::FullSemantic,
                Phase::Committed { .. } => t.scheme,
            },
            None => Scheme::FullSemantic,
        }
    }

    /// Folds one finished request into the template's estimates and
    /// advances its explore/commit state machine.
    pub fn observe(&self, template: &str, metrics: &QueryMetrics) {
        let mut templates = self.templates.lock().expect("profit lock");
        let t = templates
            .entry(template.to_string())
            .or_insert_with(|| TemplateProfit::new(&self.params));
        t.samples += 1;
        let class = class_index(metrics.outcome);
        TemplateProfit::ewma(
            &mut t.class_ms[class],
            metrics.response_ms,
            self.params.alpha,
        );
        let alpha = self.params.alpha;
        t.reused_rows += alpha * (metrics.rows_from_cache as f64 - t.reused_rows);
        t.total_rows += alpha * (metrics.rows_total as f64 - t.total_rows);
        match t.phase {
            Phase::Explore { remaining } => {
                // Only exploration requests update the relationship
                // mix: they are the ones served by the scheme that can
                // observe every class.
                t.mix[class] += 1;
                if remaining > 1 {
                    t.phase = Phase::Explore {
                        remaining: remaining - 1,
                    };
                } else if self.decide(t) {
                    t.phase = Phase::Committed {
                        until_reeval: self.params.reeval_every,
                    };
                } else {
                    // No baseline yet (not one forward observed):
                    // keep exploring a short window at a time.
                    t.phase = Phase::Explore {
                        remaining: self.params.refresh_samples,
                    };
                }
            }
            Phase::Committed { until_reeval } => {
                if until_reeval > 1 {
                    t.phase = Phase::Committed {
                        until_reeval: until_reeval - 1,
                    };
                } else {
                    t.phase = Phase::Explore {
                        remaining: self.params.refresh_samples,
                    };
                }
            }
        }
    }

    /// Picks the cheapest scheme for `t`, honouring hysteresis against
    /// the incumbent. Returns `false` when no decision is possible yet
    /// (no forward observed ⇒ no baseline).
    fn decide(&self, t: &mut TemplateProfit) -> bool {
        let mut best = t.scheme;
        let mut best_ms = t.expected_ms(t.scheme);
        if !best_ms.is_finite() {
            return false;
        }
        for scheme in Scheme::all() {
            let ms = t.expected_ms(scheme);
            if ms < best_ms * (1.0 - self.params.hysteresis) {
                best = scheme;
                best_ms = ms;
            }
        }
        if best != t.scheme {
            t.scheme = best;
            self.switches.fetch_add(1, Ordering::Relaxed);
        }
        true
    }

    /// How many times any template's committed scheme has changed.
    pub fn switches(&self) -> usize {
        self.switches.load(Ordering::Relaxed)
    }

    /// The template's current estimates, when it has been observed.
    pub fn estimate(&self, template: &str) -> Option<ProfitEstimate> {
        let templates = self.templates.lock().expect("profit lock");
        let t = templates.get(template)?;
        Some(ProfitEstimate {
            scheme: t.scheme,
            exploring: matches!(t.phase, Phase::Explore { .. }),
            samples: t.samples,
            expected_ms: t.expected_ms(t.scheme),
            no_cache_ms: t.expected_ms(Scheme::NoCache),
            saved_ms_per_row: t.saved_ms_per_row(t.scheme),
        })
    }

    /// Number of templates tracked.
    pub fn templates_tracked(&self) -> usize {
        self.templates.lock().expect("profit lock").len()
    }
}

impl Default for ProfitModel {
    fn default() -> Self {
        Self::new(ProfitParams::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(outcome: Outcome, response_ms: f64) -> QueryMetrics {
        QueryMetrics {
            outcome,
            response_ms,
            sim_ms: response_ms,
            proxy_ms: 0.0,
            check_ms: 0.0,
            local_ms: 0.0,
            rows_total: 100,
            rows_from_cache: if outcome == Outcome::Forwarded {
                0
            } else {
                100
            },
            coalesced: false,
            lock_wait_ms: 0.0,
            rows_scanned: 0,
            rows_pruned: 0,
            local_fallback: false,
            degraded: false,
            stale: false,
            entry_age_ms: 0.0,
            disk_hit: false,
        }
    }

    fn drive(model: &ProfitModel, template: &str, rounds: usize, overlap_ms: f64) {
        // A mix where overlap handling saves (or costs) `overlap_ms`
        // relative to the 1000 ms forward price.
        for _ in 0..rounds {
            model.observe(template, &metrics(Outcome::Exact, 5.0));
            model.observe(template, &metrics(Outcome::Contained, 20.0));
            model.observe(template, &metrics(Outcome::Overlap, overlap_ms));
            model.observe(template, &metrics(Outcome::Forwarded, 1000.0));
        }
    }

    #[test]
    fn unknown_templates_explore_with_full_semantic() {
        let model = ProfitModel::default();
        assert_eq!(model.scheme_for("fresh"), Scheme::FullSemantic);
        assert_eq!(model.switches(), 0);
        assert!(model.estimate("fresh").is_none());
    }

    #[test]
    fn cheap_remainders_commit_to_full_semantic() {
        let model = ProfitModel::default();
        drive(&model, "t", 64, 300.0); // remainder far cheaper than forward
        assert_eq!(model.scheme_for("t"), Scheme::FullSemantic);
        assert_eq!(model.switches(), 0, "staying put is not a switch");
        let est = model.estimate("t").unwrap();
        assert!(!est.exploring);
        assert!(est.expected_ms < est.no_cache_ms);
        assert!(est.saved_ms_per_row > 0.0);
    }

    #[test]
    fn expensive_remainders_switch_overlap_handling_off() {
        let model = ProfitModel::default();
        // Remainder trips cost *more* than a full fetch — the paper's
        // "First loses" regime. The model should abandon overlap
        // handling (Second/Third) once the exploration window closes.
        drive(&model, "t", 64, 1600.0);
        let chosen = model.scheme_for("t");
        assert!(
            !chosen.handles_overlap(),
            "expensive remainders must switch overlap handling off, got {chosen}"
        );
        assert!(chosen.caches(), "caching still pays for exact/contained");
        assert_eq!(model.switches(), 1);
    }

    #[test]
    fn committed_templates_periodically_re_explore() {
        let params = ProfitParams {
            explore_samples: 8,
            refresh_samples: 4,
            reeval_every: 16,
            ..ProfitParams::default()
        };
        let model = ProfitModel::new(params);
        drive(&model, "t", 4, 300.0); // 16 observations: explore + commit
        let committed = model.estimate("t").unwrap();
        assert!(!committed.exploring);
        drive(&model, "t", 2, 300.0); // 8 committed requests → re-explore
        let refreshed = model.estimate("t").unwrap();
        assert!(
            refreshed.exploring,
            "after reeval_every committed requests the template re-explores"
        );
        assert_eq!(
            model.scheme_for("t"),
            Scheme::FullSemantic,
            "re-exploration serves full semantic to observe the mix"
        );
    }

    #[test]
    fn hysteresis_resists_small_differences() {
        let model = ProfitModel::new(ProfitParams {
            explore_samples: 8,
            ..ProfitParams::default()
        });
        // Overlap handling a hair more expensive than forwarding: not
        // enough to clear the 10% hysteresis bar, so the incumbent
        // (full semantic) stays.
        drive(&model, "t", 16, 1020.0);
        assert_eq!(model.scheme_for("t"), Scheme::FullSemantic);
        assert_eq!(model.switches(), 0);
    }
}
