//! Cache replacement policies.
//!
//! The paper's servlet evicts implicitly (oldest result files go first);
//! this reproduction makes the policy explicit and ablatable, because
//! which entry to sacrifice interacts with active caching in a way plain
//! web caches never see: a *large* entry is expensive to hold but answers
//! many future subsumed queries, a *small* one is cheap but only helps
//! near-duplicates. `repro replacement` runs the comparison.
//!
//! [`Replacement::CostAware`] closes the loop with measurement: each
//! entry carries a decayed reuse weight and the measured cost of
//! re-fetching it from the origin, and the victim is the entry with the
//! least *profit density* — expected time saved per byte held. This is
//! the GDSF idea (greedy-dual-size-frequency) specialised to semantic
//! caching, where "cost to refetch" varies wildly between templates.

use serde::{Deserialize, Serialize};

/// Victim-selection policy for a full cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Replacement {
    /// Evict the least-recently-used entry (default; closest to the
    /// paper's behaviour).
    Lru,
    /// Evict the oldest entry regardless of use.
    Fifo,
    /// Evict the largest entry (frees the most bytes per eviction, at the
    /// cost of the entries most useful for containment answering).
    LargestFirst,
    /// Evict the smallest entry (hoards big, containment-friendly
    /// entries; can thrash when many small entries arrive).
    SmallestFirst,
    /// Evict the entry with the least profit density: decayed reuse
    /// weight × measured refetch cost ÷ footprint. Keeps whatever is
    /// both hot and expensive to rebuild, regardless of size.
    CostAware,
}

impl Replacement {
    /// All policies, for sweeps. A slice, not a fixed-size array, so
    /// call sites survive new policies being added.
    pub fn all() -> &'static [Replacement] {
        &[
            Replacement::Lru,
            Replacement::Fifo,
            Replacement::LargestFirst,
            Replacement::SmallestFirst,
            Replacement::CostAware,
        ]
    }
}

impl std::fmt::Display for Replacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Replacement::Lru => "lru",
            Replacement::Fifo => "fifo",
            Replacement::LargestFirst => "largest-first",
            Replacement::SmallestFirst => "smallest-first",
            Replacement::CostAware => "cost-aware",
        })
    }
}

/// Per-entry replacement bookkeeping: sequence stamps plus the cost
/// signals [`Replacement::CostAware`] ranks by. The reuse weight decays
/// only when the entry is touched (halving per [`REUSE_HALF_LIFE`]
/// elapsed store-clock ticks), so an entry's [`policy_key`] is stable
/// between touches — the invariant the store's incremental victim set
/// depends on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct EntryCost {
    /// Monotone insert sequence number (unique per entry).
    pub created: u64,
    /// Monotone last-touch sequence number (unique per entry).
    pub used: u64,
    /// Decayed reuse weight, milli-units: 1000 ≈ one recent touch.
    pub reuse_milli: u64,
    /// Measured (or estimated) cost to refetch this entry from the
    /// origin, in microseconds.
    pub refetch_us: u64,
}

/// Store-clock ticks for the reuse weight to halve. The clock advances
/// once per insert or touch, so this is "64 cache operations", not wall
/// time — a workload-relative decay, like GDSF's inflation clock.
pub(crate) const REUSE_HALF_LIFE: u64 = 64;

impl EntryCost {
    /// A fresh entry: one touch of reuse weight, `refetch_us` as
    /// measured by the caller (or estimated from size when no
    /// measurement exists yet).
    pub(crate) fn new(clock: u64, refetch_us: u64) -> Self {
        EntryCost {
            created: clock,
            used: clock,
            reuse_milli: 1000,
            refetch_us,
        }
    }

    /// Size-proportional fallback refetch estimate for entries inserted
    /// without a measured origin cost (snapshot restores, tests): a
    /// fixed request overhead plus a per-byte transfer term, so the
    /// cost-aware key degrades to decayed-LFU rather than collapsing
    /// to zero.
    pub(crate) fn default_refetch_us(bytes: usize) -> u64 {
        1000 + bytes as u64
    }

    /// Marks a touch at store-clock `clock`: the reuse weight halves
    /// once per [`REUSE_HALF_LIFE`] ticks since the previous touch,
    /// then gains a full touch.
    pub(crate) fn touch(&mut self, clock: u64) {
        let elapsed = clock.saturating_sub(self.used);
        let halvings = (elapsed / REUSE_HALF_LIFE).min(63) as u32;
        self.reuse_milli = (self.reuse_milli >> halvings) + 1000;
        self.used = clock;
    }
}

/// Selects the victim among `(id, cost, footprint_bytes)` candidates.
/// Returns `None` for an empty iterator.
///
/// This is the O(n) reference scan; the store keeps an incremental
/// [`policy_key`]-ordered set instead and only cross-checks against this
/// in debug builds. Ties (possible under the size and cost policies —
/// `created`/`used` are unique) break by entry id, ascending, exactly as
/// the store's `(policy_key, id)` set does.
pub(crate) fn select_victim(
    policy: Replacement,
    candidates: impl Iterator<Item = (u64, EntryCost, usize)>,
) -> Option<u64> {
    match policy {
        Replacement::Lru => candidates.min_by_key(|(id, c, _)| (c.used, *id)),
        Replacement::Fifo => candidates.min_by_key(|(id, c, _)| (c.created, *id)),
        Replacement::LargestFirst => {
            candidates.min_by_key(|(id, _, bytes)| (std::cmp::Reverse(*bytes), *id))
        }
        Replacement::SmallestFirst => candidates.min_by_key(|(id, _, bytes)| (*bytes, *id)),
        Replacement::CostAware => {
            candidates.min_by_key(|(id, c, bytes)| (profit_density(c, *bytes), *id))
        }
    }
    .map(|(id, _, _)| id)
}

/// Ordering key for the store's incremental victim set: the entry with
/// the *smallest* `(key, id)` pair is the next victim. `created`/`used`
/// are unique monotone sequence numbers, so ties arise only under the
/// size and cost policies and break deterministically by entry id.
pub(crate) fn policy_key(policy: Replacement, cost: &EntryCost, bytes: usize) -> u64 {
    match policy {
        Replacement::Lru => cost.used,
        Replacement::Fifo => cost.created,
        Replacement::LargestFirst => u64::MAX - bytes as u64,
        Replacement::SmallestFirst => bytes as u64,
        Replacement::CostAware => profit_density(cost, bytes),
    }
}

/// Profit density of holding an entry: decayed reuse weight × refetch
/// cost ÷ footprint, i.e. expected microseconds of origin time saved
/// per byte held (in milli-touch units). Computed in u128 so hot,
/// expensive entries can't overflow, then saturated into the u64 key
/// space. Both the reference scan and the incremental key use this one
/// function, so they cannot disagree on quantisation.
fn profit_density(cost: &EntryCost, bytes: usize) -> u64 {
    let profit = (cost.reuse_milli as u128) * (cost.refetch_us as u128) / (bytes as u128 + 1);
    profit.min(u64::MAX as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cost(created: u64, used: u64, reuse_milli: u64, refetch_us: u64) -> EntryCost {
        EntryCost {
            created,
            used,
            reuse_milli,
            refetch_us,
        }
    }

    fn candidates() -> Vec<(u64, EntryCost, usize)> {
        vec![
            (1, cost(10, 50, 1000, 2000), 300),
            (2, cost(20, 40, 1000, 9000), 100),
            (3, cost(30, 60, 3000, 100), 500),
        ]
    }

    #[test]
    fn policies_pick_their_victims() {
        assert_eq!(
            select_victim(Replacement::Lru, candidates().into_iter()),
            Some(2)
        );
        assert_eq!(
            select_victim(Replacement::Fifo, candidates().into_iter()),
            Some(1)
        );
        assert_eq!(
            select_victim(Replacement::LargestFirst, candidates().into_iter()),
            Some(3)
        );
        assert_eq!(
            select_victim(Replacement::SmallestFirst, candidates().into_iter()),
            Some(2)
        );
        // Profit densities: id 1 → 1000·2000/301 ≈ 6644, id 2 →
        // 1000·9000/101 ≈ 89108, id 3 → 3000·100/501 ≈ 598: the cheap-
        // to-refetch entry goes first despite being the hottest.
        assert_eq!(
            select_victim(Replacement::CostAware, candidates().into_iter()),
            Some(3)
        );
        assert_eq!(select_victim(Replacement::Lru, std::iter::empty()), None);
    }

    #[test]
    fn touch_decays_then_recharges() {
        let mut c = EntryCost::new(100, 5000);
        assert_eq!(c.reuse_milli, 1000);
        // Touch shortly after: no halving, one touch gained.
        c.touch(110);
        assert_eq!(c.reuse_milli, 2000);
        assert_eq!(c.used, 110);
        // Touch two half-lives later: 2000 >> 2, plus the new touch.
        c.touch(110 + 2 * REUSE_HALF_LIFE);
        assert_eq!(c.reuse_milli, 500 + 1000);
        // created never moves.
        assert_eq!(c.created, 100);
    }

    /// Regression for the tie-break bug: equal-size entries fed in
    /// non-id order. `max_by_key` keeps the *last* maximum and
    /// `min_by_key` the *first* minimum, so the old scan's answer
    /// depended on iterator order; the store's `(policy_key, id)` set
    /// always picks the smallest id among tied keys.
    #[test]
    fn size_policy_ties_break_by_id_regardless_of_iteration_order() {
        let tied = vec![
            (7, cost(70, 70, 1000, 1000), 256),
            (2, cost(20, 21, 1000, 1000), 256),
            (5, cost(50, 51, 1000, 1000), 256),
        ];
        let mut reversed = tied.clone();
        reversed.reverse();
        for policy in [
            Replacement::LargestFirst,
            Replacement::SmallestFirst,
            Replacement::CostAware,
        ] {
            assert_eq!(
                select_victim(policy, tied.clone().into_iter()),
                Some(2),
                "{policy}: smallest id wins the tie"
            );
            assert_eq!(
                select_victim(policy, reversed.clone().into_iter()),
                Some(2),
                "{policy}: answer must not depend on iteration order"
            );
        }
    }

    #[test]
    fn policy_key_agrees_with_reference_scan() {
        for &policy in Replacement::all() {
            let victim = select_victim(policy, candidates().into_iter()).unwrap();
            let by_key = candidates()
                .into_iter()
                .min_by_key(|(id, c, b)| (policy_key(policy, c, *b), *id))
                .unwrap()
                .0;
            assert_eq!(by_key, victim, "{policy}");
        }
    }

    #[test]
    fn display_and_sweep() {
        assert_eq!(Replacement::Lru.to_string(), "lru");
        assert_eq!(Replacement::CostAware.to_string(), "cost-aware");
        assert_eq!(Replacement::all().len(), 5);
    }

    proptest! {
        /// `(policy_key, id)` ordering must agree with the O(n)
        /// reference scan for every policy — including ties, which the
        /// generator makes likely by drawing sizes and costs from tiny
        /// domains.
        #[test]
        fn prop_policy_key_matches_reference_scan(
            entries in proptest::collection::vec(
                (0u64..6, 0u64..6, 1u64..4, 0u64..4, 0usize..3),
                1..12,
            )
        ) {
            // Unique ids, shuffled arrival order via the drawn key; the
            // sequence stamps may collide on purpose (the store never
            // produces that, but the scan must still be deterministic).
            let candidates: Vec<(u64, EntryCost, usize)> = entries
                .iter()
                .enumerate()
                .map(|(i, &(created, used, reuse, refetch, bytes))| {
                    // Spread ids non-monotonically over the index space.
                    let id = ((i as u64) * 7 + 3) % 101;
                    (id, cost(created, used, reuse * 500, refetch * 700), bytes * 128)
                })
                .collect();
            for &policy in Replacement::all() {
                let scan = select_victim(policy, candidates.clone().into_iter());
                let by_key = candidates
                    .iter()
                    .min_by_key(|(id, c, b)| (policy_key(policy, c, *b), *id))
                    .map(|(id, _, _)| *id);
                prop_assert_eq!(scan, by_key, "{}", policy);
            }
        }
    }
}
