//! Cache replacement policies.
//!
//! The paper's servlet evicts implicitly (oldest result files go first);
//! this reproduction makes the policy explicit and ablatable, because
//! which entry to sacrifice interacts with active caching in a way plain
//! web caches never see: a *large* entry is expensive to hold but answers
//! many future subsumed queries, a *small* one is cheap but only helps
//! near-duplicates. `repro replacement` runs the comparison.

use serde::{Deserialize, Serialize};

/// Victim-selection policy for a full cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Replacement {
    /// Evict the least-recently-used entry (default; closest to the
    /// paper's behaviour).
    Lru,
    /// Evict the oldest entry regardless of use.
    Fifo,
    /// Evict the largest entry (frees the most bytes per eviction, at the
    /// cost of the entries most useful for containment answering).
    LargestFirst,
    /// Evict the smallest entry (hoards big, containment-friendly
    /// entries; can thrash when many small entries arrive).
    SmallestFirst,
}

impl Replacement {
    /// All policies, for sweeps.
    pub fn all() -> [Replacement; 4] {
        [
            Replacement::Lru,
            Replacement::Fifo,
            Replacement::LargestFirst,
            Replacement::SmallestFirst,
        ]
    }
}

impl std::fmt::Display for Replacement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Replacement::Lru => "lru",
            Replacement::Fifo => "fifo",
            Replacement::LargestFirst => "largest-first",
            Replacement::SmallestFirst => "smallest-first",
        })
    }
}

/// Selects the victim among `(id, created_seq, last_used_seq, bytes)`
/// tuples. Returns `None` for an empty iterator.
///
/// This is the O(n) reference scan; the store keeps an incremental
/// [`policy_key`]-ordered set instead and only cross-checks against this
/// in debug builds.
pub(crate) fn select_victim(
    policy: Replacement,
    candidates: impl Iterator<Item = (u64, u64, u64, usize)>,
) -> Option<u64> {
    match policy {
        Replacement::Lru => candidates.min_by_key(|(_, _, used, _)| *used),
        Replacement::Fifo => candidates.min_by_key(|(_, created, _, _)| *created),
        Replacement::LargestFirst => candidates.max_by_key(|(_, _, _, bytes)| *bytes),
        Replacement::SmallestFirst => candidates.min_by_key(|(_, _, _, bytes)| *bytes),
    }
    .map(|(id, _, _, _)| id)
}

/// Ordering key for the store's incremental victim set: the entry with
/// the *smallest* key is the next victim. `created`/`used` are unique
/// monotone sequence numbers, so ties arise only under the size policies
/// and break deterministically by entry id in the set.
pub(crate) fn policy_key(policy: Replacement, created: u64, used: u64, bytes: usize) -> u64 {
    match policy {
        Replacement::Lru => used,
        Replacement::Fifo => created,
        Replacement::LargestFirst => u64::MAX - bytes as u64,
        Replacement::SmallestFirst => bytes as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidates() -> Vec<(u64, u64, u64, usize)> {
        // (id, created, last_used, bytes)
        vec![(1, 10, 50, 300), (2, 20, 40, 100), (3, 30, 60, 500)]
    }

    #[test]
    fn policies_pick_their_victims() {
        assert_eq!(
            select_victim(Replacement::Lru, candidates().into_iter()),
            Some(2)
        );
        assert_eq!(
            select_victim(Replacement::Fifo, candidates().into_iter()),
            Some(1)
        );
        assert_eq!(
            select_victim(Replacement::LargestFirst, candidates().into_iter()),
            Some(3)
        );
        assert_eq!(
            select_victim(Replacement::SmallestFirst, candidates().into_iter()),
            Some(2)
        );
        assert_eq!(select_victim(Replacement::Lru, std::iter::empty()), None);
    }

    #[test]
    fn policy_key_agrees_with_reference_scan() {
        for policy in Replacement::all() {
            let victim = select_victim(policy, candidates().into_iter()).unwrap();
            let by_key = candidates()
                .into_iter()
                .min_by_key(|(id, c, u, b)| (policy_key(policy, *c, *u, *b), *id))
                .unwrap()
                .0;
            assert_eq!(by_key, victim, "{policy}");
        }
    }

    #[test]
    fn display_and_sweep() {
        assert_eq!(Replacement::Lru.to_string(), "lru");
        assert_eq!(Replacement::all().len(), 4);
    }
}
