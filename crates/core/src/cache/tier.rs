//! The disk tier: per-shard append-only slab files plus the
//! promotion/demotion bookkeeping that turns the RAM store into the hot
//! tier of a two-level cache.
//!
//! # Why a tier
//!
//! The paper's cache-efficiency results are bounded by a RAM-resident
//! store; at SkyServer scale the long tail of sky regions cannot fit in
//! memory. The observation that makes a disk tier cheap here is that
//! PR 2's columnar form already splits every entry into exactly the two
//! halves a tiered store wants:
//!
//! - a small **skeleton** (coordinate columns, row spans, XML header,
//!   micro-index) that classification and contained-hit row selection
//!   need, and
//! - a large **row slab** (the pre-serialized XML bytes of every row)
//!   that serving needs but classification never touches.
//!
//! Demotion therefore writes the entry once to an append-only slab file
//! and keeps the skeleton resident: the residual-key groups, R-tree
//! descriptions, and micro-indexes never leave RAM, so `classify` works
//! unchanged over both tiers, and a demoted exact/contained hit is
//! served by splicing row bytes straight out of an `mmap` of the slab —
//! zero copies until the response buffer is assembled.
//!
//! # Segment format
//!
//! ```text
//! file   := magic "FPSLAB01" · version u32 LE · segment*
//! segment:= len u32 LE · crc32 u32 LE · payload      (snapshot framing)
//! payload:= xml_len u32 LE · entry XML · row slab bytes
//! ```
//!
//! The entry XML is the same `<CacheEntry>` document the lifecycle
//! snapshots use (`cache/persist.rs`), so a segment alone is enough to
//! rebuild the full entry on promotion or warm restart; the row slab
//! sits at a known offset behind it so the serve path can slice rows
//! without parsing anything.
//!
//! # Crash safety
//!
//! Appends are only ever at the tail, so a crash mid-spill leaves at
//! most one torn segment, which the front-recoverable [`SlabFile::replay`]
//! detects by CRC and counts (`slab_corrupt_segments`) instead of
//! failing. Compaction writes the surviving segments to a `.tmp` file,
//! fsyncs, and renames over the slab — a crash at any point leaves
//! either the old file or the new one, never a mix. In-flight readers
//! keep serving from their `Arc`'d mapping of the pre-compaction inode.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use fp_geometry::{HyperRect, Region};
use fp_mmap::Mmap;
use fp_skyserver::ColumnarRows;

use crate::lifecycle::snapshot::crc32;

/// Leading magic bytes of every slab file.
pub const SLAB_MAGIC: &[u8; 8] = b"FPSLAB01";
/// Current slab format version; bumped on layout changes.
pub const SLAB_VERSION: u32 = 1;

const HEADER_LEN: u64 = 8 + 4;
const FRAME_LEN: u64 = 4 + 4;

/// Which tier file operation a fault applies to. The classes mirror the
/// distinct failure surfaces a real filesystem exposes: tail appends,
/// metadata snapshot writes, compaction staging, the compaction commit
/// rename, and durability barriers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// Slab segment appends (demotion spills and meta-pass spills).
    Append,
    /// `.fpmeta` warm-restart metadata snapshot writes.
    MetaWrite,
    /// Compaction staging: creating and filling the `.tmp` file.
    CompactWrite,
    /// Compaction commit: the rename of the `.tmp` over the slab. A
    /// fault here models a crash after the staging write completed but
    /// before the commit — the classic torn-rename crash point.
    CompactRename,
    /// Durability barriers (`sync_all` during compaction staging).
    Fsync,
}

const IO_OPS: usize = 5;

impl IoOp {
    fn idx(self) -> usize {
        match self {
            IoOp::Append => 0,
            IoOp::MetaWrite => 1,
            IoOp::CompactWrite => 2,
            IoOp::CompactRename => 3,
            IoOp::Fsync => 4,
        }
    }
}

/// The fault an armed operation suffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoFault {
    /// Generic I/O error (errno `EIO`).
    Eio,
    /// Out of space (errno `ENOSPC`).
    Enospc,
    /// A torn write: the first `n` bytes land on disk, then the write
    /// fails — what a crash or short `write(2)` mid-append leaves
    /// behind. Non-write operations treat this as `Eio`.
    Torn(usize),
}

impl IoFault {
    fn to_error(self) -> io::Error {
        match self {
            // Real errnos so callers can't tell injected faults from
            // the filesystem's own: EIO = 5, ENOSPC = 28.
            IoFault::Eio | IoFault::Torn(_) => io::Error::from_raw_os_error(5),
            IoFault::Enospc => io::Error::from_raw_os_error(28),
        }
    }
}

#[derive(Debug, Default)]
struct SlabIoState {
    /// Sticky fault per operation class (`None` = healthy).
    sticky: [Option<IoFault>; IO_OPS],
    /// Total faults actually delivered to an operation.
    injected: usize,
}

/// The storage fault-injection seam every tier file operation consults.
///
/// A `SlabIo` is a cheaply cloneable handle to shared fault state; the
/// default handle is a pass-through (no locks are even taken unless a
/// fault has ever been armed — the hot path stays one relaxed atomic
/// load). Torture harnesses clone the handle into [`TierConfig`] and
/// arm faults mid-run: `inject` makes an operation class fail stickily
/// until `heal`/`heal_all`.
#[derive(Debug, Clone, Default)]
pub struct SlabIo {
    state: Arc<SlabIoShared>,
}

#[derive(Debug, Default)]
struct SlabIoShared {
    /// Fast-path gate: set while any fault is armed.
    armed: std::sync::atomic::AtomicBool,
    state: Mutex<SlabIoState>,
}

impl PartialEq for SlabIo {
    fn eq(&self, other: &SlabIo) -> bool {
        Arc::ptr_eq(&self.state, &other.state)
    }
}

impl SlabIo {
    /// A pass-through seam (no faults armed).
    pub fn healthy() -> SlabIo {
        SlabIo::default()
    }

    /// Arms a sticky fault: every subsequent `op` fails with `fault`
    /// until healed.
    pub fn inject(&self, op: IoOp, fault: IoFault) {
        let mut s = self.state.state.lock().unwrap_or_else(|e| e.into_inner());
        s.sticky[op.idx()] = Some(fault);
        self.state
            .armed
            .store(true, std::sync::atomic::Ordering::Release);
    }

    /// Heals one operation class.
    pub fn heal(&self, op: IoOp) {
        let mut s = self.state.state.lock().unwrap_or_else(|e| e.into_inner());
        s.sticky[op.idx()] = None;
        if s.sticky.iter().all(Option::is_none) {
            self.state
                .armed
                .store(false, std::sync::atomic::Ordering::Release);
        }
    }

    /// Heals every operation class.
    pub fn heal_all(&self) {
        let mut s = self.state.state.lock().unwrap_or_else(|e| e.into_inner());
        s.sticky = [None; IO_OPS];
        self.state
            .armed
            .store(false, std::sync::atomic::Ordering::Release);
    }

    /// Total faults delivered so far (for harness assertions).
    pub fn faults_injected(&self) -> usize {
        self.state
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .injected
    }

    /// The fault armed for a write-class `op`, if any (and counts it
    /// delivered). Write paths call this so a [`IoFault::Torn`] can
    /// land its partial bytes before failing.
    fn write_fault(&self, op: IoOp) -> Option<IoFault> {
        if !self.state.armed.load(std::sync::atomic::Ordering::Acquire) {
            return None;
        }
        let mut s = self.state.state.lock().unwrap_or_else(|e| e.into_inner());
        let fault = s.sticky[op.idx()];
        if fault.is_some() {
            s.injected += 1;
        }
        fault
    }

    /// Fails `op` if a fault is armed for it (non-write operations:
    /// renames, fsyncs, whole-file meta writes).
    fn check(&self, op: IoOp) -> io::Result<()> {
        match self.write_fault(op) {
            Some(fault) => Err(fault.to_error()),
            None => Ok(()),
        }
    }

    /// Fails if a `MetaWrite` fault is armed — consulted by the store's
    /// `.fpmeta` snapshot writer, which goes through the lifecycle
    /// snapshot helper rather than the slab file.
    pub(crate) fn meta_write_check(&self) -> io::Result<()> {
        self.check(IoOp::MetaWrite)
    }
}

/// Configuration for the disk tier.
#[derive(Debug, Clone, PartialEq)]
pub struct TierConfig {
    /// Directory holding the per-shard `slab_<i>.fpslab` files and the
    /// `shard_<i>.fpmeta` warm-restart metadata snapshots.
    pub dir: PathBuf,
    /// Compact a shard's slab when at least this fraction of its
    /// payload bytes belong to removed entries (dead ÷ (live + dead)).
    pub compact_ratio: f64,
    /// The storage fault-injection seam every file operation of this
    /// tier consults; pass-through unless a harness armed it.
    pub io: SlabIo,
}

impl TierConfig {
    /// A tier rooted at `dir` with the default compaction trigger
    /// (half the file dead).
    pub fn new(dir: impl Into<PathBuf>) -> TierConfig {
        TierConfig {
            dir: dir.into(),
            compact_ratio: 0.5,
            io: SlabIo::healthy(),
        }
    }

    /// Overrides the dead-byte fraction that triggers compaction.
    pub fn with_compact_ratio(mut self, ratio: f64) -> TierConfig {
        self.compact_ratio = ratio.clamp(0.01, 1.0);
        self
    }

    /// Shares a fault-injection seam with the tier (torture harnesses
    /// keep a clone to arm faults mid-run).
    pub fn with_io(mut self, io: SlabIo) -> TierConfig {
        self.io = io;
        self
    }

    /// Path of shard `i`'s slab file.
    pub fn slab_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("slab_{shard}.fpslab"))
    }

    /// Path of shard `i`'s metadata snapshot.
    pub fn meta_path(&self, shard: usize) -> PathBuf {
        self.dir.join(format!("shard_{shard}.fpmeta"))
    }
}

/// Location of one segment's payload inside a slab file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegRef {
    /// Byte offset of the payload (just past the len/crc frame).
    pub off: u64,
    /// Payload length in bytes.
    pub len: u32,
}

/// Builds a segment payload from an entry's XML document and its raw
/// row-slab bytes.
pub fn encode_payload(xml: &[u8], row_slab: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(4 + xml.len() + row_slab.len());
    payload.extend_from_slice(&(xml.len() as u32).to_le_bytes());
    payload.extend_from_slice(xml);
    payload.extend_from_slice(row_slab);
    payload
}

#[derive(Debug, Clone)]
enum SliceSrc {
    /// A window into a shared mapping of the slab file. Holding the
    /// `Arc` keeps the mapping (and, across compaction renames, the old
    /// inode) alive for as long as any reader needs it.
    Mapped {
        map: Arc<Mmap>,
        off: usize,
        len: usize,
    },
    /// Fallback when mapping fails (e.g. a filesystem without mmap):
    /// the payload is read into an owned buffer instead.
    Owned(Vec<u8>),
}

/// A zero-copy view of one segment's payload, safe to carry outside the
/// shard lock: the bytes live in the page cache (or an owned buffer),
/// not in the store.
#[derive(Debug, Clone)]
pub struct SlabSlice {
    src: SliceSrc,
    xml_len: usize,
}

impl SlabSlice {
    fn new(src: SliceSrc) -> Option<SlabSlice> {
        let bytes = match &src {
            SliceSrc::Mapped { map, off, len } => &map.as_slice()[*off..*off + *len],
            SliceSrc::Owned(buf) => &buf[..],
        };
        if bytes.len() < 4 {
            return None;
        }
        let xml_len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
        if 4 + xml_len > bytes.len() {
            return None;
        }
        Some(SlabSlice { src, xml_len })
    }

    /// The whole segment payload.
    pub fn payload(&self) -> &[u8] {
        match &self.src {
            SliceSrc::Mapped { map, off, len } => &map.as_slice()[*off..*off + *len],
            SliceSrc::Owned(buf) => buf,
        }
    }

    /// The entry's `<CacheEntry>` XML document.
    pub fn xml(&self) -> &[u8] {
        &self.payload()[4..4 + self.xml_len]
    }

    /// The entry's raw row-slab bytes (pre-serialized XML rows), ready
    /// for `ColumnarRows::{full_document_with, assemble_document_with}`.
    pub fn row_slab(&self) -> &[u8] {
        &self.payload()[4 + self.xml_len..]
    }
}

/// One shard's append-only slab file plus its read-side mapping.
#[derive(Debug)]
pub struct SlabFile {
    path: PathBuf,
    file: File,
    /// Current file length (we track it ourselves; the file is only
    /// ever appended through this handle).
    len: u64,
    map: Option<Arc<Mmap>>,
    live_bytes: u64,
    dead_bytes: u64,
    corrupt_segments: usize,
    io: SlabIo,
}

impl SlabFile {
    /// Opens (or creates) a slab file, validating the header. A file
    /// shorter than the header is re-initialized (counted as corrupt if
    /// non-empty); a wrong magic or version is an error — the caller
    /// should treat the file as not ours and run untiered rather than
    /// overwrite it.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<SlabFile> {
        Self::open_with(path, SlabIo::healthy())
    }

    /// [`SlabFile::open`] with a fault-injection seam. Also sweeps up a
    /// stale compaction `.tmp` left by a crash between the staging
    /// write and the commit rename — the original slab is authoritative
    /// and recovers by bare replay.
    pub fn open_with(path: impl Into<PathBuf>, io: SlabIo) -> io::Result<SlabFile> {
        let path = path.into();
        let _ = std::fs::remove_file(path.with_extension("fpslab.tmp"));
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;
        let mut len = file.metadata()?.len();
        let mut corrupt_segments = 0;
        if len < HEADER_LEN {
            if len > 0 {
                corrupt_segments += 1; // torn header from a mid-create crash
                file.set_len(0)?;
            }
            file.write_all(SLAB_MAGIC)?;
            file.write_all(&SLAB_VERSION.to_le_bytes())?;
            file.sync_data()?;
            len = HEADER_LEN;
        } else {
            let mut head = [0u8; HEADER_LEN as usize];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut head)?;
            let version = u32::from_le_bytes(head[8..12].try_into().expect("4 bytes"));
            if &head[..8] != SLAB_MAGIC || version != SLAB_VERSION {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "not a slab file (bad magic or version)",
                ));
            }
        }
        Ok(SlabFile {
            path,
            file,
            len,
            map: None,
            live_bytes: 0,
            dead_bytes: 0,
            corrupt_segments,
            io,
        })
    }

    /// Appends one framed segment and returns where its payload landed.
    ///
    /// A failed append never leaves torn bytes behind: whatever prefix
    /// of the frame landed before the error is truncated away, so the
    /// tail stays on a valid frame boundary and later appends (or the
    /// next replay) see a clean stream.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<SegRef> {
        let len = u32::try_from(payload.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "segment too large"))?;
        let mut frame = Vec::with_capacity(FRAME_LEN as usize + payload.len());
        frame.extend_from_slice(&len.to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        if let Err(e) = self.write_frame(&frame) {
            let _ = self.file.set_len(self.len);
            return Err(e);
        }
        let seg = SegRef {
            off: self.len + FRAME_LEN,
            len,
        };
        self.len += frame.len() as u64;
        self.live_bytes += u64::from(len);
        Ok(seg)
    }

    /// One frame write through the fault seam: a [`IoFault::Torn`]
    /// lands its partial prefix before failing, exactly what a crash
    /// mid-`write(2)` leaves on disk.
    fn write_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        match self.io.write_fault(IoOp::Append) {
            None => self.file.write_all(frame),
            Some(IoFault::Torn(n)) => {
                let n = n.min(frame.len());
                self.file.write_all(&frame[..n])?;
                Err(IoFault::Eio.to_error())
            }
            Some(fault) => Err(fault.to_error()),
        }
    }

    /// A zero-copy view of `seg`'s payload, remapping if the current
    /// mapping is too short (the file has grown since). Returns `None`
    /// if the ref is out of bounds or the payload framing is invalid.
    pub fn slice(&mut self, seg: SegRef) -> Option<SlabSlice> {
        let end = seg.off.checked_add(u64::from(seg.len))?;
        if end > self.len {
            return None;
        }
        let need = end as usize;
        if self.map.as_ref().map_or(0, |m| m.len()) < need {
            match Mmap::map(&self.file, self.len as usize) {
                Ok(map) => self.map = Some(Arc::new(map)),
                Err(_) => {
                    // No mapping available; fall back to an owned read.
                    let mut buf = vec![0u8; seg.len as usize];
                    self.read_exact_at(&mut buf, seg.off).ok()?;
                    return SlabSlice::new(SliceSrc::Owned(buf));
                }
            }
        }
        let map = Arc::clone(self.map.as_ref().expect("mapped above"));
        SlabSlice::new(SliceSrc::Mapped {
            map,
            off: seg.off as usize,
            len: seg.len as usize,
        })
    }

    fn read_exact_at(&self, buf: &mut [u8], off: u64) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.file.read_exact_at(buf, off)
    }

    /// Reads and CRC-verifies one segment's payload (used by recovery
    /// and compaction, where trusting the page cache isn't enough).
    pub fn read_segment(&self, seg: SegRef) -> io::Result<Vec<u8>> {
        let mut head = [0u8; FRAME_LEN as usize];
        self.read_exact_at(&mut head, seg.off - FRAME_LEN)?;
        let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes"));
        let want_crc = u32::from_le_bytes(head[4..8].try_into().expect("4 bytes"));
        if len != seg.len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "segment length mismatch",
            ));
        }
        let mut payload = vec![0u8; len as usize];
        self.read_exact_at(&mut payload, seg.off)?;
        if crc32(&payload) != want_crc {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "segment crc mismatch",
            ));
        }
        Ok(payload)
    }

    /// Front-recoverable scan of the whole file: yields every intact
    /// segment in append order, counts damaged ones (bad CRC keeps the
    /// stream aligned and is skipped; a torn tail — whether the crash
    /// cut the *payload* or the 8-byte *length/CRC frame header* itself
    /// — stops the scan), and resets the live/dead accounting to
    /// "everything intact is live".
    ///
    /// A torn tail is also **healed**: the file is truncated back to
    /// the last intact frame boundary, so segments appended after
    /// recovery land on a valid boundary instead of being orphaned
    /// behind the tear (where the *next* replay's scan would stop
    /// before ever reaching them).
    pub fn replay(&mut self) -> Vec<(SegRef, Vec<u8>)> {
        let data = match std::fs::read(&self.path) {
            Ok(data) => data,
            Err(_) => return Vec::new(),
        };
        let mut out = Vec::new();
        let mut live = 0u64;
        let mut pos = HEADER_LEN as usize;
        let mut torn_at = None;
        while pos < data.len() {
            if pos + FRAME_LEN as usize > data.len() {
                // Truncated frame header: the crash cut the length/CRC
                // fields themselves.
                self.corrupt_segments += 1;
                torn_at = Some(pos);
                break;
            }
            let len = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"));
            let want_crc = u32::from_le_bytes(data[pos + 4..pos + 8].try_into().expect("4 bytes"));
            let start = pos + FRAME_LEN as usize;
            let Some(end) = start.checked_add(len as usize) else {
                self.corrupt_segments += 1;
                torn_at = Some(pos);
                break;
            };
            if end > data.len() {
                self.corrupt_segments += 1; // torn payload (crash mid-spill)
                torn_at = Some(pos);
                break;
            }
            let payload = &data[start..end];
            if crc32(payload) == want_crc {
                live += u64::from(len);
                out.push((
                    SegRef {
                        off: start as u64,
                        len,
                    },
                    payload.to_vec(),
                ));
            } else {
                self.corrupt_segments += 1; // damaged payload; stream stays aligned
            }
            pos = end;
        }
        if let Some(tear) = torn_at {
            // Heal: drop the torn bytes so future appends extend a
            // valid stream. Best-effort — if the truncate fails the
            // file is no worse than before. The mapping is dropped
            // because it may cover the truncated range.
            if self.file.set_len(tear as u64).is_ok() {
                self.len = tear as u64;
                self.map = None;
            }
        }
        self.live_bytes = live;
        self.dead_bytes = 0;
        out
    }

    /// Marks a segment's payload bytes dead (its entry was removed or
    /// superseded); compaction reclaims them.
    pub fn mark_dead(&mut self, seg: SegRef) {
        let len = u64::from(seg.len);
        self.live_bytes = self.live_bytes.saturating_sub(len);
        self.dead_bytes += len;
    }

    /// Whether the dead-byte fraction has crossed the compaction
    /// trigger.
    pub fn needs_compact(&self, ratio: f64) -> bool {
        let total = self.live_bytes + self.dead_bytes;
        self.dead_bytes > 0 && total > 0 && self.dead_bytes as f64 >= ratio * total as f64
    }

    /// Rewrites the slab keeping only `live` segments, atomically
    /// (stage to `.tmp`, fsync, rename). Returns the relocated refs and
    /// how many live segments had to be dropped as unreadable. On any
    /// I/O error the old file is left untouched and the old refs remain
    /// valid.
    pub fn compact(&mut self, live: &[(u64, SegRef)]) -> io::Result<(Vec<(u64, SegRef)>, usize)> {
        let mut out = Vec::with_capacity(HEADER_LEN as usize);
        out.extend_from_slice(SLAB_MAGIC);
        out.extend_from_slice(&SLAB_VERSION.to_le_bytes());
        let mut new_refs = Vec::with_capacity(live.len());
        let mut dropped = 0;
        let mut live_bytes = 0u64;
        for &(id, seg) in live {
            match self.read_segment(seg) {
                Ok(payload) => {
                    let off = (out.len() + FRAME_LEN as usize) as u64;
                    out.extend_from_slice(&seg.len.to_le_bytes());
                    out.extend_from_slice(&crc32(&payload).to_le_bytes());
                    out.extend_from_slice(&payload);
                    live_bytes += u64::from(seg.len);
                    new_refs.push((id, SegRef { off, len: seg.len }));
                }
                Err(_) => dropped += 1, // unreadable live segment: entry is lost
            }
        }
        let tmp = self.path.with_extension("fpslab.tmp");
        {
            self.io.check(IoOp::CompactWrite)?;
            let mut file = File::create(&tmp)?;
            file.write_all(&out)?;
            self.io.check(IoOp::Fsync)?;
            file.sync_all()?;
        }
        // The torn-rename crash point: with a `CompactRename` fault the
        // staged `.tmp` is complete on disk but the commit never
        // happens — the old slab stays authoritative, exactly like a
        // crash here would leave things.
        self.io.check(IoOp::CompactRename)?;
        std::fs::rename(&tmp, &self.path)?;
        self.file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        self.len = out.len() as u64;
        // Old mappings stay alive through their Arcs (readers mid-serve
        // keep the pre-compaction inode pinned); new slices remap.
        self.map = None;
        self.live_bytes = live_bytes;
        self.dead_bytes = 0;
        self.corrupt_segments += dropped;
        Ok((new_refs, dropped))
    }

    /// Total file size in bytes (header + frames + payloads).
    pub fn bytes(&self) -> u64 {
        self.len
    }

    /// Payload bytes belonging to live entries.
    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    /// Payload bytes belonging to removed entries, reclaimable by
    /// compaction.
    pub fn dead_bytes(&self) -> u64 {
        self.dead_bytes
    }

    /// Segments found damaged (bad CRC, torn tail) or dropped during
    /// compaction — counted, never fatal.
    pub fn corrupt_segments(&self) -> usize {
        self.corrupt_segments
    }

    /// Records a segment found damaged by a reader (e.g. a promotion
    /// parse failure).
    pub fn note_corrupt(&mut self) {
        self.corrupt_segments += 1;
    }

    /// The file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// A demoted entry: everything classification and contained-row
/// selection need stays resident; the row bytes live in the slab.
#[derive(Debug, Clone)]
pub struct DemotedEntry {
    /// Store-assigned id (unchanged across demote/promote).
    pub id: u64,
    /// Residual group key (shared with the store's maps).
    pub residual_key: Arc<str>,
    /// The query's spatial region.
    pub region: Region,
    /// `region.bounding_rect()`, kept for description-index removal.
    pub bbox: HyperRect,
    /// The columnar skeleton: coordinate columns, spans, header, and
    /// micro-index with an empty row slab. Row selection runs on this;
    /// the selected spans are then spliced from the mmap'd slab.
    pub skeleton: Arc<ColumnarRows>,
    /// Row count (classification's smallest-containing preference).
    pub rows: usize,
    /// Serialized XML size of the full result (cost accounting).
    pub bytes: usize,
    /// Whether the result may have been clipped by a `TOP` limit.
    pub truncated: bool,
    /// The exact normalized SQL (shared with the store's exact map).
    pub exact_sql: Arc<str>,
    /// Data-release epoch the entry was cached under.
    pub epoch: u64,
    /// When the entry was inserted (TTL anchor).
    pub inserted_at: Option<Instant>,
    /// When the entry stops being fresh.
    pub expires_at: Option<Instant>,
}

/// Per-shard tier state: the slab file plus which entries live on disk
/// and where. Owned by `CacheStore`, which drives demotion from its
/// budget loop and promotion from the runtime's background parse.
#[derive(Debug)]
pub struct EvictionManager {
    pub(crate) compact_ratio: f64,
    /// Where this shard's warm-restart metadata snapshot lives.
    pub(crate) meta_path: PathBuf,
    pub(crate) slab: SlabFile,
    /// Entries currently resident only on disk, by id.
    pub(crate) demoted: HashMap<u64, DemotedEntry>,
    /// Slab segment for every entry that has ever been spilled —
    /// resident entries keep theirs so re-demotion is free (entries are
    /// immutable, so the bytes never go stale).
    pub(crate) refs: HashMap<u64, SegRef>,
    pub(crate) demotions: usize,
    pub(crate) promotions: usize,
    pub(crate) compactions: usize,
    /// The fault seam, shared with the slab (consulted directly for
    /// `.fpmeta` writes, which bypass the slab file).
    pub(crate) io: SlabIo,
    /// `true` while the tier is in eviction-only degraded mode: slab
    /// appends have been failing (EIO/ENOSPC), so demotion is skipped —
    /// entries fall back to plain eviction, which is never
    /// client-visible — until a periodic re-probe append succeeds.
    pub(crate) degraded: bool,
    /// Demote attempts skipped since the last degraded-mode re-probe.
    pub(crate) skipped_since_probe: usize,
    /// Times the tier entered degraded mode (monotone).
    pub(crate) degrade_events: usize,
    /// Times a re-probe append succeeded and the tier left degraded
    /// mode (monotone).
    pub(crate) recoveries: usize,
    /// Slab I/O errors observed (appends and compactions; injected or
    /// real).
    pub(crate) io_errors: usize,
}

/// How many demote attempts degraded mode skips between re-probe
/// appends. Attempt-counted rather than timed so torture replays stay
/// deterministic under a virtual clock.
pub(crate) const DEGRADED_REPROBE_AFTER: usize = 8;

impl EvictionManager {
    /// Opens shard `i`'s slab under the tier directory (creating both
    /// as needed).
    pub fn open(config: &TierConfig, shard: usize) -> io::Result<EvictionManager> {
        std::fs::create_dir_all(&config.dir)?;
        let slab = SlabFile::open_with(config.slab_path(shard), config.io.clone())?;
        Ok(EvictionManager {
            compact_ratio: config.compact_ratio,
            meta_path: config.meta_path(shard),
            slab,
            demoted: HashMap::new(),
            refs: HashMap::new(),
            demotions: 0,
            promotions: 0,
            compactions: 0,
            io: config.io.clone(),
            degraded: false,
            skipped_since_probe: 0,
            degrade_events: 0,
            recoveries: 0,
            io_errors: 0,
        })
    }

    /// Whether a slab append should be attempted right now. Healthy:
    /// always. Degraded: skip (the caller evicts instead), except every
    /// [`DEGRADED_REPROBE_AFTER`]th attempt, which goes through as the
    /// re-probe that detects the disk recovering.
    pub(crate) fn admit_append(&mut self) -> bool {
        if !self.degraded {
            return true;
        }
        self.skipped_since_probe += 1;
        if self.skipped_since_probe >= DEGRADED_REPROBE_AFTER {
            self.skipped_since_probe = 0;
            return true;
        }
        false
    }

    /// Records a successful slab append; a success while degraded is
    /// the re-probe landing, so the tier resumes demotion.
    pub(crate) fn note_append_ok(&mut self) {
        if self.degraded {
            self.degraded = false;
            self.skipped_since_probe = 0;
            self.recoveries += 1;
        }
    }

    /// Records a failed slab append and enters eviction-only degraded
    /// mode. Never client-visible: the caller falls back to eviction
    /// and the entry is simply refetched from origin on its next miss.
    pub(crate) fn note_append_err(&mut self) {
        self.io_errors += 1;
        if !self.degraded {
            self.degraded = true;
            self.skipped_since_probe = 0;
            self.degrade_events += 1;
        }
    }

    /// Compacts the slab if the dead-byte trigger has fired. Returns
    /// the ids whose segments turned out unreadable (the store must
    /// drop those entries); empty when nothing happened.
    pub(crate) fn maybe_compact(&mut self) -> Vec<u64> {
        if !self.slab.needs_compact(self.compact_ratio) {
            return Vec::new();
        }
        let live: Vec<(u64, SegRef)> = self.refs.iter().map(|(&id, &seg)| (id, seg)).collect();
        match self.slab.compact(&live) {
            Ok((new_refs, _dropped)) => {
                let relocated: HashMap<u64, SegRef> = new_refs.into_iter().collect();
                let lost: Vec<u64> = self
                    .refs
                    .keys()
                    .filter(|id| !relocated.contains_key(id))
                    .copied()
                    .collect();
                self.refs = relocated;
                self.compactions += 1;
                lost
            }
            // Compaction failure is not fatal: the old file and refs
            // stay valid; we'll retry at the next trigger.
            Err(_) => {
                self.io_errors += 1;
                Vec::new()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("fp_tier_test_{}_{}", std::process::id(), name));
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn payload(i: u8, rows: usize) -> Vec<u8> {
        let xml = format!("<CacheEntry n=\"{i}\"/>");
        let slab: Vec<u8> = (0..rows).map(|r| (r as u8).wrapping_mul(i)).collect();
        encode_payload(xml.as_bytes(), &slab)
    }

    #[test]
    fn append_then_slice_round_trips_via_mmap() {
        let dir = temp_dir("roundtrip");
        let mut slab = SlabFile::open(dir.join("slab_0.fpslab")).unwrap();
        let p1 = payload(1, 300);
        let p2 = payload(2, 4500);
        let s1 = slab.append(&p1).unwrap();
        let s2 = slab.append(&p2).unwrap();

        let v1 = slab.slice(s1).unwrap();
        let v2 = slab.slice(s2).unwrap();
        assert_eq!(v1.payload(), &p1[..]);
        assert_eq!(v2.payload(), &p2[..]);
        assert_eq!(v1.xml(), b"<CacheEntry n=\"1\"/>");
        assert_eq!(v2.row_slab().len(), 4500);
        // CRC-verified reads agree with the mapped view.
        assert_eq!(slab.read_segment(s2).unwrap(), p2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn slice_remaps_after_growth() {
        let dir = temp_dir("growth");
        let mut slab = SlabFile::open(dir.join("slab_0.fpslab")).unwrap();
        let s1 = slab.append(&payload(1, 100)).unwrap();
        let _early = slab.slice(s1).unwrap(); // maps the short prefix
        let p2 = payload(2, 5000);
        let s2 = slab.append(&p2).unwrap();
        let late = slab.slice(s2).unwrap(); // must remap to cover s2
        assert_eq!(late.payload(), &p2[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_skips_bad_crc_and_stops_at_torn_tail() {
        let dir = temp_dir("replay");
        let path = dir.join("slab_0.fpslab");
        // Three good segments plus one that will be torn; then flip a
        // byte in the middle one and truncate the tail.
        let mut slab = SlabFile::open(&path).unwrap();
        let p1 = payload(1, 64);
        let a = slab.append(&p1).unwrap();
        let mid = slab.append(&payload(2, 64)).unwrap();
        let p3 = payload(3, 64);
        let c = slab.append(&p3).unwrap();
        slab.append(&payload(4, 64)).unwrap(); // will be torn
        let file_len = slab.bytes();
        drop(slab);

        let mut raw = std::fs::read(&path).unwrap();
        raw[mid.off as usize + 2] ^= 0xFF; // damage segment 2's payload
        raw.truncate(file_len as usize - 10); // tear the last segment
        std::fs::write(&path, &raw).unwrap();

        let mut slab = SlabFile::open(&path).unwrap();
        let kept = slab.replay();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].0, a);
        assert_eq!(kept[0].1, p1);
        assert_eq!(kept[1].0, c);
        assert_eq!(kept[1].1, p3);
        assert_eq!(slab.corrupt_segments(), 2); // bad crc + torn tail
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_heals_a_tail_torn_inside_the_frame_header() {
        let dir = temp_dir("torn_header");
        let path = dir.join("slab_0.fpslab");
        let mut slab = SlabFile::open(&path).unwrap();
        let p1 = payload(1, 64);
        let a = slab.append(&p1).unwrap();
        slab.append(&payload(2, 64)).unwrap();
        drop(slab);

        // Tear *inside the 8-byte length/CRC frame header* of segment 2
        // (not its payload): only 3 header bytes survive the crash.
        let second_frame = a.off + u64::from(a.len);
        let mut raw = std::fs::read(&path).unwrap();
        raw.truncate(second_frame as usize + 3);
        std::fs::write(&path, &raw).unwrap();

        let mut slab = SlabFile::open(&path).unwrap();
        let kept = slab.replay();
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].1, p1);
        assert_eq!(slab.corrupt_segments(), 1); // counted, not an error
                                                // Healed: the partial header is gone, so a post-recovery append
                                                // starts on a valid frame boundary...
        assert_eq!(slab.bytes(), second_frame);
        let p3 = payload(3, 64);
        let s3 = slab.append(&p3).unwrap();
        assert_eq!(slab.read_segment(s3).unwrap(), p3);
        drop(slab);

        // ...and the *next* replay recovers it instead of stopping at
        // the (formerly orphaning) tear.
        let mut slab = SlabFile::open(&path).unwrap();
        let kept = slab.replay();
        assert_eq!(kept.len(), 2);
        assert_eq!(kept[0].1, p1);
        assert_eq!(kept[1].1, p3);
        assert_eq!(slab.corrupt_segments(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_keeps_live_segments_and_resets_dead_bytes() {
        let dir = temp_dir("compact");
        let mut slab = SlabFile::open(dir.join("slab_0.fpslab")).unwrap();
        let p1 = payload(1, 2000);
        let p2 = payload(2, 2000);
        let p3 = payload(3, 2000);
        let s1 = slab.append(&p1).unwrap();
        let s2 = slab.append(&p2).unwrap();
        let s3 = slab.append(&p3).unwrap();
        let before = slab.bytes();

        // Readers holding slices across compaction keep working.
        let pinned = slab.slice(s1).unwrap();

        slab.mark_dead(s2);
        assert!(!slab.needs_compact(0.5));
        slab.mark_dead(s1);
        assert!(slab.needs_compact(0.5));

        let (new_refs, dropped) = slab.compact(&[(3, s3)]).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(new_refs.len(), 1);
        assert!(slab.bytes() < before);
        assert_eq!(slab.dead_bytes(), 0);
        let v3 = slab.slice(new_refs[0].1).unwrap();
        assert_eq!(v3.payload(), &p3[..]);
        // The pre-compaction mapping still serves the old bytes.
        assert_eq!(pinned.payload(), &p1[..]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_append_faults_fail_with_real_errnos_and_leave_no_tail() {
        let dir = temp_dir("io_faults");
        let path = dir.join("slab_0.fpslab");
        let io = SlabIo::healthy();
        let mut slab = SlabFile::open_with(&path, io.clone()).unwrap();
        let p1 = payload(1, 128);
        let s1 = slab.append(&p1).unwrap();
        let clean_len = slab.bytes();

        io.inject(IoOp::Append, IoFault::Enospc);
        let err = slab.append(&payload(2, 128)).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
        assert_eq!(slab.bytes(), clean_len, "ENOSPC left bytes behind");

        // A torn write lands partial bytes; the self-heal truncates
        // them back off so the on-disk stream stays frame-aligned.
        io.inject(IoOp::Append, IoFault::Torn(5));
        let err = slab.append(&payload(3, 128)).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        assert_eq!(slab.bytes(), clean_len);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        assert_eq!(io.faults_injected(), 2);

        // Healed: appends work again and nothing was corrupted.
        io.heal_all();
        let p4 = payload(4, 128);
        let s4 = slab.append(&p4).unwrap();
        assert_eq!(slab.read_segment(s1).unwrap(), p1);
        assert_eq!(slab.read_segment(s4).unwrap(), p4);
        drop(slab);
        let mut slab = SlabFile::open_with(&path, SlabIo::healthy()).unwrap();
        assert_eq!(slab.replay().len(), 2);
        assert_eq!(slab.corrupt_segments(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Satellite: the torn-rename crash point. A fault between the
    /// staging write and the rename leaves a *complete* `.tmp` next to
    /// the untouched slab — recovery must sweep the tmp, replay the
    /// bare slab with zero entry loss, and count zero corruption (a
    /// failed compaction is not damage, and must not double-count).
    #[test]
    fn torn_rename_crash_point_loses_nothing_and_counts_nothing() {
        let dir = temp_dir("torn_rename");
        let path = dir.join("slab_0.fpslab");
        let io = SlabIo::healthy();
        let mut slab = SlabFile::open_with(&path, io.clone()).unwrap();
        let p1 = payload(1, 900);
        let p2 = payload(2, 900);
        let p3 = payload(3, 900);
        let s1 = slab.append(&p1).unwrap();
        let s2 = slab.append(&p2).unwrap();
        let s3 = slab.append(&p3).unwrap();
        slab.mark_dead(s1);
        slab.mark_dead(s2);

        io.inject(IoOp::CompactRename, IoFault::Eio);
        let err = slab.compact(&[(3, s3)]).unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        let tmp = path.with_extension("fpslab.tmp");
        assert!(tmp.exists(), "staging completed before the crash point");
        // The old slab stays authoritative: the old ref still reads.
        assert_eq!(slab.read_segment(s3).unwrap(), p3);
        assert_eq!(
            slab.corrupt_segments(),
            0,
            "a failed compaction is not corruption"
        );

        // "Crash" and restart: reopen sweeps the stale tmp; the bare
        // replay recovers every intact segment.
        drop(slab);
        let mut slab = SlabFile::open_with(&path, SlabIo::healthy()).unwrap();
        assert!(!tmp.exists(), "stale staging file swept at open");
        let kept = slab.replay();
        assert_eq!(kept.len(), 3, "entry loss across the crash point");
        assert_eq!(kept[2].1, p3);
        assert_eq!(slab.corrupt_segments(), 0, "double-counted corruption");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_staging_and_fsync_faults_leave_the_old_slab_authoritative() {
        let dir = temp_dir("compact_faults");
        let io = SlabIo::healthy();
        let mut slab = SlabFile::open_with(dir.join("slab_0.fpslab"), io.clone()).unwrap();
        let p = payload(7, 600);
        let s = slab.append(&p).unwrap();

        for fault_op in [IoOp::CompactWrite, IoOp::Fsync] {
            io.inject(fault_op, IoFault::Enospc);
            let err = slab.compact(&[(7, s)]).unwrap_err();
            assert_eq!(err.raw_os_error(), Some(28));
            assert_eq!(slab.read_segment(s).unwrap(), p, "{fault_op:?}");
            io.heal_all();
        }
        // Healed, the same compaction goes through.
        let (new_refs, dropped) = slab.compact(&[(7, s)]).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(slab.read_segment(new_refs[0].1).unwrap(), p);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// The eviction-only degraded mode: after an append failure the
    /// tier stops attempting appends except for a periodic re-probe,
    /// and one successful re-probe restores full service. Counters
    /// record one degrade event per outage, not per skipped append.
    #[test]
    fn degraded_tier_reprobes_periodically_and_recovers() {
        let dir = temp_dir("degrade");
        let cfg = TierConfig::new(&dir);
        let mut tier = EvictionManager::open(&cfg, 0).unwrap();
        assert!(tier.admit_append(), "healthy tier admits every append");

        tier.note_append_err();
        assert_eq!(tier.degrade_events, 1);
        let admitted: Vec<bool> = (0..DEGRADED_REPROBE_AFTER)
            .map(|_| tier.admit_append())
            .collect();
        assert!(
            admitted[..DEGRADED_REPROBE_AFTER - 1].iter().all(|a| !a),
            "degraded tier must skip appends"
        );
        assert!(
            admitted[DEGRADED_REPROBE_AFTER - 1],
            "every {DEGRADED_REPROBE_AFTER}th attempt re-probes the disk"
        );

        // The re-probe fails: still one outage, not a new degrade event.
        tier.note_append_err();
        assert_eq!(tier.degrade_events, 1);
        assert_eq!(tier.io_errors, 2);

        // Next re-probe succeeds: demotion resumes immediately.
        for _ in 0..DEGRADED_REPROBE_AFTER - 1 {
            assert!(!tier.admit_append());
        }
        assert!(tier.admit_append());
        tier.note_append_ok();
        assert_eq!(tier.recoveries, 1);
        assert!(tier.admit_append(), "recovered tier admits every append");
        assert!(tier.admit_append());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_validates_header_and_rejects_foreign_files() {
        let dir = temp_dir("header");
        let path = dir.join("slab_0.fpslab");
        {
            let mut slab = SlabFile::open(&path).unwrap();
            slab.append(&payload(1, 16)).unwrap();
        }
        // Clean reopen: header accepted, replay finds the segment.
        let mut slab = SlabFile::open(&path).unwrap();
        assert_eq!(slab.replay().len(), 1);
        drop(slab);

        let foreign = dir.join("foreign.fpslab");
        std::fs::write(&foreign, b"NOTASLAB....plus some trailing junk").unwrap();
        assert!(SlabFile::open(&foreign).is_err());

        // A torn header (crash during create) is reinitialized and
        // counted, not fatal.
        let torn = dir.join("torn.fpslab");
        std::fs::write(&torn, b"FPSL").unwrap();
        let slab = SlabFile::open(&torn).unwrap();
        assert_eq!(slab.corrupt_segments(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
