//! The size-bounded result store with LRU replacement.

use crate::cache::description::{CacheDescription, DescriptionKind};
use crate::cache::entry::CacheEntry;
use crate::cache::replace::{select_victim, Replacement};
use fp_geometry::Region;
use fp_skyserver::ResultSet;
use std::collections::HashMap;

/// Aggregate statistics of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries currently cached.
    pub entries: usize,
    /// Bytes currently charged.
    pub bytes: usize,
    /// Entries evicted so far (replacement policy victims).
    pub evictions: usize,
    /// Entries removed by region-containment compaction.
    pub compactions: usize,
}

/// The proxy's cache: entries, the exact-match map, and one cache
/// description per residual group (regions of different templates have
/// different dimensionality, so each group gets its own index).
pub struct CacheStore {
    kind: DescriptionKind,
    capacity: Option<usize>,
    replacement: Replacement,
    entries: HashMap<u64, CacheEntry>,
    /// Replacement bookkeeping: `(created_seq, last_used_seq)` per id,
    /// monotone sequence numbers.
    last_used: HashMap<u64, (u64, u64)>,
    clock: u64,
    groups: HashMap<String, Box<dyn CacheDescription>>,
    exact: HashMap<String, u64>,
    total_bytes: usize,
    next_id: u64,
    evictions: usize,
    compactions: usize,
}

impl CacheStore {
    /// A store with the given description kind and byte capacity
    /// (`None` = unbounded, the paper's "unlimited cache size").
    pub fn new(kind: DescriptionKind, capacity: Option<usize>) -> Self {
        Self::with_replacement(kind, capacity, Replacement::Lru)
    }

    /// A store with an explicit replacement policy.
    pub fn with_replacement(
        kind: DescriptionKind,
        capacity: Option<usize>,
        replacement: Replacement,
    ) -> Self {
        CacheStore {
            kind,
            capacity,
            replacement,
            entries: HashMap::new(),
            last_used: HashMap::new(),
            clock: 0,
            groups: HashMap::new(),
            exact: HashMap::new(),
            total_bytes: 0,
            next_id: 1,
            evictions: 0,
            compactions: 0,
        }
    }

    /// The configured description kind.
    pub fn description_kind(&self) -> DescriptionKind {
        self.kind
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            bytes: self.total_bytes,
            evictions: self.evictions,
            compactions: self.compactions,
        }
    }

    /// Inserts a result; returns the new entry's id, or `None` when the
    /// entry alone exceeds the capacity (too large to ever cache).
    ///
    /// Replaces any previous entry with the same canonical SQL. Evicts
    /// least-recently-used entries until the new entry fits.
    pub fn insert(
        &mut self,
        residual_key: &str,
        region: Region,
        result: ResultSet,
        truncated: bool,
        exact_sql: &str,
    ) -> Option<u64> {
        let bytes = result.xml_bytes();
        if let Some(cap) = self.capacity {
            if bytes > cap {
                return None;
            }
        }
        if let Some(&old) = self.exact.get(exact_sql) {
            self.remove(old);
        }
        if let Some(cap) = self.capacity {
            while self.total_bytes + bytes > cap {
                let Some(victim) = self.lru_victim() else {
                    break;
                };
                self.remove(victim);
                self.evictions += 1;
            }
        }

        let id = self.next_id;
        self.next_id += 1;
        let entry = CacheEntry {
            id,
            residual_key: residual_key.to_string(),
            region: region.clone(),
            result,
            bytes,
            truncated,
            exact_sql: exact_sql.to_string(),
        };
        let bbox = region.bounding_rect();
        self.groups
            .entry(residual_key.to_string())
            .or_insert_with(|| self.kind.make(bbox.dims()))
            .insert(id, bbox);
        self.exact.insert(exact_sql.to_string(), id);
        self.total_bytes += bytes;
        self.clock += 1;
        self.last_used.insert(id, (self.clock, self.clock));
        self.entries.insert(id, entry);
        Some(id)
    }

    /// The next victim under the configured replacement policy, if any.
    fn lru_victim(&self) -> Option<u64> {
        select_victim(
            self.replacement,
            self.last_used.iter().map(|(id, (created, used))| {
                let bytes = self.entries.get(id).map_or(0, |e| e.bytes);
                (*id, *created, *used, bytes)
            }),
        )
    }

    /// Removes an entry by id; returns it when present.
    pub fn remove(&mut self, id: u64) -> Option<CacheEntry> {
        let entry = self.entries.remove(&id)?;
        self.total_bytes -= entry.bytes;
        self.last_used.remove(&id);
        self.exact.remove(&entry.exact_sql);
        if let Some(g) = self.groups.get_mut(&entry.residual_key) {
            g.remove(id, &entry.region.bounding_rect());
        }
        Some(entry)
    }

    /// Removes entries subsumed by a region-containment merge, counting
    /// them as compactions rather than evictions.
    pub fn compact(&mut self, ids: &[u64]) {
        for &id in ids {
            if self.remove(id).is_some() {
                self.compactions += 1;
            }
        }
    }

    /// Reads an entry and marks it used.
    pub fn get(&mut self, id: u64) -> Option<&CacheEntry> {
        if self.entries.contains_key(&id) {
            self.clock += 1;
            let clock = self.clock;
            if let Some((_, used)) = self.last_used.get_mut(&id) {
                *used = clock;
            }
        }
        self.entries.get(&id)
    }

    /// Reads an entry without touching the LRU clock (relationship
    /// checking peeks at many entries; only actual hits count as use).
    pub fn peek(&self, id: u64) -> Option<&CacheEntry> {
        self.entries.get(&id)
    }

    /// Exact-match lookup by canonical SQL text.
    pub fn lookup_exact(&self, sql: &str) -> Option<u64> {
        self.exact.get(sql).copied()
    }

    /// Ids in `residual_key`'s group whose bounding box intersects the
    /// probe region's bounding box.
    pub fn candidates(&self, residual_key: &str, region: &Region) -> Vec<u64> {
        let mut out = Vec::new();
        if let Some(g) = self.groups.get(residual_key) {
            g.candidates(&region.bounding_rect(), &mut out);
        }
        out
    }

    /// Iterates all live entries in unspecified order.
    pub fn iter_entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Number of indexed entries in a residual group (description size).
    pub fn group_len(&self, residual_key: &str) -> usize {
        self.groups.get(residual_key).map_or(0, |g| g.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::HyperRect;
    use fp_sqlmini::Value;

    fn rs(n: usize) -> ResultSet {
        ResultSet {
            columns: vec!["objID".into()],
            rows: (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        }
    }

    fn region(lo: f64, hi: f64) -> Region {
        Region::Rect(HyperRect::new(vec![lo, lo], vec![hi, hi]).unwrap())
    }

    #[test]
    fn insert_lookup_remove() {
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        let id = s
            .insert("k", region(0.0, 1.0), rs(3), false, "SQL A")
            .unwrap();
        assert_eq!(s.lookup_exact("SQL A"), Some(id));
        assert_eq!(s.get(id).unwrap().result.len(), 3);
        assert_eq!(s.candidates("k", &region(0.5, 0.6)), vec![id]);
        assert!(s.candidates("other", &region(0.5, 0.6)).is_empty());
        let removed = s.remove(id).unwrap();
        assert_eq!(removed.id, id);
        assert_eq!(s.lookup_exact("SQL A"), None);
        assert!(s.candidates("k", &region(0.5, 0.6)).is_empty());
        assert_eq!(s.stats().entries, 0);
        assert_eq!(s.stats().bytes, 0);
    }

    #[test]
    fn same_sql_replaces() {
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        let a = s
            .insert("k", region(0.0, 1.0), rs(3), false, "SQL")
            .unwrap();
        let b = s
            .insert("k", region(0.0, 1.0), rs(5), false, "SQL")
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(s.stats().entries, 1);
        assert_eq!(s.lookup_exact("SQL"), Some(b));
    }

    #[test]
    fn capacity_evicts_lru() {
        let one_bytes = rs(10).xml_bytes();
        let mut s = CacheStore::new(DescriptionKind::Array, Some(one_bytes * 3));
        let a = s.insert("k", region(0.0, 1.0), rs(10), false, "A").unwrap();
        let b = s.insert("k", region(2.0, 3.0), rs(10), false, "B").unwrap();
        let c = s.insert("k", region(4.0, 5.0), rs(10), false, "C").unwrap();
        // Touch A so B is the LRU.
        s.get(a);
        let d = s.insert("k", region(6.0, 7.0), rs(10), false, "D").unwrap();
        assert!(s.peek(b).is_none(), "B should have been evicted");
        for id in [a, c, d] {
            assert!(s.peek(id).is_some());
        }
        assert_eq!(s.stats().evictions, 1);
        assert!(s.stats().bytes <= one_bytes * 3);
    }

    #[test]
    fn replacement_policies_choose_different_victims() {
        // Three entries of different sizes; capacity forces one eviction.
        let sizes = [30usize, 5, 60];
        let make = |policy| {
            let bytes: usize = sizes.iter().map(|n| rs(*n).xml_bytes()).sum();
            let mut s = CacheStore::with_replacement(DescriptionKind::Array, Some(bytes), policy);
            let ids: Vec<u64> = sizes
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    s.insert(
                        "k",
                        region(i as f64 * 10.0, i as f64 * 10.0 + 1.0),
                        rs(*n),
                        false,
                        &format!("Q{i}"),
                    )
                    .unwrap()
                })
                .collect();
            // Touch entry 0 so FIFO and LRU would differ if sizes allowed.
            s.get(ids[0]);
            // Force an eviction with a fourth entry.
            s.insert("k", region(100.0, 101.0), rs(3), false, "Q3")
                .unwrap();
            let survivors: Vec<bool> = ids.iter().map(|id| s.peek(*id).is_some()).collect();
            (survivors, s.stats().evictions)
        };

        let (lru, _) = make(crate::cache::Replacement::Lru);
        assert_eq!(lru, [true, false, true], "LRU evicts the untouched oldest");
        let (fifo, _) = make(crate::cache::Replacement::Fifo);
        assert_eq!(fifo, [false, true, true], "FIFO evicts the first inserted");
        let (largest, _) = make(crate::cache::Replacement::LargestFirst);
        assert_eq!(
            largest,
            [true, true, false],
            "largest-first evicts the big one"
        );
        let (smallest, ev) = make(crate::cache::Replacement::SmallestFirst);
        // Smallest-first may need several evictions to fit the newcomer.
        assert!(!smallest[1], "smallest-first evicts the small one first");
        assert!(ev >= 1);
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let mut s = CacheStore::new(DescriptionKind::Array, Some(10));
        assert!(s
            .insert("k", region(0.0, 1.0), rs(100), false, "A")
            .is_none());
        assert_eq!(s.stats().entries, 0);
    }

    #[test]
    fn compaction_counts_separately() {
        let mut s = CacheStore::new(DescriptionKind::RTree, None);
        let a = s.insert("k", region(0.0, 1.0), rs(1), false, "A").unwrap();
        let b = s.insert("k", region(2.0, 3.0), rs(1), false, "B").unwrap();
        s.compact(&[a, b, 999]);
        let st = s.stats();
        assert_eq!(st.compactions, 2);
        assert_eq!(st.evictions, 0);
        assert_eq!(st.entries, 0);
    }

    #[test]
    fn groups_are_isolated_and_dimension_safe() {
        let mut s = CacheStore::new(DescriptionKind::RTree, None);
        // 2-D group and 3-D group coexist.
        s.insert("g2", region(0.0, 1.0), rs(1), false, "A").unwrap();
        let r3 = Region::Rect(HyperRect::new(vec![0.0; 3], vec![1.0; 3]).unwrap());
        s.insert("g3", r3.clone(), rs(1), false, "B").unwrap();
        assert_eq!(s.group_len("g2"), 1);
        assert_eq!(s.group_len("g3"), 1);
        assert_eq!(s.candidates("g3", &r3).len(), 1);
    }
}
