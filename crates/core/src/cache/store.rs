//! The size-bounded result store with LRU replacement.

use crate::cache::description::{CacheDescription, DescriptionKind};
use crate::cache::entry::CacheEntry;
use crate::cache::replace::{policy_key, select_victim, Replacement};
use crate::lifecycle::{freshness_at, Freshness, LifecycleConfig, LifecycleStamp};
use crate::resilience::Clock;
use fp_geometry::Region;
use fp_skyserver::{ColumnarRows, ResultSet};
use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Duration;

/// Aggregate statistics of the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Entries currently cached.
    pub entries: usize,
    /// Bytes currently charged (XML size plus columnar heap).
    pub bytes: usize,
    /// Entries evicted so far (replacement policy victims).
    pub evictions: usize,
    /// Entries removed by region-containment compaction.
    pub compactions: usize,
    /// Entries retired because they aged past every staleness window.
    pub expired: usize,
    /// Entries retired by data-release epoch bumps.
    pub epoch_invalidations: usize,
}

/// The proxy's cache: entries, the exact-match map, and one cache
/// description per residual group (regions of different templates have
/// different dimensionality, so each group gets its own index).
pub struct CacheStore {
    kind: DescriptionKind,
    capacity: Option<usize>,
    replacement: Replacement,
    entries: HashMap<u64, CacheEntry>,
    /// Replacement bookkeeping: `(created_seq, last_used_seq)` per id,
    /// monotone sequence numbers.
    last_used: HashMap<u64, (u64, u64)>,
    /// `(policy_key, id)` pairs ordered so the first element is the next
    /// victim — maintained on insert/remove/touch, making victim
    /// selection O(log n) instead of a full-entry scan per eviction.
    victim_order: BTreeSet<(u64, u64)>,
    clock: u64,
    groups: HashMap<Arc<str>, Box<dyn CacheDescription>>,
    exact: HashMap<Arc<str>, u64>,
    total_bytes: usize,
    next_id: u64,
    evictions: usize,
    compactions: usize,
    /// Lifecycle policy (TTLs, staleness windows). Inert by default.
    lifecycle: Arc<LifecycleConfig>,
    /// Injectable clock for TTL stamping; `None` = entries never age.
    time: Option<Arc<dyn Clock>>,
    /// Current data-release epoch; entries stamped lower are retired on
    /// the next [`Self::bump_epoch`].
    epoch: u64,
    expired: usize,
    epoch_invalidations: usize,
    /// Mutation counter (inserts/removes), letting the snapshot writer
    /// skip shards that have not changed since the last pass.
    generation: u64,
}

impl CacheStore {
    /// A store with the given description kind and byte capacity
    /// (`None` = unbounded, the paper's "unlimited cache size").
    pub fn new(kind: DescriptionKind, capacity: Option<usize>) -> Self {
        Self::with_replacement(kind, capacity, Replacement::Lru)
    }

    /// A store with an explicit replacement policy.
    pub fn with_replacement(
        kind: DescriptionKind,
        capacity: Option<usize>,
        replacement: Replacement,
    ) -> Self {
        CacheStore {
            kind,
            capacity,
            replacement,
            entries: HashMap::new(),
            last_used: HashMap::new(),
            victim_order: BTreeSet::new(),
            clock: 0,
            groups: HashMap::new(),
            exact: HashMap::new(),
            total_bytes: 0,
            next_id: 1,
            evictions: 0,
            compactions: 0,
            lifecycle: Arc::new(LifecycleConfig::default()),
            time: None,
            epoch: 0,
            expired: 0,
            epoch_invalidations: 0,
            generation: 0,
        }
    }

    /// A store whose entries age on `clock` under `lifecycle`: inserts
    /// are stamped with the current epoch and a TTL deadline, and the
    /// freshness accessors start returning non-`Fresh` states.
    pub fn with_lifecycle(
        kind: DescriptionKind,
        capacity: Option<usize>,
        replacement: Replacement,
        lifecycle: Arc<LifecycleConfig>,
        clock: Arc<dyn Clock>,
    ) -> Self {
        let mut store = Self::with_replacement(kind, capacity, replacement);
        store.epoch = lifecycle.epoch;
        store.lifecycle = lifecycle;
        store.time = Some(clock);
        store
    }

    /// The configured description kind.
    pub fn description_kind(&self) -> DescriptionKind {
        self.kind
    }

    /// Current statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.entries.len(),
            bytes: self.total_bytes,
            evictions: self.evictions,
            compactions: self.compactions,
            expired: self.expired,
            epoch_invalidations: self.epoch_invalidations,
        }
    }

    /// The store's current data-release epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The mutation counter: bumps on every insert or remove.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The store's clock reading, when lifecycle timing is configured.
    pub fn now(&self) -> Option<std::time::Instant> {
        self.time.as_ref().map(|c| c.now())
    }

    /// Where `id` sits in its lifecycle. `None` when the entry is gone;
    /// entries without a deadline (or in a clock-free store) are
    /// perpetually [`Freshness::Fresh`].
    pub fn freshness(&self, id: u64) -> Option<Freshness> {
        let entry = self.entries.get(&id)?;
        let (Some(expires_at), Some(clock)) = (entry.expires_at, &self.time) else {
            return Some(Freshness::Fresh);
        };
        Some(freshness_at(
            expires_at,
            clock.now(),
            self.lifecycle.stale_while_revalidate,
            self.lifecycle.stale_if_error,
        ))
    }

    /// Entry age in milliseconds on the store's clock; `0` when unknown.
    pub fn entry_age_ms(&self, id: u64) -> f64 {
        match (
            self.entries.get(&id).and_then(|e| e.inserted_at),
            &self.time,
        ) {
            (Some(at), Some(clock)) => {
                clock.now().saturating_duration_since(at).as_secs_f64() * 1000.0
            }
            _ => 0.0,
        }
    }

    /// Advances the store to a new data-release epoch, eagerly retiring
    /// every entry stamped with an older one. Returns how many were
    /// retired; a non-advancing epoch is a no-op.
    pub fn bump_epoch(&mut self, epoch: u64) -> usize {
        if epoch <= self.epoch {
            return 0;
        }
        self.epoch = epoch;
        let outdated: Vec<u64> = self
            .entries
            .values()
            .filter(|e| e.epoch < epoch)
            .map(|e| e.id)
            .collect();
        let n = outdated.len();
        for id in outdated {
            self.remove(id);
        }
        self.epoch_invalidations += n;
        n
    }

    /// Retires [`Freshness::Dead`] entries among the probe region's
    /// candidates (expiry is lazy: entries die when next probed, not on
    /// a timer). Returns how many were retired.
    pub(crate) fn sweep_dead(&mut self, residual_key: &str, region: &Region) -> usize {
        if self.time.is_none() {
            return 0;
        }
        let dead: Vec<u64> = self
            .candidates(residual_key, region)
            .into_iter()
            .filter(|&id| self.freshness(id) == Some(Freshness::Dead))
            .collect();
        let n = dead.len();
        for id in dead {
            self.remove(id);
        }
        self.expired += n;
        n
    }

    /// Inserts a result; returns the new entry's id, or `None` when the
    /// entry alone exceeds the capacity (too large to ever cache).
    ///
    /// `coord_columns` names the result's coordinate attributes in region
    /// dimension order; when they resolve and every coordinate cell is
    /// numeric, the entry gets its columnar hot-path form (SoA columns,
    /// micro-index, row slab) built here, once, off the serve path.
    ///
    /// Replaces any previous entry with the same canonical SQL. Evicts
    /// policy victims until the new entry fits. The key strings are
    /// allocated once and shared (`Arc<str>`) between the entry and the
    /// group/exact maps; the region's bounding box is computed once and
    /// cached on the entry for index insert and removal.
    pub fn insert(
        &mut self,
        residual_key: &str,
        region: Region,
        result: impl Into<Arc<ResultSet>>,
        truncated: bool,
        exact_sql: &str,
        coord_columns: &[String],
    ) -> Option<u64> {
        let result: Arc<ResultSet> = result.into();
        let coord_idx: Option<Vec<usize>> = coord_columns
            .iter()
            .map(|c| result.column_index(c))
            .collect();
        self.insert_indexed(
            residual_key,
            region,
            result,
            truncated,
            exact_sql,
            coord_idx.as_deref().unwrap_or(&[]),
        )
    }

    /// [`Self::insert`] with pre-resolved coordinate column indexes
    /// (snapshot reload stores indexes, not names). An empty `coord_idx`
    /// means "no columnar form".
    pub(crate) fn insert_indexed(
        &mut self,
        residual_key: &str,
        region: Region,
        result: impl Into<Arc<ResultSet>>,
        truncated: bool,
        exact_sql: &str,
        coord_idx: &[usize],
    ) -> Option<u64> {
        let result: Arc<ResultSet> = result.into();
        let bytes = result.xml_bytes();
        let columnar = ColumnarRows::build(&result, coord_idx).map(Arc::new);
        let footprint = bytes + columnar.as_ref().map_or(0, |c| c.heap_bytes());
        if let Some(cap) = self.capacity {
            if footprint > cap {
                return None;
            }
        }
        if let Some(&old) = self.exact.get(exact_sql) {
            self.remove(old);
        }
        if let Some(cap) = self.capacity {
            while self.total_bytes + footprint > cap {
                let Some(victim) = self.lru_victim() else {
                    break;
                };
                self.remove(victim);
                self.evictions += 1;
            }
        }

        let id = self.next_id;
        self.next_id += 1;
        let (inserted_at, expires_at) = match &self.time {
            Some(clock) => {
                let now = clock.now();
                (
                    Some(now),
                    self.lifecycle.ttl_for(residual_key).map(|ttl| now + ttl),
                )
            }
            None => (None, None),
        };
        let residual_key: Arc<str> = Arc::from(residual_key);
        let exact_sql: Arc<str> = Arc::from(exact_sql);
        let bbox = region.bounding_rect();
        let entry = CacheEntry {
            id,
            residual_key: Arc::clone(&residual_key),
            region,
            bbox: bbox.clone(),
            result,
            columnar,
            bytes,
            truncated,
            exact_sql: Arc::clone(&exact_sql),
            epoch: self.epoch,
            inserted_at,
            expires_at,
        };
        self.groups
            .entry(residual_key)
            .or_insert_with(|| self.kind.make(bbox.dims()))
            .insert(id, bbox);
        self.exact.insert(exact_sql, id);
        self.total_bytes += footprint;
        self.clock += 1;
        self.last_used.insert(id, (self.clock, self.clock));
        self.victim_order
            .insert((self.entry_key(self.clock, self.clock, footprint), id));
        self.entries.insert(id, entry);
        self.generation += 1;
        Some(id)
    }

    /// Inserts an entry recovered from a snapshot, re-anchoring its
    /// persisted lifecycle stamp (epoch, age, remaining TTL) onto the
    /// store's clock. Returns `None` — without counting a recovery —
    /// when the entry belongs to an older epoch or has already aged past
    /// every serve window.
    #[allow(clippy::too_many_arguments)] // mirrors insert_indexed + the stamp
    pub(crate) fn insert_restored(
        &mut self,
        residual_key: &str,
        region: Region,
        result: impl Into<Arc<ResultSet>>,
        truncated: bool,
        exact_sql: &str,
        coord_idx: &[usize],
        stamp: &LifecycleStamp,
    ) -> Option<u64> {
        if stamp.epoch < self.epoch {
            self.epoch_invalidations += 1;
            return None;
        }
        let id = self.insert_indexed(
            residual_key,
            region,
            result,
            truncated,
            exact_sql,
            coord_idx,
        )?;
        let entry = self.entries.get_mut(&id).expect("just inserted");
        entry.epoch = stamp.epoch;
        if let Some(clock) = &self.time {
            let now = clock.now();
            if let Some(age) = stamp.age_ms {
                entry.inserted_at = now
                    .checked_sub(Duration::from_millis(age))
                    .or(entry.inserted_at);
            }
            if let Some(remaining) = stamp.remaining_ms {
                entry.expires_at = if remaining >= 0 {
                    Some(now + Duration::from_millis(remaining.unsigned_abs()))
                } else {
                    now.checked_sub(Duration::from_millis(remaining.unsigned_abs()))
                };
            }
            if self.freshness(id) == Some(Freshness::Dead) {
                self.remove(id);
                self.expired += 1;
                return None;
            }
        }
        Some(id)
    }

    fn entry_key(&self, created: u64, used: u64, footprint: usize) -> u64 {
        policy_key(self.replacement, created, used, footprint)
    }

    /// The next victim under the configured replacement policy, if any:
    /// the head of the incrementally-maintained order, O(log n).
    fn lru_victim(&self) -> Option<u64> {
        let victim = self.victim_order.first().map(|&(_, id)| id);
        debug_assert_eq!(
            victim.map(|id| {
                let (c, u) = self.last_used[&id];
                self.entry_key(c, u, self.entries[&id].footprint())
            }),
            select_victim(
                self.replacement,
                self.last_used.iter().map(|(id, (created, used))| {
                    let fp = self.entries.get(id).map_or(0, |e| e.footprint());
                    (*id, *created, *used, fp)
                }),
            )
            .map(|id| {
                let (c, u) = self.last_used[&id];
                self.entry_key(c, u, self.entries[&id].footprint())
            }),
            "incremental victim order diverged from reference scan"
        );
        victim
    }

    /// Removes an entry by id; returns it when present.
    pub fn remove(&mut self, id: u64) -> Option<CacheEntry> {
        let entry = self.entries.remove(&id)?;
        self.total_bytes -= entry.footprint();
        if let Some((created, used)) = self.last_used.remove(&id) {
            self.victim_order
                .remove(&(self.entry_key(created, used, entry.footprint()), id));
        }
        self.exact.remove(&*entry.exact_sql);
        if let Some(g) = self.groups.get_mut(&*entry.residual_key) {
            g.remove(id, &entry.bbox);
        }
        self.generation += 1;
        Some(entry)
    }

    /// Removes entries subsumed by a region-containment merge, counting
    /// them as compactions rather than evictions.
    pub fn compact(&mut self, ids: &[u64]) {
        for &id in ids {
            if self.remove(id).is_some() {
                self.compactions += 1;
            }
        }
    }

    /// Reads an entry and marks it used.
    pub fn get(&mut self, id: u64) -> Option<&CacheEntry> {
        if let Some(footprint) = self.entries.get(&id).map(|e| e.footprint()) {
            self.clock += 1;
            let clock = self.clock;
            if let Some((created, used)) = self.last_used.get_mut(&id) {
                self.victim_order
                    .remove(&(policy_key(self.replacement, *created, *used, footprint), id));
                *used = clock;
                self.victim_order
                    .insert((policy_key(self.replacement, *created, *used, footprint), id));
            }
        }
        self.entries.get(&id)
    }

    /// Reads an entry without touching the LRU clock (relationship
    /// checking peeks at many entries; only actual hits count as use).
    pub fn peek(&self, id: u64) -> Option<&CacheEntry> {
        self.entries.get(&id)
    }

    /// Exact-match lookup by canonical SQL text.
    pub fn lookup_exact(&self, sql: &str) -> Option<u64> {
        self.exact.get(sql).copied()
    }

    /// Ids in `residual_key`'s group whose bounding box intersects the
    /// probe region's bounding box.
    pub fn candidates(&self, residual_key: &str, region: &Region) -> Vec<u64> {
        let mut out = Vec::new();
        if let Some(g) = self.groups.get(residual_key) {
            g.candidates(&region.bounding_rect(), &mut out);
        }
        out
    }

    /// Iterates all live entries in unspecified order.
    pub fn iter_entries(&self) -> impl Iterator<Item = &CacheEntry> {
        self.entries.values()
    }

    /// Number of indexed entries in a residual group (description size).
    pub fn group_len(&self, residual_key: &str) -> usize {
        self.groups.get(residual_key).map_or(0, |g| g.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fp_geometry::HyperRect;
    use fp_sqlmini::Value;

    fn rs(n: usize) -> ResultSet {
        ResultSet {
            columns: vec!["objID".into()],
            rows: (0..n).map(|i| vec![Value::Int(i as i64)]).collect(),
        }
    }

    /// A result with 2-D coordinate columns, for columnar-form tests.
    fn rs_coords(n: usize) -> ResultSet {
        ResultSet {
            columns: vec!["objID".into(), "cx".into(), "cy".into()],
            rows: (0..n)
                .map(|i| {
                    vec![
                        Value::Int(i as i64),
                        Value::Float(i as f64),
                        Value::Float(-(i as f64)),
                    ]
                })
                .collect(),
        }
    }

    fn region(lo: f64, hi: f64) -> Region {
        Region::Rect(HyperRect::new(vec![lo, lo], vec![hi, hi]).unwrap())
    }

    const NO_COORDS: &[String] = &[];

    #[test]
    fn insert_lookup_remove() {
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        let id = s
            .insert("k", region(0.0, 1.0), rs(3), false, "SQL A", NO_COORDS)
            .unwrap();
        assert_eq!(s.lookup_exact("SQL A"), Some(id));
        assert_eq!(s.get(id).unwrap().result.len(), 3);
        assert_eq!(s.candidates("k", &region(0.5, 0.6)), vec![id]);
        assert!(s.candidates("other", &region(0.5, 0.6)).is_empty());
        let removed = s.remove(id).unwrap();
        assert_eq!(removed.id, id);
        assert_eq!(s.lookup_exact("SQL A"), None);
        assert!(s.candidates("k", &region(0.5, 0.6)).is_empty());
        assert_eq!(s.stats().entries, 0);
        assert_eq!(s.stats().bytes, 0);
    }

    #[test]
    fn same_sql_replaces() {
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        let a = s
            .insert("k", region(0.0, 1.0), rs(3), false, "SQL", NO_COORDS)
            .unwrap();
        let b = s
            .insert("k", region(0.0, 1.0), rs(5), false, "SQL", NO_COORDS)
            .unwrap();
        assert_ne!(a, b);
        assert_eq!(s.stats().entries, 1);
        assert_eq!(s.lookup_exact("SQL"), Some(b));
    }

    #[test]
    fn capacity_evicts_lru() {
        let one_bytes = rs(10).xml_bytes();
        let mut s = CacheStore::new(DescriptionKind::Array, Some(one_bytes * 3));
        let a = s
            .insert("k", region(0.0, 1.0), rs(10), false, "A", NO_COORDS)
            .unwrap();
        let b = s
            .insert("k", region(2.0, 3.0), rs(10), false, "B", NO_COORDS)
            .unwrap();
        let c = s
            .insert("k", region(4.0, 5.0), rs(10), false, "C", NO_COORDS)
            .unwrap();
        // Touch A so B is the LRU.
        s.get(a);
        let d = s
            .insert("k", region(6.0, 7.0), rs(10), false, "D", NO_COORDS)
            .unwrap();
        assert!(s.peek(b).is_none(), "B should have been evicted");
        for id in [a, c, d] {
            assert!(s.peek(id).is_some());
        }
        assert_eq!(s.stats().evictions, 1);
        assert!(s.stats().bytes <= one_bytes * 3);
    }

    #[test]
    fn replacement_policies_choose_different_victims() {
        // Three entries of different sizes; capacity forces one eviction.
        let sizes = [30usize, 5, 60];
        let make = |policy| {
            let bytes: usize = sizes.iter().map(|n| rs(*n).xml_bytes()).sum();
            let mut s = CacheStore::with_replacement(DescriptionKind::Array, Some(bytes), policy);
            let ids: Vec<u64> = sizes
                .iter()
                .enumerate()
                .map(|(i, n)| {
                    s.insert(
                        "k",
                        region(i as f64 * 10.0, i as f64 * 10.0 + 1.0),
                        rs(*n),
                        false,
                        &format!("Q{i}"),
                        NO_COORDS,
                    )
                    .unwrap()
                })
                .collect();
            // Touch entry 0 so FIFO and LRU would differ if sizes allowed.
            s.get(ids[0]);
            // Force an eviction with a fourth entry.
            s.insert("k", region(100.0, 101.0), rs(3), false, "Q3", NO_COORDS)
                .unwrap();
            let survivors: Vec<bool> = ids.iter().map(|id| s.peek(*id).is_some()).collect();
            (survivors, s.stats().evictions)
        };

        let (lru, _) = make(crate::cache::Replacement::Lru);
        assert_eq!(lru, [true, false, true], "LRU evicts the untouched oldest");
        let (fifo, _) = make(crate::cache::Replacement::Fifo);
        assert_eq!(fifo, [false, true, true], "FIFO evicts the first inserted");
        let (largest, _) = make(crate::cache::Replacement::LargestFirst);
        assert_eq!(
            largest,
            [true, true, false],
            "largest-first evicts the big one"
        );
        let (smallest, ev) = make(crate::cache::Replacement::SmallestFirst);
        // Smallest-first may need several evictions to fit the newcomer.
        assert!(!smallest[1], "smallest-first evicts the small one first");
        assert!(ev >= 1);
    }

    #[test]
    fn eviction_storm_keeps_victim_order_consistent() {
        // Heavy churn across policies: the debug_assert in lru_victim
        // cross-checks the incremental order against the O(n) scan on
        // every eviction.
        for policy in Replacement::all() {
            let cap = rs(8).xml_bytes() * 4;
            let mut s = CacheStore::with_replacement(DescriptionKind::Array, Some(cap), policy);
            for i in 0..100u64 {
                let n = 4 + (i % 7) as usize;
                let id = s.insert(
                    "k",
                    region(i as f64, i as f64 + 0.5),
                    rs(n),
                    false,
                    &format!("Q{i}"),
                    NO_COORDS,
                );
                assert!(id.is_some(), "{policy}: insert {i} rejected");
                // Touch a surviving entry now and then to churn LRU order.
                if i % 3 == 0 {
                    let live: Vec<u64> = s.iter_entries().map(|e| e.id).take(2).collect();
                    for id in live {
                        s.get(id);
                    }
                }
            }
            assert!(s.stats().evictions > 0, "{policy}: no evictions");
            assert!(s.stats().bytes <= cap, "{policy}: over capacity");
        }
    }

    #[test]
    fn coord_columns_build_columnar_form() {
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        let coords = ["cx".to_string(), "cy".to_string()];
        let id = s
            .insert("k", region(0.0, 10.0), rs_coords(20), false, "A", &coords)
            .unwrap();
        let e = s.peek(id).unwrap();
        let col = e.columnar.as_ref().expect("columnar form built");
        assert_eq!(col.len(), 20);
        assert_eq!(col.coord_idx(), &[1, 2]);
        assert!(e.footprint() > e.bytes, "columnar heap is charged");
        assert_eq!(s.stats().bytes, e.footprint());

        // Unknown coordinate column: entry still stored, no columnar.
        let missing = ["nope".to_string()];
        let id2 = s
            .insert("k", region(20.0, 30.0), rs_coords(5), false, "B", &missing)
            .unwrap();
        assert!(s.peek(id2).unwrap().columnar.is_none());

        // Non-numeric coordinate cell: row-major fallback, no columnar.
        let mut bad = rs_coords(5);
        bad.rows[3][1] = Value::Str("corrupt".into());
        let id3 = s
            .insert("k", region(40.0, 50.0), bad, false, "C", &coords)
            .unwrap();
        assert!(s.peek(id3).unwrap().columnar.is_none());
    }

    #[test]
    fn key_strings_are_shared_not_cloned() {
        let mut s = CacheStore::new(DescriptionKind::Array, None);
        let id = s
            .insert("k", region(0.0, 1.0), rs(3), false, "SQL A", NO_COORDS)
            .unwrap();
        let e = s.peek(id).unwrap();
        // Entry and maps hold the same allocation: 1 entry ref + 1 map
        // key ref each.
        assert_eq!(Arc::strong_count(&e.residual_key), 2);
        assert_eq!(Arc::strong_count(&e.exact_sql), 2);
    }

    #[test]
    fn oversized_entry_is_rejected() {
        let mut s = CacheStore::new(DescriptionKind::Array, Some(10));
        assert!(s
            .insert("k", region(0.0, 1.0), rs(100), false, "A", NO_COORDS)
            .is_none());
        assert_eq!(s.stats().entries, 0);
    }

    #[test]
    fn compaction_counts_separately() {
        let mut s = CacheStore::new(DescriptionKind::RTree, None);
        let a = s
            .insert("k", region(0.0, 1.0), rs(1), false, "A", NO_COORDS)
            .unwrap();
        let b = s
            .insert("k", region(2.0, 3.0), rs(1), false, "B", NO_COORDS)
            .unwrap();
        s.compact(&[a, b, 999]);
        let st = s.stats();
        assert_eq!(st.compactions, 2);
        assert_eq!(st.evictions, 0);
        assert_eq!(st.entries, 0);
    }

    #[test]
    fn groups_are_isolated_and_dimension_safe() {
        let mut s = CacheStore::new(DescriptionKind::RTree, None);
        // 2-D group and 3-D group coexist.
        s.insert("g2", region(0.0, 1.0), rs(1), false, "A", NO_COORDS)
            .unwrap();
        let r3 = Region::Rect(HyperRect::new(vec![0.0; 3], vec![1.0; 3]).unwrap());
        s.insert("g3", r3.clone(), rs(1), false, "B", NO_COORDS)
            .unwrap();
        assert_eq!(s.group_len("g2"), 1);
        assert_eq!(s.group_len("g3"), 1);
        assert_eq!(s.candidates("g3", &r3).len(), 1);
    }
}
